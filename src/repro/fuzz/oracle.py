"""Ground-truth oracle: what the detection pipeline *must* report.

This is an independent re-implementation of the campaign semantics on
the spec level — it never imports the detector, the injection wrapper,
or the classifier it cross-checks.  Object state is modelled as plain
nested dicts, the injected/genuine exceptions as private sentinel
classes, and before/after comparison as deep-copied dict equality
(equivalent to ``graphs_equal`` for the tree-shaped int/list states
generated programs can reach).  If the oracle and the pipeline agree on
every run, mark, and category, two unrelated encodings of the paper's
Listing 1 + Definitions 2/3 reached the same answer; when the harness's
self-check plants a defect in one side, the other catches it.

The simulation leans on the two vocabulary guarantees documented in
:mod:`repro.fuzz.spec`: bodies have no data-dependent control flow (so
point numbering is a pure function of the threshold) and constructors
build trees (so a receiver's dict covers its whole reachable state).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .spec import (
    OP_APPEND,
    OP_CALL,
    OP_INC,
    OP_NOOP_WRITE,
    OP_RAISE,
    OP_SELF_CALL,
    ProgramSpec,
)

__all__ = ["ExpectedRun", "OracleResult", "simulate", "classify_runs"]

#: Mark verdict strings, duplicated from the run log on purpose — the
#: oracle must not import the module it validates.
ATOMIC = "atomic"
NONATOMIC = "nonatomic"

CATEGORY_ATOMIC = "atomic"
CATEGORY_CONDITIONAL = "conditional"
CATEGORY_PURE = "pure"

_DECLARED = "FuzzDeclaredError"
_RUNTIME = "InjectedRuntimeError"


class _SimInjected(Exception):
    """Stands in for an injected exception (tagged, any type)."""

    def __init__(self, exc_name: str) -> None:
        super().__init__(exc_name)
        self.exc_name = exc_name


class _SimGenuine(Exception):
    """Stands in for a genuine ``FuzzDeclaredError`` raised by OP_RAISE."""


@dataclass
class ExpectedRun:
    """What one injection run must record."""

    injection_point: int
    injected_method: Optional[str]
    injected_exception: Optional[str]
    completed: bool
    escaped: bool
    #: ``(method, verdict)`` in mark order (innermost frame first — marks
    #: are appended while the exception unwinds).
    marks: Tuple[Tuple[str, str], ...]


@dataclass
class OracleResult:
    """The complete expected outcome of a campaign over one spec."""

    total_points: int
    call_counts: Dict[str, int]
    methods_seen: List[str]
    runs: List[ExpectedRun]
    #: Per-method category after the exception-free policy filter.
    categories: Dict[str, str]
    #: Methods the masking step must wrap (sorted pure methods).
    to_wrap: List[str]
    exception_free: frozenset


class _Ctx:
    """Counter + log state of one simulated execution."""

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold
        self.point = 0
        self.marks: List[Tuple[str, str]] = []
        self.injected: Optional[Tuple[str, str]] = None
        self.call_counts: Dict[str, int] = {}
        self.methods_seen: List[str] = []

    def note_call(self, key: str) -> None:
        if key not in self.call_counts:
            self.methods_seen.append(key)
            self.call_counts[key] = 0
        self.call_counts[key] += 1


def _invoke(ctx: _Ctx, key: str, repertoire: Tuple[str, ...], body, state) -> None:
    """One woven call: repertoire walk, snapshot, body, mark-on-unwind."""
    if ctx.threshold == 0:
        ctx.note_call(key)
    for exc_name in repertoire:
        ctx.point += 1
        if ctx.point == ctx.threshold:
            ctx.injected = (key, exc_name)
            raise _SimInjected(exc_name)
    if ctx.threshold == 0:
        body()
        return
    before = copy.deepcopy(state)
    try:
        body()
    except (_SimInjected, _SimGenuine):
        ctx.marks.append((key, NONATOMIC if state != before else ATOMIC))
        raise


def _construct(spec: ProgramSpec, ctx: _Ctx, class_index: int) -> Dict[str, Any]:
    """Simulate ``F<i>()``: blank state exists before the woven __init__."""
    cd = spec.classes[class_index]
    state: Dict[str, Any] = {}

    def body() -> None:
        def scalars() -> None:
            state["count"] = 0
            state["items"] = []

        def children() -> None:
            for slot, child in enumerate(cd.children):
                state[f"kid{slot}"] = _construct(spec, ctx, child)

        if cd.scalars_first:
            scalars()
            children()
        else:
            children()
            scalars()

    _invoke(ctx, spec.constructor_key(class_index), (_RUNTIME,), body, state)
    return state


def _run_method(
    spec: ProgramSpec,
    ctx: _Ctx,
    class_index: int,
    method_index: int,
    state: Dict[str, Any],
) -> None:
    cd = spec.classes[class_index]
    md = cd.methods[method_index]
    repertoire = (_DECLARED, _RUNTIME) if md.declares else (_RUNTIME,)

    def body() -> None:
        for op in md.ops:
            kind = op[0]
            if kind == OP_INC:
                state["count"] = state["count"] + 1
            elif kind == OP_APPEND:
                state["items"] = state["items"] + [op[1]]
            elif kind == OP_NOOP_WRITE:
                state["count"] = state["count"] + 0
            elif kind == OP_CALL:
                slot, target = op[1], op[2]
                _run_method(
                    spec, ctx, cd.children[slot], target, state[f"kid{slot}"]
                )
            elif kind == OP_SELF_CALL:
                _run_method(spec, ctx, class_index, op[1], state)
            elif kind == OP_RAISE:
                raise _SimGenuine(f"{cd.name}.{md.name}")
            else:  # pragma: no cover - specs are generated, not hand-made
                raise ValueError(f"unknown op {op!r}")

    _invoke(ctx, spec.method_key(class_index, method_index), repertoire, body, state)


def _simulate_run(spec: ProgramSpec, threshold: int) -> Tuple[_Ctx, bool, bool]:
    """Simulate one program execution; returns ``(ctx, completed, escaped)``."""
    ctx = _Ctx(threshold)
    completed = False
    escaped = False
    try:
        root = _construct(spec, ctx, 0)
        for method_index in spec.workload:
            try:
                _run_method(spec, ctx, 0, method_index, root)
            except _SimGenuine:
                pass
            except _SimInjected as exc:
                # The workload's ``except FuzzDeclaredError`` clause also
                # catches *injected* declared exceptions — injection does
                # not change an exception's type.
                if exc.exc_name != _DECLARED:
                    raise
        completed = True
    except _SimInjected:
        escaped = True
    except _SimGenuine as exc:  # pragma: no cover - impossible by construction
        raise AssertionError(
            f"genuine exception escaped the simulated workload: {exc}"
        )
    return ctx, completed, escaped


def classify_runs(
    runs: List[ExpectedRun],
    methods_seen: List[str],
    exception_free: frozenset,
) -> Dict[str, str]:
    """Definitions 2/3 over expected runs, after the §4.3 policy filter."""
    kept = [r for r in runs if r.injected_method not in exception_free]
    universe: List[str] = list(methods_seen)
    for run in kept:
        for method, _ in run.marks:
            if method not in universe:
                universe.append(method)
    nonatomic = {m: 0 for m in universe}
    first_marked = {m: False for m in universe}
    for run in kept:
        seen_nonatomic = False
        for method, verdict in run.marks:
            if verdict == NONATOMIC:
                nonatomic[method] += 1
                if not seen_nonatomic:
                    # first *non-atomic* mark of the run — atomic marks
                    # earlier on the unwind path do not spoil purity
                    first_marked[method] = True
                seen_nonatomic = True
    categories: Dict[str, str] = {}
    for method in universe:
        if nonatomic[method] == 0:
            categories[method] = CATEGORY_ATOMIC
        elif first_marked[method]:
            categories[method] = CATEGORY_PURE
        else:
            categories[method] = CATEGORY_CONDITIONAL
    return categories


def simulate(spec: ProgramSpec) -> OracleResult:
    """Compute the full expected campaign outcome for *spec*."""
    profile, completed, escaped = _simulate_run(spec, 0)
    if not completed or escaped or profile.marks:
        raise AssertionError(f"profiling simulation misbehaved for {spec.name}")
    total = profile.point

    runs: List[ExpectedRun] = []
    for threshold in list(range(1, total + 1)) + [total + 1]:
        ctx, run_completed, run_escaped = _simulate_run(spec, threshold)
        injected_method, injected_exception = ctx.injected or (None, None)
        runs.append(
            ExpectedRun(
                injection_point=threshold,
                injected_method=injected_method,
                injected_exception=injected_exception,
                completed=run_completed,
                escaped=run_escaped,
                marks=tuple(ctx.marks),
            )
        )

    exception_free = frozenset(
        spec.method_key(ci, mi)
        for ci, cd in enumerate(spec.classes)
        for mi, md in enumerate(cd.methods)
        if md.exception_free
    )
    categories = classify_runs(runs, profile.methods_seen, exception_free)
    to_wrap = sorted(
        m for m, category in categories.items() if category == CATEGORY_PURE
    )
    return OracleResult(
        total_points=total,
        call_counts=dict(profile.call_counts),
        methods_seen=list(profile.methods_seen),
        runs=runs,
        categories=categories,
        to_wrap=to_wrap,
        exception_free=exception_free,
    )
