"""Seeded, deterministic generation of random subject programs.

Each program is derived from ``random.Random(seed * 1000003 + index)``,
so program *index* of a batch is a pure function of ``(seed, index)`` —
the same seed always yields byte-identical specs (and therefore
byte-identical campaign logs and fuzz reports), independent of batch
size or which other programs ran before it.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from .spec import (
    OP_APPEND,
    OP_CALL,
    OP_INC,
    OP_NOOP_WRITE,
    OP_RAISE,
    OP_SELF_CALL,
    ClassDef,
    MethodDef,
    ProgramSpec,
)

__all__ = ["generate_program", "generate_batch"]

#: Multiplier decorrelating per-program streams derived from one seed.
_STREAM_STRIDE = 1000003

#: Upper bound on classes per program (small keeps campaigns fast while
#: still producing every category mix).
_MAX_CLASSES = 4
_MAX_METHODS = 2
_MAX_OPS = 3
_MAX_CHILDREN = 2
_MAX_WORKLOAD = 3


def _gen_ops(
    rng: random.Random,
    method_index: int,
    method_count: int,
    children: Tuple[int, ...],
    method_counts: List[int],
) -> Tuple[Tuple, ...]:
    """A random straight-line body for method ``m<method_index>``."""
    ops: List[Tuple] = []
    for _ in range(rng.randint(1, _MAX_OPS)):
        choices = [(OP_INC, 30), (OP_APPEND, 15), (OP_NOOP_WRITE, 10), (OP_RAISE, 10)]
        if children:
            choices.append((OP_CALL, 30))
        if method_index < method_count - 1:
            choices.append((OP_SELF_CALL, 10))
        total = sum(weight for _, weight in choices)
        pick = rng.randrange(total)
        for kind, weight in choices:
            if pick < weight:
                break
            pick -= weight
        if kind == OP_APPEND:
            ops.append((OP_APPEND, rng.randint(0, 9)))
        elif kind == OP_CALL:
            slot = rng.randrange(len(children))
            target = rng.randrange(method_counts[children[slot]])
            ops.append((OP_CALL, slot, target))
        elif kind == OP_SELF_CALL:
            ops.append((OP_SELF_CALL, rng.randint(method_index + 1, method_count - 1)))
        else:
            ops.append((kind,))
    return tuple(ops)


def generate_program(seed: int, index: int, *, max_depth: int = 3) -> ProgramSpec:
    """Generate program *index* of the batch for *seed*.

    Args:
        max_depth: bound on the class-DAG depth (children always have a
            strictly larger class index, so capping the class count at
            ``max_depth + 1`` caps every root-to-leaf chain).
    """
    if max_depth < 1:
        raise ValueError("max_depth must be >= 1")
    rng = random.Random(seed * _STREAM_STRIDE + index)
    class_count = rng.randint(1, min(_MAX_CLASSES, max_depth + 1))

    classes: List[ClassDef] = []
    method_counts: List[int] = [
        rng.randint(1, _MAX_METHODS) for _ in range(class_count)
    ]
    for i in range(class_count):
        child_budget = min(_MAX_CHILDREN, class_count - 1 - i)
        children = tuple(
            rng.randint(i + 1, class_count - 1)
            for _ in range(rng.randint(0, child_budget))
        )
        methods: List[MethodDef] = []
        for m in range(method_counts[i]):
            declares = rng.random() < 0.3
            ops = _gen_ops(rng, m, method_counts[i], children, method_counts)
            raises = any(
                op[0] in (OP_RAISE, OP_CALL, OP_SELF_CALL) for op in ops
            )
            methods.append(
                MethodDef(
                    name=f"m{m}",
                    ops=ops,
                    declares=declares,
                    exception_free=(
                        not declares and not raises and rng.random() < 0.3
                    ),
                )
            )
        classes.append(
            ClassDef(
                name=f"F{i}",
                children=children,
                methods=tuple(methods),
                scalars_first=rng.random() < 0.5,
            )
        )

    workload = tuple(
        rng.randrange(method_counts[0])
        for _ in range(rng.randint(1, _MAX_WORKLOAD))
    )
    return ProgramSpec(
        name=f"fuzz-{seed}-{index}",
        classes=tuple(classes),
        workload=workload,
    )


def generate_batch(
    seed: int, count: int, *, max_depth: int = 3
) -> List[ProgramSpec]:
    """Generate ``count`` independent programs for *seed*."""
    return [
        generate_program(seed, index, max_depth=max_depth)
        for index in range(count)
    ]
