"""Ground-truth atomicity fuzzer: random subject programs + oracle.

Layout:

* :mod:`~repro.fuzz.spec` — picklable/JSON-round-trippable program specs.
* :mod:`~repro.fuzz.generate` — seeded, deterministic spec generation.
* :mod:`~repro.fuzz.build` — spec → rendered source → ``AppProgram``.
* :mod:`~repro.fuzz.oracle` — independent simulation of the campaign
  semantics; the ground truth every check compares against.
* :mod:`~repro.fuzz.harness` — the four differential checks, the batch
  runner, and the classifier-mutation self-check.
* :mod:`~repro.fuzz.shrink` — greedy minimization of failing specs.
"""

from .build import FuzzDeclaredError, build_program, render_source
from .generate import generate_batch, generate_program
from .harness import (
    DEFECTS,
    FuzzReport,
    Mismatch,
    ProgramVerdict,
    check_program,
    run_fuzz,
    run_self_check,
)
from .oracle import OracleResult, simulate
from .shrink import make_failure_predicate, shrink
from .spec import ClassDef, MethodDef, ProgramSpec

__all__ = [
    "DEFECTS",
    "ClassDef",
    "FuzzDeclaredError",
    "FuzzReport",
    "MethodDef",
    "Mismatch",
    "OracleResult",
    "ProgramSpec",
    "ProgramVerdict",
    "build_program",
    "check_program",
    "generate_batch",
    "generate_program",
    "make_failure_predicate",
    "render_source",
    "run_fuzz",
    "run_self_check",
    "shrink",
    "simulate",
]
