"""Specifications of randomly generated subject programs.

A :class:`ProgramSpec` is a complete, picklable, JSON-round-trippable
description of one synthetic subject program: a small DAG of classes
(instances form a tree — every constructor builds fresh children, so no
aliasing ever arises), straight-line method bodies built from a tiny op
vocabulary, and a workload calling root-class methods.

Two properties of the vocabulary are load-bearing for the ground-truth
oracle (:mod:`repro.fuzz.oracle`):

* **No data-dependent control flow.**  Bodies are straight-line op
  sequences, so every execution of a program takes the same path until
  an exception fires, and injection-point numbering is identical across
  runs and across masked/unmasked variants of the program.
* **Attribute reassignment only.**  State lives in instance attributes
  (``count``, ``items``, ``kid<i>``) and lists are extended by
  *reassignment* (``self.items = self.items + [tag]``), never mutated in
  place.  That keeps the undo-log (write-barrier) masking strategy sound
  for every generated program — its documented limitation is exactly
  in-place container mutation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

__all__ = [
    "OP_INC",
    "OP_APPEND",
    "OP_NOOP_WRITE",
    "OP_CALL",
    "OP_SELF_CALL",
    "OP_RAISE",
    "MethodDef",
    "ClassDef",
    "ProgramSpec",
]

#: ``self.count = self.count + 1`` — a visible mutation of the receiver.
OP_INC = "inc"
#: ``self.items = self.items + [tag]`` — list growth by reassignment.
OP_APPEND = "append"
#: ``self.count = self.count + 0`` — a write with no visible effect
#: (exercises the write barrier's first-write bookkeeping, invisible to
#: object-graph comparison).
OP_NOOP_WRITE = "noop_write"
#: ``self.kid<slot>.m<idx>()`` — call a method on a child instance.
OP_CALL = "call"
#: ``self.m<idx>()`` — call a later method on the same receiver
#: (targets only higher method indices, so no recursion).
OP_SELF_CALL = "self_call"
#: ``raise FuzzDeclaredError(...)`` — a genuine error site.
OP_RAISE = "raise"


@dataclass(frozen=True)
class MethodDef:
    """One generated method: a name and a straight-line op sequence.

    Attributes:
        name: attribute name (``m0``, ``m1``, ...).
        ops: op tuples — see the ``OP_*`` constants.
        declares: render with ``@throws(FuzzDeclaredError)``; the method
            then has *two* injection points per call (declared exception
            first, then the generic runtime exception).
        exception_free: render with ``@exception_free``; the policy layer
            drops runs injected inside the method before classification.
            The generator only sets this on methods that genuinely cannot
            raise (no raise/call ops), keeping the assertion honest.
    """

    name: str
    ops: Tuple[Tuple[Any, ...], ...]
    declares: bool = False
    exception_free: bool = False


@dataclass(frozen=True)
class ClassDef:
    """One generated class.

    Attributes:
        name: class name (``F0``, ``F1``, ...).
        children: indices (into ``ProgramSpec.classes``) of the child
            instances the constructor builds, one per ``kid<slot>``
            attribute.  Children always have a strictly larger index, so
            the class graph is a DAG and instance graphs are trees.
        methods: the class's methods, in index order.
        scalars_first: initialize ``count``/``items`` before constructing
            children (varies which constructor prefix is visible when an
            injection aborts construction).
    """

    name: str
    children: Tuple[int, ...]
    methods: Tuple[MethodDef, ...]
    scalars_first: bool = False


@dataclass(frozen=True)
class ProgramSpec:
    """A complete generated subject program.

    ``classes[0]`` is the root class; the workload constructs one root
    instance (outside any try block — injections during construction
    escape the program) and then executes one
    ``try: root.m<i>() except FuzzDeclaredError: pass`` statement per
    ``workload`` entry.
    """

    name: str
    classes: Tuple[ClassDef, ...]
    workload: Tuple[int, ...]

    # -- structure queries -------------------------------------------

    def method_key(self, class_index: int, method_index: int) -> str:
        cd = self.classes[class_index]
        return f"{cd.name}.{cd.methods[method_index].name}"

    def constructor_key(self, class_index: int) -> str:
        return f"{self.classes[class_index].name}.__init__"

    def depth(self) -> int:
        """Longest root-to-leaf chain in the class DAG (0 = leaf root)."""
        memo: Dict[int, int] = {}

        def walk(index: int) -> int:
            if index not in memo:
                cd = self.classes[index]
                memo[index] = (
                    1 + max(walk(child) for child in cd.children)
                    if cd.children
                    else 0
                )
            return memo[index]

        return walk(0)

    # -- (de)serialization -------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "workload": list(self.workload),
            "classes": [
                {
                    "name": cd.name,
                    "children": list(cd.children),
                    "scalars_first": cd.scalars_first,
                    "methods": [
                        {
                            "name": md.name,
                            "ops": [list(op) for op in md.ops],
                            "declares": md.declares,
                            "exception_free": md.exception_free,
                        }
                        for md in cd.methods
                    ],
                }
                for cd in self.classes
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProgramSpec":
        classes: List[ClassDef] = []
        for cd in data["classes"]:
            methods = tuple(
                MethodDef(
                    name=md["name"],
                    ops=tuple(tuple(op) for op in md["ops"]),
                    declares=md.get("declares", False),
                    exception_free=md.get("exception_free", False),
                )
                for md in cd["methods"]
            )
            classes.append(
                ClassDef(
                    name=cd["name"],
                    children=tuple(cd.get("children", ())),
                    methods=methods,
                    scalars_first=cd.get("scalars_first", False),
                )
            )
        return cls(
            name=data["name"],
            classes=tuple(classes),
            workload=tuple(data.get("workload", ())),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ProgramSpec":
        return cls.from_dict(json.loads(text))
