"""Greedy shrinking of a failing spec to a minimal reproducer.

Given a spec on which some differential check fails, repeatedly try
structure-reducing transformations (drop a workload statement, drop an
op, clear a flag, drop an unreferenced trailing method/child/class) and
keep any candidate on which the *same check* still fails, until no
transformation helps or the evaluation budget runs out.  The failure
predicate re-runs the full harness, so shrinking is slow but honest —
the reported reproducer really does reproduce.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterable, Iterator, Optional, Set

from .spec import OP_CALL, OP_SELF_CALL, ClassDef, MethodDef, ProgramSpec

__all__ = ["shrink", "make_failure_predicate"]


def _with_class(spec: ProgramSpec, ci: int, cd: ClassDef) -> ProgramSpec:
    classes = list(spec.classes)
    classes[ci] = cd
    return replace(spec, classes=tuple(classes))


def _with_method(
    spec: ProgramSpec, ci: int, mi: int, md: MethodDef
) -> ProgramSpec:
    cd = spec.classes[ci]
    methods = list(cd.methods)
    methods[mi] = md
    return _with_class(spec, ci, replace(cd, methods=tuple(methods)))


def _valid(spec: ProgramSpec) -> bool:
    """All indices a reduced spec refers to are still in range."""
    count = len(spec.classes)
    if count == 0 or not spec.classes[0].methods:
        return False
    for ci, cd in enumerate(spec.classes):
        if not cd.methods:
            return False
        for child in cd.children:
            if not ci < child < count:
                return False
        for mi, md in enumerate(cd.methods):
            for op in md.ops:
                if op[0] == OP_CALL:
                    slot, target = op[1], op[2]
                    if slot >= len(cd.children):
                        return False
                    if target >= len(spec.classes[cd.children[slot]].methods):
                        return False
                elif op[0] == OP_SELF_CALL:
                    if not mi < op[1] < len(cd.methods):
                        return False
    return all(w < len(spec.classes[0].methods) for w in spec.workload)


def _candidates(spec: ProgramSpec) -> Iterator[ProgramSpec]:
    """Reduced variants of *spec*, simplest reductions first.

    Only trailing methods/children/classes are dropped so surviving
    indices keep their meaning; invalid candidates (a dropped element
    something still referred to) are filtered by :func:`_valid`.
    """
    for i in range(len(spec.workload)):
        yield replace(
            spec, workload=spec.workload[:i] + spec.workload[i + 1 :]
        )
    if len(spec.classes) > 1:
        yield replace(spec, classes=spec.classes[:-1])
    for ci, cd in enumerate(spec.classes):
        if len(cd.methods) > 1:
            yield _with_class(spec, ci, replace(cd, methods=cd.methods[:-1]))
        if cd.children:
            yield _with_class(spec, ci, replace(cd, children=cd.children[:-1]))
        if cd.scalars_first:
            yield _with_class(spec, ci, replace(cd, scalars_first=False))
        for mi, md in enumerate(cd.methods):
            for oi in range(len(md.ops)):
                yield _with_method(
                    spec, ci, mi, replace(md, ops=md.ops[:oi] + md.ops[oi + 1 :])
                )
            if md.declares:
                yield _with_method(spec, ci, mi, replace(md, declares=False))
            if md.exception_free:
                yield _with_method(
                    spec, ci, mi, replace(md, exception_free=False)
                )


def shrink(
    spec: ProgramSpec,
    fails: Callable[[ProgramSpec], bool],
    *,
    max_evals: int = 200,
) -> ProgramSpec:
    """Greedily minimize *spec* while ``fails(candidate)`` stays true.

    Args:
        fails: the failure predicate; must be true for *spec* itself
            (the caller established the failure before shrinking).
        max_evals: budget of predicate evaluations — each one re-runs
            full campaigns, so this bounds shrinking wall-clock.

    Returns:
        A locally minimal failing spec (no single candidate reduction of
        it still fails, or the budget ran out).
    """
    current = spec
    evals = 0
    progressed = True
    while progressed and evals < max_evals:
        progressed = False
        for candidate in _candidates(current):
            if evals >= max_evals:
                break
            if not _valid(candidate):
                continue
            evals += 1
            if fails(candidate):
                current = candidate
                progressed = True
                break
    return current


def make_failure_predicate(
    check_names: Iterable[str],
    *,
    engine: str = "both",
    workers: int = 2,
    defect: Optional[str] = None,
    state_backend: str = "graph",
    static_prune: bool = False,
    trace_derive: bool = False,
    variants: int = 0,
    variant_seed: int = 0,
    instrumentor: str = "weave",
) -> Callable[[ProgramSpec], bool]:
    """Predicate: does any of the *same* checks still fail on a spec?

    Matching on check name (not exact detail) lets the reducer keep a
    candidate whose mismatch message changed cosmetically while the
    underlying disagreement is intact.
    """
    from .harness import check_program

    wanted: Set[str] = set(check_names)

    def fails(candidate: ProgramSpec) -> bool:
        verdict = check_program(
            candidate,
            engine=engine,
            workers=workers,
            defect=defect,
            state_backend=state_backend,
            static_prune=static_prune,
            trace_derive=trace_derive,
            variants=variants,
            variant_seed=variant_seed,
            instrumentor=instrumentor,
        )
        return any(m.check in wanted for m in verdict.mismatches)

    return fails
