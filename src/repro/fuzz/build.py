"""Materialize a :class:`ProgramSpec` into a runnable subject program.

The spec is rendered to ordinary Python source and ``exec``'d in a fresh
namespace whose ``__name__`` is the fixed :data:`FUZZ_MODULE_NAME`, so
type names — which appear inside run-log ``difference`` strings and are
therefore part of the bit-identical engine comparison — are deterministic
across processes (the parallel engine's workers rebuild the program from
the same spec via :func:`build_program`, which is picklable together with
the spec for exactly that purpose).
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, List

from repro.core.exceptions import exception_free, throws
from repro.core.virtualsource import register_virtual_source
from repro.experiments.programs import AppProgram

from .spec import (
    OP_APPEND,
    OP_CALL,
    OP_INC,
    OP_NOOP_WRITE,
    OP_RAISE,
    OP_SELF_CALL,
    ProgramSpec,
)

__all__ = [
    "FUZZ_MODULE_NAME",
    "FuzzDeclaredError",
    "render_source",
    "build_classes",
    "build_namespace",
    "build_program",
    "make_workload",
    "program_factory",
]

#: ``__module__`` of every generated class — fixed so graph type names
#: ("repro_fuzz_subject.F0") are identical in parent and worker processes.
FUZZ_MODULE_NAME = "repro_fuzz_subject"

#: Language tag of generated programs (the registry uses "C++"/"Java").
FUZZ_LANGUAGE = "Fuzz"


class FuzzDeclaredError(Exception):
    """The declared exception of generated methods.

    Generated workloads catch it per statement; the generic
    ``InjectedRuntimeError`` is deliberately left uncaught so injected
    runtime faults escape the program (``RunRecord.escaped``).
    """


def _op_lines(spec: ProgramSpec, class_index: int, method_index: int) -> List[str]:
    cd = spec.classes[class_index]
    md = cd.methods[method_index]
    lines: List[str] = []
    for position, op in enumerate(md.ops):
        kind = op[0]
        if kind == OP_INC:
            lines.append("self.count = self.count + 1")
        elif kind == OP_APPEND:
            lines.append(f"self.items = self.items + [{op[1]}]")
        elif kind == OP_NOOP_WRITE:
            lines.append("self.count = self.count + 0")
        elif kind == OP_CALL:
            slot, target = op[1], op[2]
            child = spec.classes[cd.children[slot]]
            lines.append(f"self.kid{slot}.{child.methods[target].name}()")
        elif kind == OP_SELF_CALL:
            lines.append(f"self.{cd.methods[op[1]].name}()")
        elif kind == OP_RAISE:
            message = f"genuine {cd.name}.{md.name}#{position}"
            lines.append(f"raise FuzzDeclaredError({message!r})")
        else:
            raise ValueError(f"unknown op {op!r}")
    return lines


def render_source(spec: ProgramSpec) -> str:
    """Render the spec's classes as Python source (the subject program)."""
    out: List[str] = []
    for class_index, cd in enumerate(spec.classes):
        out.append(f"class {cd.name}:")
        out.append("    def __init__(self):")
        scalar_lines = ["self.count = 0", "self.items = []"]
        child_lines = [
            f"self.kid{slot} = {spec.classes[child].name}()"
            for slot, child in enumerate(cd.children)
        ]
        body = (
            scalar_lines + child_lines
            if cd.scalars_first
            else child_lines + scalar_lines
        )
        out.extend(f"        {line}" for line in body)
        for method_index, md in enumerate(cd.methods):
            out.append("")
            if md.declares:
                out.append("    @throws(FuzzDeclaredError)")
            if md.exception_free:
                out.append("    @exception_free")
            out.append(f"    def {md.name}(self):")
            lines = _op_lines(spec, class_index, method_index) or ["pass"]
            out.extend(f"        {line}" for line in lines)
        out.append("")
        out.append("")
    return "\n".join(out)


def build_namespace() -> Dict[str, Any]:
    """The exec namespace every generated subject module runs in."""
    return {
        "__name__": FUZZ_MODULE_NAME,
        "throws": throws,
        "exception_free": exception_free,
        "FuzzDeclaredError": FuzzDeclaredError,
    }


def build_classes(spec: ProgramSpec) -> List[type]:
    """Exec the rendered source; return fresh class objects, spec order."""
    namespace = build_namespace()
    source = render_source(spec)
    # Register the rendered source so inspect.getsource works on the
    # generated methods — the static pruning pass reads method bodies.
    filename = register_virtual_source(f"<{spec.name}>", source)
    exec(compile(source, filename, "exec"), namespace)
    return [namespace[cd.name] for cd in spec.classes]


def make_workload(spec: ProgramSpec, root_cls: type) -> Callable[[], None]:
    method_names = [
        spec.classes[0].methods[index].name for index in spec.workload
    ]

    def body() -> None:
        root = root_cls()  # outside any try: constructor injections escape
        for name in method_names:
            try:
                getattr(root, name)()
            except FuzzDeclaredError:
                pass

    return body


def build_program(spec: ProgramSpec) -> AppProgram:
    """Build a fresh :class:`AppProgram` (fresh classes) from *spec*.

    Module-level and driven purely by the picklable spec, so
    ``functools.partial(build_program, spec)`` is a valid
    ``ProgramRef(factory=...)`` for the parallel engine's workers.
    """
    classes = build_classes(spec)
    return AppProgram(
        name=spec.name,
        language=FUZZ_LANGUAGE,
        classes=classes,
        body=make_workload(spec, classes[0]),
    )


def program_factory(spec: ProgramSpec) -> "functools.partial[AppProgram]":
    """The picklable worker-side factory for *spec*."""
    return functools.partial(build_program, spec)
