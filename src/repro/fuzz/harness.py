"""Differential conformance harness over generated subject programs.

Every generated program is cross-checked four ways:

1. **Oracle conformance** — the real pipeline's campaign (runs, marks,
   point totals, call counts) and classification must equal the
   spec-level simulation of :mod:`repro.fuzz.oracle`.
2. **Engine equivalence** — the sequential and parallel engines must
   produce bit-identical merged run logs and classifications.
3. **Masking soundness** — masking the oracle's pure set and re-running
   detection must classify *every* method failure atomic, under both the
   eager-snapshot and the undo-log checkpoint strategy.
4. **Observable rollback** — a checker layer between the atomicity and
   injection wrappers asserts that whenever an exception leaves a masked
   method, the receiver's post-rollback object graph equals the graph
   captured on entry.
5. **Backend equivalence** (when fuzzing with a non-graph
   ``state_backend``) — the campaign's run log and classification under
   that backend must be byte-identical to a graph-backend campaign on
   the same program.

A **self-check** mode plants a known defect in one of the checked
components and asserts the harness reports mismatches — guarding against
the failure mode where oracle and pipeline agree because the comparison
is vacuous.

Everything here is deterministic: same seed → identical specs →
identical campaigns → byte-identical report JSON.  No timestamps, no
wall-clock, no unseeded randomness.
"""

from __future__ import annotations

import functools
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core import WrapPolicy, reclassify
from repro.core.classify import (
    CATEGORY_ATOMIC,
    CATEGORIES,
    ClassificationResult,
)
from repro.core.detector import DetectionResult
from repro.core.staticpass import log_json_without_provenance
from repro.core.masking import MaskingStats
from repro.core.policy import select_methods_to_wrap
from repro.experiments.campaign import run_app_campaign
from repro.experiments.parallel import ParallelDetector, ProgramRef
from repro.experiments.validation import GraphCheck, mask_and_redetect

from .build import build_program
from .generate import generate_batch
from .oracle import OracleResult, simulate
from .spec import ProgramSpec

__all__ = [
    "DEFECTS",
    "ENGINES",
    "FuzzReport",
    "Mismatch",
    "ProgramVerdict",
    "check_program",
    "run_fuzz",
    "run_self_check",
]

ENGINES = ("sequential", "parallel", "both")

#: Plantable defects for the self-check, and what each one corrupts.
DEFECTS = (
    "swap_pure_conditional",  # classifier: pure and conditional swapped
    "merge_reversed",  # parallel engine: merged runs in reverse order
    "mask_no_rollback",  # masking: wrapper that never rolls back
)


@dataclass
class Mismatch:
    """One disagreement between the pipeline and the ground truth."""

    check: str
    program: str
    detail: str

    def to_dict(self) -> Dict[str, str]:
        return {"check": self.check, "program": self.program, "detail": self.detail}


@dataclass
class ProgramVerdict:
    """All differential-check results for one generated program."""

    spec: ProgramSpec
    mismatches: List[Mismatch]
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.mismatches


@dataclass
class FuzzReport:
    """Deterministic summary of one fuzzing session."""

    seed: int
    programs: int
    max_depth: int
    engine: str
    workers: int
    defect: Optional[str]
    total_points: int
    total_runs: int
    category_counts: Dict[str, int]
    mismatches: List[Mismatch]
    failing_programs: List[str]
    state_backend: str = "graph"
    static_prune: bool = False
    total_pruned: int = 0
    trace_derive: bool = False
    total_derived: int = 0
    variants: int = 0
    total_variant_applied: int = 0
    instrumentor: str = "weave"

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "programs": self.programs,
            "max_depth": self.max_depth,
            "engine": self.engine,
            "workers": self.workers,
            "defect": self.defect,
            "state_backend": self.state_backend,
            "static_prune": self.static_prune,
            "total_pruned": self.total_pruned,
            "trace_derive": self.trace_derive,
            "total_derived": self.total_derived,
            "variants": self.variants,
            "total_variant_applied": self.total_variant_applied,
            "instrumentor": self.instrumentor,
            "total_points": self.total_points,
            "total_runs": self.total_runs,
            "category_counts": self.category_counts,
            "mismatches": [m.to_dict() for m in self.mismatches],
            "failing_programs": self.failing_programs,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


# ---------------------------------------------------------------------------
# Campaign runners
# ---------------------------------------------------------------------------


def _sequential_campaign(
    spec: ProgramSpec,
    state_backend: str = "graph",
    static_prune: bool = False,
    trace_derive: bool = False,
    instrumentor: str = "weave",
) -> Tuple[DetectionResult, ClassificationResult]:
    outcome = run_app_campaign(
        build_program(spec),
        state_backend=state_backend,
        static_prune=static_prune,
        trace_derive=trace_derive,
        instrumentor=instrumentor,
    )
    return outcome.detection, outcome.classification


def _parallel_campaign(
    spec: ProgramSpec,
    workers: int,
    state_backend: str = "graph",
    instrumentor: str = "weave",
) -> Tuple[DetectionResult, ClassificationResult]:
    program = build_program(spec)
    detector = ParallelDetector(
        program,
        workers=workers,
        program_ref=ProgramRef(factory=functools.partial(build_program, spec)),
        state_backend=state_backend,
        instrumentor=instrumentor,
    )
    detection = detector.detect()
    classification = reclassify(
        detection.log, WrapPolicy.from_specs(detector.woven_specs)
    )
    return detection, classification


def _swap_pure_conditional(
    classification: ClassificationResult,
) -> ClassificationResult:
    """Planted classifier defect: swap the two non-atomic categories."""
    swap = {"pure": "conditional", "conditional": "pure"}
    for mc in classification.methods.values():
        mc.category = swap.get(mc.category, mc.category)
    return classification


def _no_rollback_factory(spec):
    """Planted masking defect: claims to wrap, never rolls back."""
    original = spec.func

    @functools.wraps(original)
    def fake_atomic(*args, **kwargs):
        return original(*args, **kwargs)

    fake_atomic._repro_wrapped = original  # type: ignore[attr-defined]
    fake_atomic._repro_kind = "atomicity-defective"  # type: ignore[attr-defined]
    return fake_atomic


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------


def _check_oracle(
    spec: ProgramSpec,
    oracle: OracleResult,
    detection: DetectionResult,
    classification: ClassificationResult,
    check: str,
) -> List[Mismatch]:
    """Check 1: pipeline output equals the spec-level simulation."""
    out: List[Mismatch] = []

    def bad(detail: str) -> None:
        out.append(Mismatch(check, spec.name, detail))

    if detection.total_points != oracle.total_points:
        bad(
            f"total_points: pipeline {detection.total_points}, "
            f"oracle {oracle.total_points}"
        )
    if detection.genuine_failures:
        bad(f"unexpected genuine failures: {detection.genuine_failures}")
    if detection.log.call_counts != oracle.call_counts:
        bad(
            f"call_counts: pipeline {detection.log.call_counts}, "
            f"oracle {oracle.call_counts}"
        )
    if list(detection.log.methods_seen) != oracle.methods_seen:
        bad(
            f"methods_seen: pipeline {list(detection.log.methods_seen)}, "
            f"oracle {oracle.methods_seen}"
        )
    if len(detection.log.runs) != len(oracle.runs):
        bad(
            f"run count: pipeline {len(detection.log.runs)}, "
            f"oracle {len(oracle.runs)}"
        )
    else:
        for record, expected in zip(detection.log.runs, oracle.runs):
            got = (
                record.injection_point,
                record.injected_method,
                record.injected_exception,
                record.completed,
                record.escaped,
                tuple((m.method, m.verdict) for m in record.marks),
            )
            want = (
                expected.injection_point,
                expected.injected_method,
                expected.injected_exception,
                expected.completed,
                expected.escaped,
                expected.marks,
            )
            if got != want:
                bad(
                    f"run at point {expected.injection_point}: "
                    f"pipeline {got}, oracle {want}"
                )
    got_categories = {
        key: mc.category for key, mc in classification.methods.items()
    }
    if got_categories != oracle.categories:
        bad(
            f"categories: pipeline {got_categories}, "
            f"oracle {oracle.categories}"
        )
    got_wrap = select_methods_to_wrap(classification, WrapPolicy())
    if got_wrap != oracle.to_wrap:
        bad(f"to_wrap: pipeline {got_wrap}, oracle {oracle.to_wrap}")
    return out


def _check_masking(
    spec: ProgramSpec,
    oracle: OracleResult,
    strategy: str,
    defect: Optional[str],
    state_backend: str = "graph",
) -> List[Mismatch]:
    """Checks 3+4: iterated mask → re-detect for one strategy.

    Masking the pure set does not always finish in one round: a method
    classified *conditional* can carry inconsistency of its own that was
    never first-marked because some callee's genuine failure always
    marked that callee earlier in every run — once the callee rolls
    back, the caller's own dirt surfaces and it becomes newly pure (the
    fuzzer found this; the paper's §4.3 answer is to re-run the
    detection phase after modifying the program).  So the check is a
    fixpoint iteration: each round, every *wrapped* method must come
    back failure atomic (rollback soundness — check 3) and every
    exception crossing a wrapped method must restore the receiver graph
    (check 4); newly pure methods join the wrapped set until everything
    is atomic.  Progress is guaranteed for a sound pipeline: while any
    non-atomic method remains, some run has a first non-atomic mark.
    """
    check = f"masking-{strategy}"
    out: List[Mismatch] = []

    def bad(detail: str) -> None:
        out.append(Mismatch(check, spec.name, detail))

    wrapped = list(oracle.to_wrap)
    max_rounds = len(oracle.categories) + 2
    rounds = 0
    while not out:
        rounds += 1
        graph_checks: List[GraphCheck] = []
        stats = MaskingStats()
        detection, classification = mask_and_redetect(
            build_program(spec),
            wrapped,
            strategy=strategy,
            stats=stats,
            graph_checks=graph_checks,
            atomic_factory=(
                _no_rollback_factory if defect == "mask_no_rollback" else None
            ),
            state_backend=state_backend,
        )
        # Wrapper layering must not change the campaign's shape: same
        # points, no genuine failures escaping.
        if detection.total_points != oracle.total_points:
            bad(
                f"round {rounds}: masked total_points "
                f"{detection.total_points}, original {oracle.total_points}"
            )
        if detection.genuine_failures:
            bad(
                f"round {rounds}: masked genuine failures: "
                f"{detection.genuine_failures}"
            )
        # Check 3: every wrapped method is observably atomic on re-run.
        still_wrapped = {
            method: classification.category_of(method)
            for method in wrapped
            if method in classification.methods
            and classification.category_of(method) != CATEGORY_ATOMIC
        }
        if still_wrapped:
            bad(
                f"round {rounds}: wrapped methods still non-atomic: "
                f"{still_wrapped}"
            )
        # Check 4: rollback is observable — each exception leaving a
        # masked method leaves the receiver graph exactly as captured on
        # entry.  Every wrapped method is pure under some earlier round's
        # run structure, so each is crossed by at least one exception.
        observed = {record.method for record in graph_checks}
        unexercised = [m for m in wrapped if m not in observed]
        if unexercised:
            bad(
                f"round {rounds}: masked methods never exercised by an "
                f"exception: {unexercised}"
            )
        for record in [r for r in graph_checks if not r.restored][:3]:
            bad(
                f"round {rounds}: rollback of {record.method} did not "
                f"restore the receiver: {record.detail}"
            )
        if out:
            break
        still = {
            key: mc.category
            for key, mc in classification.methods.items()
            if mc.category != CATEGORY_ATOMIC
        }
        if not still:
            break  # fixpoint: the whole program is failure atomic
        fresh = [
            m
            for m in select_methods_to_wrap(classification, WrapPolicy())
            if m not in set(wrapped)
        ]
        if not fresh:
            bad(
                f"round {rounds}: non-atomic methods remain but none is "
                f"pure, so masking cannot make progress: {still}"
            )
            break
        if rounds >= max_rounds:
            bad(f"no masking fixpoint after {rounds} rounds; left: {still}")
            break
        wrapped = sorted(set(wrapped) | set(fresh))
    return out


def _check_variants(
    spec: ProgramSpec,
    variants: int,
    variant_seed: int,
    state_backend: str,
    static_prune: bool,
    trace_derive: bool,
) -> Tuple[List[Mismatch], int]:
    """Check 8: detection invariance across semantic-preserving variants.

    Builds ``variants`` transformed editions of the subject (seeded
    recipes over :mod:`repro.core.variants`) and requires every
    campaign observable — run log modulo provenance, classification,
    per-strategy masking fixpoints, and (when the respective flags are
    on) the pruned/derived campaign outputs — to be identical between
    the original and each variant.  Returns the mismatches plus the
    total number of rule applications (so reports can prove the corpus
    was not vacuously untransformed).
    """
    from repro.core.variants import (
        build_spec_variant,
        check_invariance,
        make_recipes,
    )

    recipes = make_recipes(variant_seed, variants)
    factories = []
    applications = 0
    for index, recipe in enumerate(recipes):
        tag = index + 1
        _program, module = build_spec_variant(spec, recipe, tag=tag)
        applications += len(module.applied)
        factories.append(
            (
                f"v{tag}",
                functools.partial(
                    _build_variant_program, spec, recipe, tag
                ),
            )
        )
    report = check_invariance(
        spec.name,
        functools.partial(build_program, spec),
        factories,
        state_backend=state_backend,
        static_prune=static_prune,
        trace_derive=trace_derive,
    )
    mismatches = [
        Mismatch(
            "variant-invariance",
            spec.name,
            f"{d.variant} diverges on {d.aspect}: {d.detail}",
        )
        for d in report.divergences
    ]
    return mismatches, applications


def _build_variant_program(spec: ProgramSpec, recipe, tag: int):
    """Module-level so the factory stays picklable like build_program."""
    from repro.core.variants import build_spec_variant

    return build_spec_variant(spec, recipe, tag=tag)[0]


def check_program(
    spec: ProgramSpec,
    *,
    engine: str = "both",
    workers: int = 2,
    defect: Optional[str] = None,
    state_backend: str = "graph",
    static_prune: bool = False,
    trace_derive: bool = False,
    variants: int = 0,
    variant_seed: int = 0,
    instrumentor: str = "weave",
) -> ProgramVerdict:
    """Run every differential check for one generated program.

    With a non-graph ``state_backend``, every campaign-based check runs
    under that backend *and* an extra **backend-equivalence** check
    compares its sequential run log and classification byte-for-byte
    against a graph-backend campaign — the fuzzer is the equivalence
    oracle proving the fingerprint backend classifies every generated
    program identically to the reference semantics.

    With ``static_prune``, a sixth **prune-equivalence** check runs the
    sequential campaign again under ``--static-prune`` and asserts its
    run log (modulo per-run provenance) and its classification are
    byte-identical to the unpruned sweep — the fuzzer is the soundness
    oracle for the static purity pre-analysis.

    With ``trace_derive``, a seventh **trace-equivalence** check runs
    the sequential campaign again under ``--trace-derive`` and asserts
    the same bit-identity (run log modulo provenance, classification
    byte-for-byte) against the dynamic sweep — the fuzzer is the
    soundness oracle for the trace-derivation pass.

    With ``variants > 0``, an eighth **variant-invariance** check
    generates that many semantic-preserving AST variants of the subject
    (seeded by ``variant_seed``) and asserts the campaign's observable
    outputs — run log modulo provenance, classification, and both
    masking fixpoints — are identical across the original and every
    variant (see :mod:`repro.core.variants`).

    With a non-default ``instrumentor``, a ninth
    **instrumentor-equivalence** check runs the sequential campaign
    again with *both* profiling passes attached (so the observation
    layer is actually exercised) under that instrumentor and under the
    default weaving one, and asserts the run logs (modulo provenance)
    and classifications are byte-identical — the fuzzer is the
    conformance oracle for :mod:`repro.core.instrument` backends.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if defect is not None and defect not in DEFECTS:
        raise ValueError(f"unknown defect {defect!r}; expected one of {DEFECTS}")
    oracle = simulate(spec)
    mismatches: List[Mismatch] = []

    sequential: Optional[Tuple[DetectionResult, ClassificationResult]] = None
    if engine in ("sequential", "both"):
        detection, classification = _sequential_campaign(
            spec, state_backend, instrumentor=instrumentor
        )
        if defect == "swap_pure_conditional":
            classification = _swap_pure_conditional(classification)
        sequential = (detection, classification)
        mismatches.extend(
            _check_oracle(spec, oracle, detection, classification, "oracle-sequential")
        )
        if state_backend != "graph":
            # Check 5: backend equivalence against the reference backend.
            ref_detection, ref_classification = _sequential_campaign(
                spec, "graph"
            )
            if detection.log.to_json() != ref_detection.log.to_json():
                mismatches.append(
                    Mismatch(
                        "backend-equivalence",
                        spec.name,
                        f"{state_backend} and graph run logs differ",
                    )
                )
            elif classification.to_json() != ref_classification.to_json():
                mismatches.append(
                    Mismatch(
                        "backend-equivalence",
                        spec.name,
                        f"{state_backend} and graph classifications differ",
                    )
                )
    if engine in ("parallel", "both"):
        detection, classification = _parallel_campaign(
            spec, workers, state_backend, instrumentor
        )
        if defect == "merge_reversed":
            detection.log.runs.reverse()
        if sequential is not None:
            # Check 2: merged parallel output is bit-identical to the
            # sequential engine's (same plan, deterministic merge).
            if sequential[0].log.to_json() != detection.log.to_json():
                mismatches.append(
                    Mismatch(
                        "engine-equivalence",
                        spec.name,
                        "sequential and parallel run logs differ",
                    )
                )
            elif sequential[1].to_json() != classification.to_json():
                mismatches.append(
                    Mismatch(
                        "engine-equivalence",
                        spec.name,
                        "sequential and parallel classifications differ",
                    )
                )
        else:
            mismatches.extend(
                _check_oracle(
                    spec, oracle, detection, classification, "oracle-parallel"
                )
            )

    runs_pruned = 0
    if static_prune:
        # Check 6: prune equivalence against the unpruned sweep.
        reference = sequential
        if reference is None:
            reference = _sequential_campaign(spec, state_backend)
        pruned_detection, pruned_classification = _sequential_campaign(
            spec, state_backend, static_prune=True
        )
        if pruned_detection.telemetry is not None:
            runs_pruned = pruned_detection.telemetry.runs_pruned
        if log_json_without_provenance(
            pruned_detection.log
        ) != log_json_without_provenance(reference[0].log):
            mismatches.append(
                Mismatch(
                    "prune-equivalence",
                    spec.name,
                    "pruned and full run logs differ (modulo provenance)",
                )
            )
        elif pruned_classification.to_json() != reference[1].to_json():
            mismatches.append(
                Mismatch(
                    "prune-equivalence",
                    spec.name,
                    "pruned and full classifications differ",
                )
            )

    runs_derived = 0
    if trace_derive:
        # Check 7: trace equivalence against the fully dynamic sweep.
        reference = sequential
        if reference is None:
            reference = _sequential_campaign(spec, state_backend)
        derived_detection, derived_classification = _sequential_campaign(
            spec, state_backend, trace_derive=True
        )
        if derived_detection.telemetry is not None:
            runs_derived = derived_detection.telemetry.runs_derived
        if log_json_without_provenance(
            derived_detection.log
        ) != log_json_without_provenance(reference[0].log):
            mismatches.append(
                Mismatch(
                    "trace-equivalence",
                    spec.name,
                    "derived and dynamic run logs differ (modulo provenance)",
                )
            )
        elif derived_classification.to_json() != reference[1].to_json():
            mismatches.append(
                Mismatch(
                    "trace-equivalence",
                    spec.name,
                    "derived and dynamic classifications differ",
                )
            )

    if instrumentor != "weave":
        # Check 9: instrumentor equivalence.  Both profiling passes are
        # attached so the event dispatch (call-enter stacks, escapes,
        # write traces) is actually exercised, not just the weave.
        alt = _sequential_campaign(
            spec,
            state_backend,
            static_prune=True,
            trace_derive=True,
            instrumentor=instrumentor,
        )
        ref = _sequential_campaign(
            spec,
            state_backend,
            static_prune=True,
            trace_derive=True,
            instrumentor="weave",
        )
        if log_json_without_provenance(
            alt[0].log
        ) != log_json_without_provenance(ref[0].log):
            mismatches.append(
                Mismatch(
                    "instrumentor-equivalence",
                    spec.name,
                    f"{instrumentor} and weave run logs differ "
                    "(modulo provenance)",
                )
            )
        elif alt[1].to_json() != ref[1].to_json():
            mismatches.append(
                Mismatch(
                    "instrumentor-equivalence",
                    spec.name,
                    f"{instrumentor} and weave classifications differ",
                )
            )

    for strategy in ("snapshot", "undolog"):
        mismatches.extend(
            _check_masking(spec, oracle, strategy, defect, state_backend)
        )

    variant_applied = 0
    if variants > 0:
        # Check 8: variant invariance (see _check_variants).
        variant_mismatches, variant_applied = _check_variants(
            spec,
            variants,
            variant_seed,
            state_backend,
            static_prune,
            trace_derive,
        )
        mismatches.extend(variant_mismatches)

    stats = {
        "total_points": oracle.total_points,
        "runs": len(oracle.runs),
        "runs_pruned": runs_pruned,
        "runs_derived": runs_derived,
        "variant_applied": variant_applied,
    }
    for category in CATEGORIES:
        stats[f"methods_{category}"] = sum(
            1 for c in oracle.categories.values() if c == category
        )
    return ProgramVerdict(spec=spec, mismatches=mismatches, stats=stats)


def run_fuzz(
    seed: int,
    programs: int,
    *,
    max_depth: int = 3,
    engine: str = "both",
    workers: int = 2,
    defect: Optional[str] = None,
    state_backend: str = "graph",
    static_prune: bool = False,
    trace_derive: bool = False,
    variants: int = 0,
    instrumentor: str = "weave",
    progress: Optional[Callable[[int, int, ProgramVerdict], None]] = None,
) -> FuzzReport:
    """Fuzz ``programs`` generated subjects; return the aggregate report.

    Args:
        state_backend: backend the checked campaigns compare state with;
            a non-graph value additionally enables the per-program
            backend-equivalence check (see :func:`check_program`).
        static_prune: additionally run each program's sequential campaign
            under the static pruning pass and assert prune equivalence
            (see :func:`check_program`).
        trace_derive: additionally run each program's sequential campaign
            under the trace-derivation pass and assert trace equivalence
            (see :func:`check_program`).
        variants: when positive, additionally check detection invariance
            across this many semantic-preserving AST variants of every
            program — Check 8 (recipes seeded by the fuzz seed).
        instrumentor: instrumentation backend the checked campaigns
            observe through; a non-default value additionally enables
            the per-program instrumentor-equivalence check — Check 9
            (see :func:`check_program`).
        progress: optional ``(done, total, verdict)`` callback after each
            program (the CLI prints a line per failure).
    """
    specs = generate_batch(seed, programs, max_depth=max_depth)
    mismatches: List[Mismatch] = []
    failing: List[str] = []
    total_points = 0
    total_runs = 0
    total_pruned = 0
    total_derived = 0
    total_variant_applied = 0
    category_counts = {category: 0 for category in CATEGORIES}
    for index, spec in enumerate(specs):
        verdict = check_program(
            spec,
            engine=engine,
            workers=workers,
            defect=defect,
            state_backend=state_backend,
            static_prune=static_prune,
            trace_derive=trace_derive,
            variants=variants,
            variant_seed=seed,
            instrumentor=instrumentor,
        )
        total_points += verdict.stats["total_points"]
        total_runs += verdict.stats["runs"]
        total_pruned += verdict.stats.get("runs_pruned", 0)
        total_derived += verdict.stats.get("runs_derived", 0)
        total_variant_applied += verdict.stats.get("variant_applied", 0)
        for category in CATEGORIES:
            category_counts[category] += verdict.stats[f"methods_{category}"]
        if not verdict.ok:
            mismatches.extend(verdict.mismatches)
            failing.append(spec.name)
        if progress is not None:
            progress(index + 1, len(specs), verdict)
    return FuzzReport(
        seed=seed,
        programs=programs,
        max_depth=max_depth,
        engine=engine,
        workers=workers,
        defect=defect,
        total_points=total_points,
        total_runs=total_runs,
        category_counts=category_counts,
        mismatches=mismatches,
        failing_programs=failing,
        state_backend=state_backend,
        static_prune=static_prune,
        total_pruned=total_pruned,
        trace_derive=trace_derive,
        total_derived=total_derived,
        variants=variants,
        total_variant_applied=total_variant_applied,
        instrumentor=instrumentor,
    )


def run_self_check(
    seed: int,
    *,
    programs_per_defect: int = 8,
    max_depth: int = 3,
    workers: int = 2,
) -> Dict[str, bool]:
    """Plant each known defect; return whether the fuzzer caught it.

    A defect is *caught* when at least one generated program yields a
    mismatch that a defect-free run of the same batch does not.  The
    clean batch is checked first — a dirty baseline would make the
    defect runs meaningless.
    """
    clean = run_fuzz(
        seed,
        programs_per_defect,
        max_depth=max_depth,
        engine="both",
        workers=workers,
    )
    if not clean.ok:
        raise AssertionError(
            "self-check baseline is dirty — fix these real mismatches "
            f"first: {[m.to_dict() for m in clean.mismatches[:3]]}"
        )
    results: Dict[str, bool] = {}
    for defect in DEFECTS:
        report = run_fuzz(
            seed,
            programs_per_defect,
            max_depth=max_depth,
            engine="both",
            workers=workers,
            defect=defect,
        )
        results[defect] = not report.ok
    return results
