"""Command-line interface: run the paper's pipeline from a shell.

The paper exposes programmer decisions (never-wrap, exception-free,
manual-fix) through a web interface; here they live in a JSON *policy
file* passed to the relevant subcommands::

    {
      "never_wrap": ["Stack.push"],
      "manual_fix": [],
      "exception_free": ["Stack.size"],
      "wrap_conditional": false
    }

Subcommands::

    python -m repro apps                     list the evaluation applications
    python -m repro detect LinkedList        run one detection campaign
    python -m repro detect LinkedList --workers 4 --journal c.jsonl --resume
                                             parallel engine, resumable
    python -m repro validate LinkedList      detect -> mask -> re-detect
    python -m repro validate LinkedList --strategy undolog
                                             undo-log checkpointing
    python -m repro detect Stack --state-backend fingerprint
                                             one-pass state fingerprints
    python -m repro shard LinkedList --index 0 --count 4 --fragment s0.jsonl
                                             run one campaign shard
    python -m repro merge s0.jsonl s1.jsonl s2.jsonl s3.jsonl
                                             coordinator merge of fragments
    python -m repro serve --port 8642        campaign service (queue + cache)
    python -m repro serve --cache-path cache.jsonl --policy shed-oldest
                                             persistent cache + load shedding
    python -m repro chaos LLMap --seed 7 --shards 3
                                             seeded fault injection: supervised
                                             campaign must converge bit-identical
    python -m repro fuzz --seed 7 --programs 200
                                             differential fuzzing vs oracle
    python -m repro fuzz --self-check        plant defects, assert caught
    python -m repro fuzz --variants 3        invariance across AST variants
    python -m repro variants LinkedList --check
                                             metamorphic variant corpus
    python -m repro table1                   regenerate Table 1
    python -m repro figure 3                 regenerate Figure 2/3/4
    python -m repro fig5                     masking overhead grid
    python -m repro fixes                    the §6.1 LinkedList narrative
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.core import WrapPolicy, format_run_provenance, render_bars
from repro.core.instrument import InstrumentorError
from repro.core.policy import select_methods_to_wrap

__all__ = ["main", "build_parser", "load_policy"]


def load_policy(path: Optional[str]) -> Optional[WrapPolicy]:
    """Read a policy file (the web-interface stand-in)."""
    if path is None:
        return None
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    unknown = set(data) - {
        "never_wrap",
        "manual_fix",
        "exception_free",
        "wrap_conditional",
    }
    if unknown:
        raise ValueError(f"unknown policy keys: {sorted(unknown)}")
    return WrapPolicy(
        never_wrap=set(data.get("never_wrap", ())),
        manual_fix=set(data.get("manual_fix", ())),
        exception_free=set(data.get("exception_free", ())),
        wrap_conditional=bool(data.get("wrap_conditional", False)),
    )


def _cmd_apps(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_PROGRAMS

    for program in ALL_PROGRAMS:
        print(f"{program.language:4s}  {program.name}")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.experiments import program_by_name, run_app_campaign

    policy = load_policy(args.policy)
    outcome = run_app_campaign(
        program_by_name(args.app),
        stride=args.stride,
        policy=policy,
        scale=args.scale,
        workers=args.workers,
        resume=args.resume,
        journal=args.journal,
        timeout=args.timeout,
        retries=args.retries,
        state_backend=args.state_backend,
        static_prune=args.static_prune,
        trace_derive=args.trace_derive,
        instrumentor=args.instrumentor,
    )
    report = outcome.report
    print(
        f"{report.name}: {report.class_count} classes, "
        f"{report.method_count} methods, "
        f"{report.injection_count} injections"
    )
    print(format_run_provenance(outcome.classification))
    print(render_bars(report.fractions_by_methods()))
    print()
    for key in sorted(outcome.classification.methods):
        mc = outcome.classification.methods[key]
        print(f"  {mc.category:12s} {key}  (calls={mc.calls})")
    to_wrap = select_methods_to_wrap(
        outcome.classification, policy or WrapPolicy()
    )
    print(f"\nmethods the masking phase would wrap: {to_wrap}")
    if outcome.detection.telemetry is not None:
        print("\n-- campaign telemetry --")
        print(outcome.detection.telemetry.summary())
    if args.save_log:
        outcome.detection.log.save(args.save_log)
        print(f"run log written to {args.save_log}")
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    from repro.experiments import program_by_name, run_shard

    result = run_shard(
        program_by_name(args.app),
        args.index,
        args.count,
        args.fragment,
        stride=args.stride,
        timeout=args.timeout,
        retries=args.retries,
        resume=args.resume,
        state_backend=args.state_backend,
        static_prune=args.static_prune,
        trace_derive=args.trace_derive,
        instrumentor=args.instrumentor,
    )
    print(
        f"shard {result.shard_index}/{result.shard_count}: "
        f"{len(result.points)} of {result.total_points} point(s) -> "
        f"{result.fragment_path}"
    )
    print(
        f"  executed={result.executed} resumed={result.resumed} "
        f"pruned={result.pruned} derived={result.derived} "
        f"crashed={result.crashed} retries={result.retries}"
    )
    print(f"  wall={result.wall_seconds:.3f}s")
    return 0 if result.crashed == 0 else 1


def _cmd_merge(args: argparse.Namespace) -> int:
    from repro.core import format_run_provenance, render_bars
    from repro.core.report import build_app_report
    from repro.experiments import merge_fragments

    merged = merge_fragments(args.fragments)
    classification = merged.classify(load_policy(args.policy))
    report = build_app_report(
        merged.detection.program, merged.detection, classification
    )
    print(
        f"{report.name}: merged {len(args.fragments)} fragment(s) -> "
        f"{report.class_count} classes, {report.method_count} methods, "
        f"{report.injection_count} injections"
    )
    print(format_run_provenance(classification))
    print(render_bars(report.fractions_by_methods()))
    print()
    for key in sorted(classification.methods):
        mc = classification.methods[key]
        print(f"  {mc.category:12s} {key}  (calls={mc.calls})")
    if merged.detection.telemetry is not None:
        print("\n-- campaign telemetry --")
        print(merged.detection.telemetry.summary())
    if args.save_log:
        merged.detection.log.save(args.save_log)
        print(f"run log written to {args.save_log}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import serve

    serve(
        args.host,
        args.port,
        queue_size=args.queue_size,
        cache_capacity=args.cache_capacity,
        cache_path=args.cache_path,
        policy=args.policy,
        max_pending_cost=args.max_pending_cost,
        max_body_bytes=args.max_body_bytes,
    )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json as _json
    import tempfile

    from repro.experiments import program_by_name, run_chaos_campaign
    from repro.experiments.supervise import ShardSupervisor

    program_by_name(args.app)  # fail fast on a bad name
    supervisor = ShardSupervisor(
        max_attempts=args.max_attempts,
        heartbeat_timeout=args.heartbeat_timeout,
        seed=args.seed,
    )
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    report = run_chaos_campaign(
        lambda: program_by_name(args.app),
        workdir,
        seed=args.seed,
        shard_count=args.shards,
        supervisor=supervisor,
        stride=args.stride,
        timeout=args.timeout,
        retries=args.retries,
        state_backend=args.state_backend,
        static_prune=args.static_prune,
        trace_derive=args.trace_derive,
        instrumentor=args.instrumentor,
        hang_seconds=args.hang_seconds,
    )
    print(report.summary())
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            _json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"chaos report written to {args.report_out}")
    return 0 if report.converged else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments import program_by_name, validate_masking

    validation = validate_masking(
        program_by_name(args.app),
        stride=args.stride,
        policy=load_policy(args.policy),
        wrap_conditional=args.wrap_conditional,
        strategy=args.strategy,
        state_backend=args.state_backend,
        static_prune=args.static_prune,
        trace_derive=args.trace_derive,
        instrumentor=args.instrumentor,
    )
    print(validation.summary())
    return 0 if validation.masking_effective else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import (
        ProgramSpec,
        check_program,
        make_failure_predicate,
        run_fuzz,
        run_self_check,
        shrink,
    )

    if args.self_check:
        results = run_self_check(
            args.seed,
            programs_per_defect=args.programs or 8,
            max_depth=args.max_depth,
            workers=args.workers,
        )
        for defect, caught in sorted(results.items()):
            print(f"  {'caught ' if caught else 'MISSED '} {defect}")
        if all(results.values()):
            print("self-check passed: every planted defect was caught")
            return 0
        print("self-check FAILED: a planted defect went unnoticed",
              file=sys.stderr)
        return 1

    if args.replay:
        with open(args.replay, "r", encoding="utf-8") as handle:
            spec = ProgramSpec.from_json(handle.read())
        verdict = check_program(
            spec,
            engine=args.engine,
            workers=args.workers,
            state_backend=args.state_backend,
            static_prune=args.static_prune,
            trace_derive=args.trace_derive,
            variants=args.variants,
            variant_seed=args.seed,
            instrumentor=args.instrumentor,
        )
        if verdict.ok:
            print(f"{spec.name}: all checks pass")
            return 0
        for mismatch in verdict.mismatches:
            print(f"  {mismatch.check}: {mismatch.detail}")
        return 1

    def progress(done: int, total: int, verdict) -> None:
        for mismatch in verdict.mismatches:
            print(
                f"[{done}/{total}] MISMATCH {mismatch.check} in "
                f"{mismatch.program}: {mismatch.detail}",
                file=sys.stderr,
            )

    report = run_fuzz(
        args.seed,
        args.programs,
        max_depth=args.max_depth,
        engine=args.engine,
        workers=args.workers,
        progress=progress,
        state_backend=args.state_backend,
        static_prune=args.static_prune,
        trace_derive=args.trace_derive,
        variants=args.variants,
        instrumentor=args.instrumentor,
    )
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json() + "\n")
    print(
        f"fuzzed {report.programs} programs (seed {report.seed}, engine "
        f"{report.engine}): {report.total_runs} campaign runs over "
        f"{report.total_points} injection points, methods by category "
        f"{report.category_counts}"
    )
    if report.static_prune:
        print(
            f"prune equivalence checked: {report.total_pruned} point(s) "
            f"decided statically across all programs"
        )
    if report.trace_derive:
        print(
            f"trace equivalence checked: {report.total_derived} point(s) "
            f"derived from reference traces across all programs"
        )
    if report.variants:
        print(
            f"variant invariance checked: {report.variants} variant(s) per "
            f"program, {report.total_variant_applied} transform "
            f"application(s) across the corpus"
        )
    if report.instrumentor != "weave":
        print(
            f"instrumentor equivalence checked: {report.instrumentor} vs "
            f"weave on every program"
        )
    if report.ok:
        print("zero oracle mismatches across engines and checkpoint strategies")
        return 0
    print(
        f"{len(report.mismatches)} mismatch(es) in "
        f"{len(report.failing_programs)} program(s)",
        file=sys.stderr,
    )
    first = report.failing_programs[0]
    index = int(first.rsplit("-", 1)[1])
    from repro.fuzz import generate_program

    spec = generate_program(args.seed, index, max_depth=args.max_depth)
    if not args.no_shrink:
        checks = {m.check for m in report.mismatches if m.program == first}
        print(f"shrinking {first} (budget {args.max_shrink_evals} evals)...",
              file=sys.stderr)
        spec = shrink(
            spec,
            make_failure_predicate(
                checks,
                engine=args.engine,
                workers=args.workers,
                state_backend=args.state_backend,
                static_prune=args.static_prune,
                trace_derive=args.trace_derive,
                variants=args.variants,
                variant_seed=args.seed,
                instrumentor=args.instrumentor,
            ),
            max_evals=args.max_shrink_evals,
        )
    with open(args.reproducer_out, "w", encoding="utf-8") as handle:
        handle.write(spec.to_json() + "\n")
    print(
        f"minimal reproducer written to {args.reproducer_out}; replay with: "
        f"python -m repro fuzz --replay {args.reproducer_out}",
        file=sys.stderr,
    )
    return 1


def _cmd_variants(args: argparse.Namespace) -> int:
    """Generate a metamorphic variant corpus for one subject, and
    optionally run the detection-invariance oracle over it."""
    import functools
    import os

    if args.app is None and args.fuzz_seed is None:
        print("error: give an application name or --fuzz-seed",
              file=sys.stderr)
        return 2

    from repro.core.variants import (
        build_spec_variant,
        campaign_bundle,
        check_invariance,
        diff_bundles,
        grafted_variant,
        make_recipes,
    )

    recipes = make_recipes(args.seed, args.count)
    divergences = []

    def emit(tag: int, label: str, module_dicts) -> None:
        applied = sum(len(m["applied"]) for m in module_dicts)
        print(
            f"  v{tag}: {applied} transform application(s) "
            f"(recipe {'+'.join(recipes[tag - 1])})"
        )
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, f"{label}.v{tag}.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(
                    {"subject": label, "tag": tag, "modules": module_dicts},
                    handle,
                    indent=2,
                    sort_keys=True,
                )
                handle.write("\n")

    if args.fuzz_seed is not None:
        from repro.fuzz import build_program, generate_program

        spec = generate_program(args.fuzz_seed, args.fuzz_index)
        print(f"subject: fuzz spec {spec.name}")
        factories = []
        for index, recipe in enumerate(recipes):
            tag = index + 1
            _program, module = build_spec_variant(spec, recipe, tag=tag)
            emit(tag, spec.name, [module.to_dict()])
            factories.append(
                (
                    f"v{tag}",
                    functools.partial(
                        lambda r, t: build_spec_variant(spec, r, tag=t)[0],
                        recipe,
                        tag,
                    ),
                )
            )
        if args.check:
            report = check_invariance(
                spec.name,
                functools.partial(build_program, spec),
                factories,
                static_prune=args.static_prune,
                trace_derive=args.trace_derive,
                state_backend=args.state_backend,
            )
            divergences = report.divergences
    else:
        from repro.experiments import program_by_name

        program = program_by_name(args.app)
        print(f"subject: application {program.name}")
        base = (
            campaign_bundle(
                lambda: program,
                static_prune=args.static_prune,
                trace_derive=args.trace_derive,
                state_backend=args.state_backend,
            )
            if args.check
            else None
        )
        for index, recipe in enumerate(recipes):
            tag = index + 1
            with grafted_variant(program, recipe, tag=tag) as grafted:
                emit(
                    tag,
                    program.name,
                    [m.to_dict() for m in grafted.modules.values()],
                )
                if grafted.skipped_methods:
                    print(
                        f"      (skipped class-cell methods: "
                        f"{', '.join(grafted.skipped_methods)})"
                    )
                if base is not None:
                    bundle = campaign_bundle(
                        lambda: grafted.program,
                        static_prune=args.static_prune,
                        trace_derive=args.trace_derive,
                        state_backend=args.state_backend,
                    )
                    divergences.extend(
                        diff_bundles(
                            base,
                            bundle,
                            subject=program.name,
                            variant=f"v{tag}",
                        )
                    )

    if not args.check:
        return 0
    if not divergences:
        print(
            f"invariance holds: identical campaign outputs across "
            f"{args.count} variant(s)"
        )
        return 0
    for divergence in divergences:
        print(
            f"DIVERGENCE {divergence.variant} on {divergence.aspect}: "
            f"{divergence.detail}",
            file=sys.stderr,
        )
    return 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core.htmlreport import render_campaign_html
    from repro.experiments import program_by_name, run_app_campaign

    outcome = run_app_campaign(
        program_by_name(args.app),
        stride=args.stride,
        policy=load_policy(args.policy),
    )
    page = render_campaign_html(outcome.report, log=outcome.detection.log)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(page)
    print(f"report written to {args.output}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments import (
        run_cpp_campaigns,
        run_java_campaigns,
        table1,
    )

    outcomes = run_cpp_campaigns(stride=args.stride) + run_java_campaigns(
        stride=args.stride
    )
    print(table1(outcomes))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments import (
        figure2,
        figure3,
        figure4,
        run_cpp_campaigns,
        run_java_campaigns,
    )

    if args.number == 2:
        figures = figure2(run_cpp_campaigns(stride=args.stride))
    elif args.number == 3:
        figures = figure3(run_java_campaigns(stride=args.stride))
    elif args.number == 4:
        figures = figure4(
            run_cpp_campaigns(stride=args.stride),
            run_java_campaigns(stride=args.stride),
        )
    else:
        print("figure must be 2, 3, or 4 (use the fig5 subcommand)",
              file=sys.stderr)
        return 2
    for panel in sorted(figures):
        data = figures[panel]
        print(f"--- {data.title}")
        print(data.rendered)
        print()
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro.experiments import format_overhead_table, measure_overhead

    points = measure_overhead(calls=args.calls, repeats=args.repeats)
    print(format_overhead_table(points))
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments import reproduce_all

    report = reproduce_all(
        stride=args.stride,
        scale=args.scale,
        fig5_calls=args.calls,
        progress=lambda message: print(message, file=sys.stderr),
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"report written to {args.out}")
    else:
        print(report)
    return 0


def _cmd_fixes(args: argparse.Namespace) -> int:
    from repro.experiments import compare_linkedlist_fixes

    comparison = compare_linkedlist_fixes(stride=args.stride)
    print(comparison.summary())
    print(f"pure before: {comparison.pure_before}")
    print(f"pure after : {comparison.pure_after}")
    return 0


def _add_static_prune_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--static-prune",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="prove methods receiver-pure with a static pre-analysis and "
             "synthesize the records of provably decided injection points "
             "instead of executing them (default: off; classification is "
             "identical, synthesized runs carry provenance=static; "
             "composes with --trace-derive, the static tag winning on "
             "points both passes decide)")


def _add_trace_derive_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-derive",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="derive the verdicts of trace-decidable injection points "
             "from ONE instrumented reference execution instead of "
             "re-running the subject per point (default: off; "
             "classification is identical, derived runs carry "
             "provenance=trace; composes with --static-prune and every "
             "--state-backend; note the instrumented reference run still "
             "happens even when every point is decided without execution)")


def _add_instrumentor_flag(parser: argparse.ArgumentParser) -> None:
    from repro.core.instrument import DEFAULT_INSTRUMENTOR, INSTRUMENTOR_NAMES

    parser.add_argument(
        "--instrumentor", choices=INSTRUMENTOR_NAMES,
        default=DEFAULT_INSTRUMENTOR,
        help="instrumentation backend campaigns observe the subject "
             "through (default: weave): method-replacement weaving "
             "(weave, any Python) or PEP 669 sys.monitoring events "
             "(monitoring, Python 3.12+; identical logs, zero overhead "
             "on uninstrumented code paths)")


def _add_state_backend_flag(parser: argparse.ArgumentParser) -> None:
    from repro.core.state import DETECTION_BACKENDS

    parser.add_argument(
        "--state-backend", choices=DETECTION_BACKENDS, default="graph",
        help="how campaigns compare before/after state (default: graph): "
             "full object-graph isomorphism (graph, the reference) or "
             "one-pass 128-bit digests with a graph fallback for "
             "diagnostics (fingerprint; identical classification and "
             "identical logs, faster)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Detect and mask non-atomic exception handling "
        "(DSN 2003 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list the evaluation applications").set_defaults(
        func=_cmd_apps
    )

    detect = sub.add_parser("detect", help="run one detection campaign")
    detect.add_argument("app", help="application name (see `apps`)")
    detect.add_argument("--stride", type=int, default=1)
    detect.add_argument("--scale", type=int, default=1,
                        help="workload repetitions (quadratic cost)")
    detect.add_argument("--policy", help="JSON policy file")
    detect.add_argument("--save-log", help="write the run log (JSON)")
    detect.add_argument(
        "--workers", type=int, default=None,
        help="run the campaign on the parallel engine with N worker "
             "processes (results are identical to the sequential engine)")
    detect.add_argument(
        "--journal", default=None,
        help="campaign journal path (JSONL of completed points)")
    detect.add_argument(
        "--resume", action="store_true",
        help="skip injection points already recorded in the journal")
    detect.add_argument(
        "--timeout", type=float, default=None,
        help="per-run wall-clock budget in seconds (parallel engine)")
    detect.add_argument(
        "--retries", type=int, default=1,
        help="retries per timed-out point before marking it crashed")
    _add_state_backend_flag(detect)
    _add_static_prune_flag(detect)
    _add_trace_derive_flag(detect)
    _add_instrumentor_flag(detect)
    detect.set_defaults(func=_cmd_detect)

    shard = sub.add_parser(
        "shard",
        help="run one deterministic shard of a campaign, writing a "
             "journal fragment for the coordinator merge",
    )
    shard.add_argument("app", help="application name (see `apps`)")
    shard.add_argument("--index", type=int, required=True,
                       help="this worker's shard index (0-based)")
    shard.add_argument("--count", type=int, required=True,
                       help="total number of shards in the campaign")
    shard.add_argument("--fragment", required=True,
                       help="journal fragment path this shard writes")
    shard.add_argument("--stride", type=int, default=1)
    shard.add_argument(
        "--resume", action="store_true",
        help="replay an existing fragment and run only unfinished points")
    shard.add_argument(
        "--timeout", type=float, default=None,
        help="per-run wall-clock budget in seconds")
    shard.add_argument(
        "--retries", type=int, default=1,
        help="retries per timed-out point before marking it crashed")
    _add_state_backend_flag(shard)
    _add_static_prune_flag(shard)
    _add_trace_derive_flag(shard)
    _add_instrumentor_flag(shard)
    shard.set_defaults(func=_cmd_shard)

    merge = sub.add_parser(
        "merge",
        help="merge shard fragments into one campaign result "
             "(bit-identical to the sequential engine)",
    )
    merge.add_argument("fragments", nargs="+",
                       help="journal fragments, one per shard")
    merge.add_argument("--policy", help="JSON policy file")
    merge.add_argument("--save-log", help="write the merged run log (JSON)")
    merge.set_defaults(func=_cmd_merge)

    serve = sub.add_parser(
        "serve",
        help="campaign service: HTTP queue with bounded backpressure "
             "and a digest-keyed result cache",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument(
        "--queue-size", type=int, default=8,
        help="max queued campaigns before submissions get 503")
    serve.add_argument(
        "--cache-capacity", type=int, default=128,
        help="campaign results kept in the LRU result cache")
    serve.add_argument(
        "--cache-path", default=None,
        help="persist the result cache to this JSONL journal so a "
             "restarted server answers repeats without re-running")
    serve.add_argument(
        "--policy", choices=["reject", "shed-oldest", "cost-aware"],
        default="reject",
        help="load-shedding policy when the queue is full: reject the "
             "newcomer (503), shed the oldest queued campaign, or admit "
             "by estimated cost")
    serve.add_argument(
        "--max-pending-cost", type=int, default=None,
        help="pending-work budget for --policy cost-aware (statically "
             "estimated injection points across queued campaigns)")
    serve.add_argument(
        "--max-body-bytes", type=int, default=1_048_576,
        help="largest request body accepted (413 beyond it)")
    serve.set_defaults(func=_cmd_serve)

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault injection against the campaign "
             "infrastructure itself: kills, torn journal writes, IO "
             "errors and hangs must not change the merged result",
    )
    chaos.add_argument("app", help="application name (see `apps`)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="seeds the fault plan and the retry jitter")
    chaos.add_argument("--shards", type=int, default=3,
                       help="shard count for the supervised campaign")
    chaos.add_argument("--stride", type=int, default=1)
    chaos.add_argument(
        "--timeout", type=float, default=0.25,
        help="per-run wall-clock budget (hung runs blow it and crash)")
    chaos.add_argument(
        "--retries", type=int, default=1,
        help="retries per timed-out point before marking it crashed")
    chaos.add_argument(
        "--hang-seconds", type=float, default=1.0,
        help="how long an injected hang stalls a run")
    chaos.add_argument(
        "--max-attempts", type=int, default=5,
        help="supervisor attempts per shard before giving up")
    chaos.add_argument(
        "--heartbeat-timeout", type=float, default=5.0,
        help="seconds without shard progress before the supervisor "
             "kills the worker")
    chaos.add_argument(
        "--workdir", default=None,
        help="directory for shard fragments (default: temp dir)")
    chaos.add_argument(
        "--report-out", default=None,
        help="write the full chaos report (plan, fault log, verdict) "
             "as JSON — the reproducer artifact CI uploads on failure")
    _add_state_backend_flag(chaos)
    _add_static_prune_flag(chaos)
    _add_trace_derive_flag(chaos)
    _add_instrumentor_flag(chaos)
    chaos.set_defaults(func=_cmd_chaos)

    validate = sub.add_parser(
        "validate", help="detect, mask, and re-detect one application"
    )
    validate.add_argument("app")
    validate.add_argument("--stride", type=int, default=1)
    validate.add_argument("--policy", help="JSON policy file")
    validate.add_argument("--wrap-conditional", action="store_true")
    validate.add_argument(
        "--strategy", choices=("snapshot", "undolog"), default="snapshot",
        help="checkpoint strategy for the masked re-detection: eager deep "
             "copy (snapshot) or write-barrier undo log (undolog; only "
             "sound for attribute-reassignment state)")
    _add_state_backend_flag(validate)
    _add_static_prune_flag(validate)
    _add_trace_derive_flag(validate)
    _add_instrumentor_flag(validate)
    validate.set_defaults(func=_cmd_validate)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: random programs vs a ground-truth oracle",
    )
    fuzz.add_argument("--seed", type=int, default=7)
    fuzz.add_argument("--programs", type=int, default=100,
                      help="number of generated programs to check")
    fuzz.add_argument("--max-depth", type=int, default=3,
                      help="bound on the generated class-graph depth")
    fuzz.add_argument("--engine", choices=("sequential", "parallel", "both"),
                      default="both",
                      help="which detection engine(s) to cross-check")
    fuzz.add_argument("--workers", type=int, default=2,
                      help="worker processes for the parallel engine")
    fuzz.add_argument("--self-check", action="store_true",
                      help="plant known defects (classifier swap, merge "
                           "reorder, rollback removal) and assert the "
                           "fuzzer catches each one")
    fuzz.add_argument("--replay", metavar="FILE",
                      help="re-run the checks on a saved reproducer spec")
    fuzz.add_argument("--report-out", metavar="FILE",
                      help="write the deterministic report JSON here")
    fuzz.add_argument("--reproducer-out", metavar="FILE",
                      default="fuzz-reproducer.json",
                      help="where to write the shrunk failing spec")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="write the original failing spec without shrinking")
    fuzz.add_argument("--max-shrink-evals", type=int, default=200,
                      help="budget of harness evaluations while shrinking")
    _add_state_backend_flag(fuzz)
    fuzz.add_argument(
        "--static-prune", action="store_true", default=False,
        help="additionally run each program's sequential campaign under "
             "the static pruning pass and assert the pruned sweep's log "
             "and classification equal the full sweep's")
    fuzz.add_argument(
        "--trace-derive", action="store_true", default=False,
        help="additionally run each program's sequential campaign under "
             "the trace-derivation pass and assert the derived sweep's "
             "log and classification are bit-identical (modulo "
             "provenance) to the dynamic sweep's")
    fuzz.add_argument(
        "--variants", type=int, default=0, metavar="N",
        help="additionally check detection invariance across N "
             "semantic-preserving AST variants of every program "
             "(Check 8; recipes seeded by --seed; default: 0 = off)")
    _add_instrumentor_flag(fuzz)
    fuzz.set_defaults(func=_cmd_fuzz)

    variants = sub.add_parser(
        "variants",
        help="generate semantic-preserving variants of a subject and "
             "optionally assert detection invariance across them",
    )
    variants.add_argument(
        "app", nargs="?", default=None,
        help="application name (see `apps`); omit with --fuzz-seed")
    variants.add_argument("--count", type=int, default=3,
                          help="number of variants to generate (default 3)")
    variants.add_argument("--seed", type=int, default=20260806,
                          help="recipe seed (deterministic corpus)")
    variants.add_argument(
        "--fuzz-seed", type=int, default=None,
        help="use a fuzz-generated spec as the subject instead of an "
             "application (generated with this seed)")
    variants.add_argument("--fuzz-index", type=int, default=0,
                          help="index of the fuzz spec within its seed")
    variants.add_argument(
        "--out", metavar="DIR",
        help="write each variant's transformed sources + transform "
             "manifest as JSON into this directory")
    variants.add_argument(
        "--check", action="store_true",
        help="run full campaigns on the original and every variant and "
             "assert identical outputs (exit 1 on divergence)")
    _add_state_backend_flag(variants)
    _add_static_prune_flag(variants)
    _add_trace_derive_flag(variants)
    variants.set_defaults(func=_cmd_variants)

    table = sub.add_parser("table1", help="regenerate Table 1")
    table.add_argument("--stride", type=int, default=1)
    table.set_defaults(func=_cmd_table1)

    figure = sub.add_parser("figure", help="regenerate Figure 2, 3, or 4")
    figure.add_argument("number", type=int, choices=(2, 3, 4))
    figure.add_argument("--stride", type=int, default=1)
    figure.set_defaults(func=_cmd_figure)

    fig5 = sub.add_parser("fig5", help="masking overhead grid (Figure 5)")
    fig5.add_argument("--calls", type=int, default=1000)
    fig5.add_argument("--repeats", type=int, default=5)
    fig5.set_defaults(func=_cmd_fig5)

    fixes = sub.add_parser(
        "fixes", help="the Section 6.1 LinkedList before/after comparison"
    )
    fixes.add_argument("--stride", type=int, default=1)
    fixes.set_defaults(func=_cmd_fixes)

    reproduce = sub.add_parser(
        "reproduce", help="regenerate the entire evaluation into one report"
    )
    reproduce.add_argument("--out", help="markdown file to write")
    reproduce.add_argument("--stride", type=int, default=1)
    reproduce.add_argument("--scale", type=int, default=1)
    reproduce.add_argument("--calls", type=int, default=1000,
                           help="Figure 5 loop length")
    reproduce.set_defaults(func=_cmd_reproduce)

    report = sub.add_parser(
        "report", help="write an HTML campaign report (the web-interface view)"
    )
    report.add_argument("app")
    report.add_argument("output", help="path of the HTML file to write")
    report.add_argument("--stride", type=int, default=1)
    report.add_argument("--policy", help="JSON policy file")
    report.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except (
        OSError, ValueError, json.JSONDecodeError, InstrumentorError
    ) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
