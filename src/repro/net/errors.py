"""Errors of the in-memory transport substrate."""

from __future__ import annotations

__all__ = [
    "TransportError",
    "ChannelClosedError",
    "EmptyChannelError",
    "FramingError",
    "DeliveryError",
]


class TransportError(Exception):
    """Base class of all transport errors."""


class ChannelClosedError(TransportError):
    """The peer closed the channel."""


class EmptyChannelError(TransportError):
    """A receive was attempted with no message pending."""


class FramingError(TransportError):
    """A byte stream could not be split into messages."""


class DeliveryError(TransportError):
    """The (simulated) network failed to deliver a message."""
