"""Length-prefixed message framing over byte streams.

``xml2Ctcp`` sends serialized records over a byte-oriented link; the
framer turns messages into length-prefixed byte frames and reassembles
them from arbitrarily fragmented chunks.  The decoder keeps a partial
buffer between calls — stateful, multi-step processing that the
injection campaign exercises.
"""

from __future__ import annotations

from typing import List

from repro.core.exceptions import throws

from .errors import FramingError

__all__ = ["encode_frame", "FrameDecoder"]

_HEADER_SIZE = 4
_MAX_FRAME = 1 << 20


@throws(FramingError)
def encode_frame(payload: bytes) -> bytes:
    """Prefix *payload* with its 4-byte big-endian length."""
    if not isinstance(payload, (bytes, bytearray)):
        raise FramingError("payload must be bytes")
    if len(payload) > _MAX_FRAME:
        raise FramingError(f"frame too large ({len(payload)} bytes)")
    return len(payload).to_bytes(_HEADER_SIZE, "big") + bytes(payload)


class FrameDecoder:
    """Reassembles frames from fragmented byte chunks."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.frames_decoded = 0

    def pending_bytes(self) -> int:
        return len(self._buffer)

    @throws(FramingError)
    def feed(self, chunk: bytes) -> List[bytes]:
        """Absorb *chunk*; return every frame completed by it.

        Legacy ordering: the chunk joins the buffer before the declared
        lengths are validated, so an oversized frame poisons the stream
        (the buffer keeps the bad header after the exception).
        """
        if not isinstance(chunk, (bytes, bytearray)):
            raise FramingError("chunk must be bytes")
        self._buffer.extend(chunk)  # legacy: buffered before length checks
        frames: List[bytes] = []
        while True:
            frame = self._try_decode_one()
            if frame is None:
                return frames
            frames.append(frame)

    def _try_decode_one(self):
        if len(self._buffer) < _HEADER_SIZE:
            return None
        length = int.from_bytes(self._buffer[:_HEADER_SIZE], "big")
        if length > _MAX_FRAME:
            raise FramingError(f"declared frame length {length} too large")
        if len(self._buffer) < _HEADER_SIZE + length:
            return None
        frame = bytes(self._buffer[_HEADER_SIZE : _HEADER_SIZE + length])
        del self._buffer[: _HEADER_SIZE + length]
        self.frames_decoded += 1
        return frame

    def reset(self) -> None:
        """Drop any partial frame."""
        self._buffer.clear()
