"""In-memory message transport with deterministic fault injection.

Stands in for the TCP links of the paper's ``xml2Ctcp`` application.  A
:class:`Link` is a pair of connected :class:`ChannelEnd` objects backed
by in-process queues; :class:`FaultPolicy` + :class:`FaultyLink` simulate
lossy/corrupting networks deterministically (seeded), so experiments are
reproducible run to run — a requirement of the injection campaign, which
re-executes the program once per injection point.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Tuple

from repro.core.exceptions import throws

from .errors import (
    ChannelClosedError,
    DeliveryError,
    EmptyChannelError,
)

__all__ = ["ChannelEnd", "Link", "FaultPolicy", "FaultyLink"]


class ChannelEnd:
    """One endpoint of a bidirectional link."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._inbox: List[Any] = []
        self._peer: Optional["ChannelEnd"] = None
        self.closed = False
        self.sent_count = 0
        self.received_count = 0

    def _connect(self, peer: "ChannelEnd") -> None:
        self._peer = peer

    # -- sending ----------------------------------------------------------

    @throws(ChannelClosedError)
    def send(self, message: Any) -> None:
        """Deliver *message* to the peer's inbox (checks before counting)."""
        if self.closed:
            raise ChannelClosedError(f"{self.name}: send on closed channel")
        if self._peer is None or self._peer.closed:
            raise ChannelClosedError(f"{self.name}: peer is closed")
        self._peer._inbox.append(message)
        self.sent_count += 1

    # -- receiving -----------------------------------------------------------

    def pending(self) -> int:
        """Number of messages waiting in this end's inbox."""
        return len(self._inbox)

    @throws(EmptyChannelError, ChannelClosedError)
    def receive(self) -> Any:
        """Pop the oldest pending message (safe ordering)."""
        if self.closed:
            raise ChannelClosedError(f"{self.name}: receive on closed channel")
        if not self._inbox:
            raise EmptyChannelError(f"{self.name}: no message pending")
        message = self._inbox.pop(0)
        self.received_count += 1
        return message

    def receive_all(self) -> List[Any]:
        """Drain the inbox (partial progress on failure: pure)."""
        messages = []
        while self.pending():
            messages.append(self.receive())
        return messages

    def close(self) -> None:
        self.closed = True


class Link:
    """A connected pair of channel ends."""

    def __init__(self, name: str = "link") -> None:
        self.name = name
        self.a = ChannelEnd(f"{name}.a")
        self.b = ChannelEnd(f"{name}.b")
        self.a._connect(self.b)
        self.b._connect(self.a)

    def ends(self) -> Tuple[ChannelEnd, ChannelEnd]:
        return (self.a, self.b)

    def close(self) -> None:
        self.a.close()
        self.b.close()


class FaultPolicy:
    """Deterministic, seeded fault decisions per message index.

    Args:
        seed: RNG seed; the same seed reproduces the same fault sequence.
        drop_rate: probability a message is silently dropped.
        error_rate: probability a send raises :class:`DeliveryError`.
        duplicate_rate: probability a message is delivered twice.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        drop_rate: float = 0.0,
        error_rate: float = 0.0,
        duplicate_rate: float = 0.0,
    ) -> None:
        for rate in (drop_rate, error_rate, duplicate_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("rates must be within [0, 1]")
        self.seed = seed
        self.drop_rate = drop_rate
        self.error_rate = error_rate
        self.duplicate_rate = duplicate_rate

    def decide(self, message_index: int) -> str:
        """Return 'deliver', 'drop', 'error', or 'duplicate'."""
        rng = random.Random(f"{self.seed}:{message_index}")
        roll = rng.random()
        if roll < self.error_rate:
            return "error"
        roll -= self.error_rate
        if roll < self.drop_rate:
            return "drop"
        roll -= self.drop_rate
        if roll < self.duplicate_rate:
            return "duplicate"
        return "deliver"


class FaultyLink:
    """A link whose ``a -> b`` direction passes through a fault policy."""

    def __init__(self, policy: FaultPolicy, name: str = "faulty") -> None:
        self.policy = policy
        self.link = Link(name)
        self.message_index = 0
        self.dropped = 0
        self.errored = 0
        self.duplicated = 0

    @throws(DeliveryError, ChannelClosedError)
    def send(self, message: Any) -> None:
        """Send from ``a`` to ``b`` subject to the fault policy.

        Legacy ordering: the message index advances before the fault
        decision, so a raised DeliveryError leaves the index changed.
        """
        index = self.message_index
        self.message_index += 1  # legacy: advanced before the decision
        outcome = self.policy.decide(index)
        if outcome == "error":
            self.errored += 1
            raise DeliveryError(f"message {index} failed to send")
        if outcome == "drop":
            self.dropped += 1
            return
        self.link.a.send(message)
        if outcome == "duplicate":
            self.duplicated += 1
            self.link.a.send(message)

    def receiver(self) -> ChannelEnd:
        return self.link.b

    def close(self) -> None:
        self.link.close()
