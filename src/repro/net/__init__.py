"""In-memory transport substrate (the TCP stand-in for the Self\\* apps).

Deterministic by construction: links are in-process queues and fault
injection is seeded, so the detection campaign can re-execute a workload
once per injection point and observe identical behavior.
"""

from .errors import (
    ChannelClosedError,
    DeliveryError,
    EmptyChannelError,
    FramingError,
    TransportError,
)
from .framing import FrameDecoder, encode_frame
from .transport import ChannelEnd, FaultPolicy, FaultyLink, Link

__all__ = [
    "ChannelEnd",
    "Link",
    "FaultPolicy",
    "FaultyLink",
    "FrameDecoder",
    "encode_frame",
    "TransportError",
    "ChannelClosedError",
    "EmptyChannelError",
    "FramingError",
    "DeliveryError",
]
