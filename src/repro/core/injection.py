"""Injection wrappers and campaign state (Listing 1, Steps 1 and 3).

The paper injects exceptions with a global counter ``Point`` that is
incremented at every potential injection point; when it equals the preset
threshold ``InjectionPoint`` the corresponding exception is thrown.  The
wrapper otherwise deep-copies the receiver's object graph, calls the real
method, and — if an exception propagates out — compares the graphs and
marks the method atomic or non-atomic for this call before re-throwing.

Here the counter pair lives in an :class:`InjectionCampaign` object rather
than in actual globals, so several campaigns can coexist (e.g. in tests)
without interfering.
"""

from __future__ import annotations

import functools
import threading
import types
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from .analyzer import MethodSpec
from .exceptions import InjectionAbort, make_injected
from .runlog import ATOMIC, NONATOMIC, MethodKey, RunLog, RunRecord
from .state import GraphDifference, StateBackend, StateStats, get_backend
from .state.introspect import is_opaque, is_scalar

__all__ = ["INJ_WRAPPER_CODE", "InjectionCampaign", "make_injection_wrapper"]


class InjectionCampaign:
    """Shared state of one detection campaign.

    A campaign owns the ``Point`` counter, the ``InjectionPoint``
    threshold, and the run log.  The threshold semantics follow the paper
    exactly: the counter is incremented at every potential injection point
    and the exception fires when ``Point == InjectionPoint``; a threshold
    of 0 never fires (the counter only increases), which is how the
    profiling run counts the total number of injection points.

    Modes:

    * ``enabled=False`` — wrappers call through without any bookkeeping.
    * profiling (``injection_point == 0``) — wrappers count calls and
      injection points but skip state capture.
    * detecting (``injection_point > 0``) — full Listing-1 behavior.
    """

    def __init__(
        self,
        *,
        capture_args: bool = True,
        ignore_attrs: Optional[Callable[[str], bool]] = None,
        max_graph_nodes: Optional[int] = None,
        state_backend: Union[str, StateBackend, None] = None,
    ) -> None:
        self.point = 0
        self.injection_point = 0
        self.log = RunLog()
        self.enabled = False
        self.capture_args = capture_args
        self.ignore_attrs = ignore_attrs
        #: Optional node budget for state captures.  A capture that
        #: exceeds it raises CaptureLimitError *instead of* producing a
        #: partial graph, so no truncated-graph verdict can ever be
        #: recorded in the run log; the run surfaces as a genuine failure.
        self.max_graph_nodes = max_graph_nodes
        #: The state backend deciding how before/after summaries are
        #: materialized and compared.  Defaults to the graph backend (the
        #: reference semantics); the fingerprint backend answers the same
        #: question from a 128-bit digest compare.
        self.backend = get_backend(state_backend)
        #: Where the campaign's state-machinery time goes (telemetry).
        self.state_stats = StateStats()
        #: Profiling-only hook: called as ``observer(spec, point)`` at
        #: every wrapper entry with the base value of the point counter
        #: (the entry's repertoire occupies the next ``len(exceptions)``
        #: points).  The static pruning pass attaches here to pair each
        #: injection point with its live call stack.
        self.point_observer: Optional[Callable[[MethodSpec, int], None]] = None
        #: Profiling-only hook: called as ``escape_observer(spec)`` when a
        #: wrapped call exits via an exception during profiling.  A genuine
        #: failure leaves a mark in every detection run that executes past
        #: it, which only execution can produce — the pruning pass uses
        #: this to stop synthesizing records for later points.
        self.escape_observer: Optional[Callable[[MethodSpec], None]] = None
        #: Profiling-only hook: called as ``exit_observer(spec)`` when a
        #: wrapped call returns normally during profiling.  Together with
        #: the two hooks above this is the full event surface the
        #: instrumentor protocol (:mod:`repro.core.instrument`) adapts.
        self.exit_observer: Optional[Callable[[MethodSpec], None]] = None
        #: Optional per-campaign digest cache
        #: (:class:`repro.core.state.FingerprintCache`).  Installed by the
        #: engines for fingerprint-backend sweeps; ``capture_state``
        #: consults it only while the active backend supports digests, so
        #: graph-backend refinement re-runs bypass it.
        self.digest_cache = None
        self.current_run: Optional[RunRecord] = None
        self._suspended = 0
        self._owner_thread: Optional[int] = None

    # -- lifecycle -----------------------------------------------------

    def _check_thread(self) -> None:
        """Campaigns are single-threaded (paper Section 4.4); a counter
        shared across threads would make runs non-reproducible, so the
        violation is loud instead of silent."""
        current = threading.get_ident()
        if self._owner_thread is None:
            self._owner_thread = current
        elif self._owner_thread != current:
            raise RuntimeError(
                "InjectionCampaign used from multiple threads; the "
                "detection methodology is single-threaded (paper §4.4)"
            )

    def begin_profile(self) -> None:
        """Start a profiling run: count points and calls, never inject."""
        self._check_thread()
        self.point = 0
        self.injection_point = 0
        self.enabled = True
        self.current_run = None

    def end_profile(self) -> int:
        """Finish profiling; return the total number of injection points."""
        self.enabled = False
        return self.point

    def begin_run(self, injection_point: int) -> RunRecord:
        """Start one injection run with the given threshold."""
        if injection_point <= 0:
            raise ValueError("injection_point must be >= 1")
        self._check_thread()
        self.point = 0
        self.injection_point = injection_point
        self.enabled = True
        self.current_run = self.log.begin_run(injection_point)
        return self.current_run

    def end_run(self, *, completed: bool, escaped: bool) -> None:
        if self.current_run is not None:
            self.current_run.completed = completed
            self.current_run.escaped = escaped
        self.enabled = False
        self.current_run = None

    # -- wrapper services ------------------------------------------------

    @property
    def detecting(self) -> bool:
        """True while a real injection run (not profiling) is active."""
        return self.enabled and self.injection_point > 0

    @property
    def suspended(self) -> bool:
        return self._suspended > 0

    def suspend(self) -> "_Suspension":
        """Temporarily make wrappers transparent.

        Used while the campaign itself executes application code (state
        capture, comparison) so the observer does not perturb the counter.
        """
        return _Suspension(self)

    def note_call(self, method: MethodKey) -> None:
        # Call counts feed the call-weighted statistics (Figures 2b/3b);
        # they are taken from the profiling run only so that the repeated
        # detection executions do not inflate them.
        if self.injection_point == 0:
            self.log.record_call(method)

    def note_injection(self, method: MethodKey, exc: BaseException) -> None:
        if self.current_run is not None:
            self.current_run.injected_method = method
            self.current_run.injected_exception = type(exc).__name__

    def mark(
        self, method: MethodKey, verdict: str, difference: Optional[str] = None
    ) -> None:
        if self.current_run is not None:
            self.current_run.add_mark(method, verdict, difference)

    def capture_state(
        self, spec: MethodSpec, args: Tuple[Any, ...], kwargs: Dict[str, Any]
    ) -> Any:
        """Summarize the receiver and mutable arguments of a call.

        Mirrors Listing 1: the deep copy covers ``this`` plus all
        arguments passed as non-constant references.  In Python every
        argument is a reference, so we include each argument that holds
        mutable state.  The summary type is backend-specific (a full
        :class:`~repro.core.state.ObjectGraph` or a digest); callers only
        ever hand it back to :meth:`compare_states`.
        """
        with self.suspend():
            roots = self.capture_roots(spec, args, kwargs)
            cache = self.digest_cache
            if cache is not None and getattr(
                self.backend, "supports_digest_cache", False
            ):
                return cache.capture(
                    self.backend,
                    roots,
                    ignore_attrs=self.ignore_attrs,
                    max_nodes=self.max_graph_nodes,
                    stats=self.state_stats,
                )
            return self.backend.capture_frame(
                roots,
                ignore_attrs=self.ignore_attrs,
                max_nodes=self.max_graph_nodes,
                stats=self.state_stats,
            )

    def compare_states(self, before: Any, after: Any) -> Optional[GraphDifference]:
        """First difference between two state summaries, or None if equal."""
        with self.suspend():
            return self.backend.diff(before, after, stats=self.state_stats)

    def capture_roots(
        self, spec: MethodSpec, args: Tuple[Any, ...], kwargs: Dict[str, Any]
    ) -> List[Tuple[Any, Any]]:
        """The labeled roots a state capture of this call starts from:
        the receiver plus (under ``capture_args``) every non-scalar,
        non-opaque argument.  Public so the trace pass captures exactly
        the same frame a dynamic run would."""
        roots: List[Tuple[Any, Any]] = []
        positional = args
        if spec.has_receiver and args:
            roots.append(("self", args[0]))
            positional = args[1:]
        if self.capture_args:
            for index, value in enumerate(positional):
                if not is_scalar(value) and not is_opaque(value):
                    roots.append((("arg", index), value))
            for name in sorted(kwargs):
                value = kwargs[name]
                if not is_scalar(value) and not is_opaque(value):
                    roots.append((("kwarg", name), value))
        return roots


class _Suspension:
    def __init__(self, campaign: InjectionCampaign) -> None:
        self._campaign = campaign

    def __enter__(self) -> None:
        self._campaign._suspended += 1

    def __exit__(self, *exc_info: object) -> None:
        self._campaign._suspended -= 1


def make_injection_wrapper(
    spec: MethodSpec, campaign: InjectionCampaign
) -> Callable:
    """Build the injection wrapper of Listing 1 for one method.

    The wrapper (a) walks the method's injection repertoire, incrementing
    the campaign counter once per potential injection point and raising
    when the threshold is hit; (b) snapshots the object graph; (c) calls
    the original method; and (d) on exception, compares before/after
    graphs, marks the method, and re-throws.
    """
    original = spec.func
    exceptions = spec.exceptions

    @functools.wraps(original)
    def inj_wrapper(*args: Any, **kwargs: Any) -> Any:
        if not campaign.enabled or campaign.suspended:
            return original(*args, **kwargs)
        campaign.note_call(spec.key)
        observer = campaign.point_observer
        if observer is not None and campaign.injection_point == 0:
            observer(spec, campaign.point)
        for exc_type in exceptions:
            campaign.point += 1
            if campaign.point == campaign.injection_point:
                exc = make_injected(
                    exc_type, method=spec.key, injection_point=campaign.point
                )
                campaign.note_injection(spec.key, exc)
                raise exc
        if not campaign.detecting:
            escape = campaign.escape_observer
            on_exit = campaign.exit_observer
            if escape is None and on_exit is None:
                return original(*args, **kwargs)
            try:
                result = original(*args, **kwargs)
            except BaseException:
                if escape is not None:
                    escape(spec)
                raise
            if on_exit is not None:
                on_exit(spec)
            return result
        before = campaign.capture_state(spec, args, kwargs)
        try:
            return original(*args, **kwargs)
        except InjectionAbort:
            raise
        except BaseException:
            after = campaign.capture_state(spec, args, kwargs)
            difference = campaign.compare_states(before, after)
            if difference is None:
                campaign.mark(spec.key, ATOMIC)
            else:
                campaign.mark(spec.key, NONATOMIC, str(difference))
            raise

    inj_wrapper._repro_wrapped = original  # type: ignore[attr-defined]
    inj_wrapper._repro_spec = spec  # type: ignore[attr-defined]
    inj_wrapper._repro_kind = "injection"  # type: ignore[attr-defined]
    return inj_wrapper


#: Code object shared by every injection wrapper — the static pruning
#: pass recognizes wrapper frames in a stack walk by identity against
#: this constant (closures share one code object across instantiations).
INJ_WRAPPER_CODE = next(
    const
    for const in make_injection_wrapper.__code__.co_consts
    if isinstance(const, types.CodeType) and const.co_name == "inj_wrapper"
)
