"""Method discovery and per-method exception specifications (Step 1).

The paper's Analyzer determines which methods a program calls and, for
each, the exceptions that may be thrown: every exception *declared* in the
method's signature plus the generic runtime exceptions any method may
raise.  From that it derives the injection wrapper with ``n`` potential
injection points (Listing 1).

Here the Analyzer inspects Python classes and modules directly.  Declared
exceptions come from the :func:`repro.core.exceptions.throws` decorator;
the runtime repertoire defaults to
:data:`repro.core.exceptions.DEFAULT_RUNTIME_EXCEPTIONS`.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Type

from .exceptions import (
    DEFAULT_RUNTIME_EXCEPTIONS,
    declared_exceptions,
    is_exception_free,
)
from .runlog import MethodKey

__all__ = ["MethodSpec", "Analyzer", "method_key"]

#: Kinds of callables the Analyzer distinguishes.
KIND_METHOD = "method"
KIND_CONSTRUCTOR = "constructor"
KIND_STATIC = "staticmethod"
KIND_CLASSMETHOD = "classmethod"
KIND_FUNCTION = "function"


def method_key(owner: Optional[type], name: str) -> MethodKey:
    """Build the ``"Class.method"`` key used throughout logs and reports."""
    if owner is None:
        return name
    return f"{owner.__name__}.{name}"


@dataclass
class MethodSpec:
    """Everything the weaver needs to wrap one method.

    Attributes:
        owner: defining class, or None for free functions.
        name: attribute name of the method on its owner.
        func: the underlying plain function.
        key: stable identifier (``"Class.method"``).
        kind: one of method/constructor/staticmethod/classmethod/function.
        exceptions: the injection repertoire ``E1 ... En`` — declared
            exceptions first, then the generic runtime exceptions.  Its
            length is the number of potential injection points in the
            method's wrapper.
        exception_free: True if the programmer asserted the method never
            raises (used by the policy layer, not by detection itself).
    """

    owner: Optional[type]
    name: str
    func: Callable
    key: MethodKey
    kind: str
    exceptions: Tuple[Type[BaseException], ...]
    exception_free: bool = False

    @property
    def injection_point_count(self) -> int:
        return len(self.exceptions)

    @property
    def has_receiver(self) -> bool:
        """True if calls carry an instance receiver as first argument."""
        return self.kind in (KIND_METHOD, KIND_CONSTRUCTOR)


#: Dunder methods that are never instrumented.  Wrapping operations the
#: capture/compare machinery itself relies on (``__repr__``, ``__eq__``,
#: ``__hash__``, ``__iter__``, ...) would make the observer part of the
#: experiment; the paper's Java flavor has the same restriction for core
#: runtime entry points.
_EXCLUDED_DUNDERS_KEEP = frozenset({"__init__"})


class Analyzer:
    """Discovers methods and derives their injection repertoires.

    Args:
        runtime_exceptions: generic exception types injected into every
            method in addition to its declared exceptions.
        include_private: also instrument ``_underscore`` helpers.  The
            default is True because internal helpers are exactly where
            conditional non-atomicity originates.
        include_dunders: instrument dunder methods other than
            ``__init__``.  Off by default (see note above).
    """

    def __init__(
        self,
        runtime_exceptions: Sequence[Type[BaseException]] = DEFAULT_RUNTIME_EXCEPTIONS,
        *,
        include_private: bool = True,
        include_dunders: bool = False,
        exclude: Iterable[str] = (),
    ) -> None:
        self.runtime_exceptions = tuple(runtime_exceptions)
        self.include_private = include_private
        self.include_dunders = include_dunders
        #: Methods never instrumented, by name or "Class.method" key — the
        #: analog of the paper's web-interface exclusions (Section 4.3).
        self.exclude = frozenset(exclude)

    # -- public API ----------------------------------------------------

    def analyze_class(self, cls: type) -> List[MethodSpec]:
        """Return specs for every instrumentable method defined by *cls*.

        Only methods defined directly in the class body are returned;
        inherited methods belong to (and are instrumented on) the class
        that defines them, exactly as the paper instruments each defining
        class once and lets inheritance reuse the wrappers.
        """
        specs: List[MethodSpec] = []
        for name, raw in vars(cls).items():
            spec = self._spec_for_member(cls, name, raw)
            if spec is not None:
                specs.append(spec)
        specs.sort(key=lambda s: s.name)
        return specs

    def analyze_classes(self, classes: Iterable[type]) -> List[MethodSpec]:
        specs: List[MethodSpec] = []
        for cls in classes:
            specs.extend(self.analyze_class(cls))
        return specs

    def analyze_function(self, func: Callable, *, name: Optional[str] = None) -> MethodSpec:
        """Spec for a free function."""
        fname = name or func.__name__
        return MethodSpec(
            owner=None,
            name=fname,
            func=func,
            key=fname,
            kind=KIND_FUNCTION,
            exceptions=self._repertoire(func),
            exception_free=is_exception_free(func),
        )

    # -- internals -------------------------------------------------------

    def _spec_for_member(
        self, cls: type, name: str, raw: object
    ) -> Optional[MethodSpec]:
        if not self._name_allowed(name):
            return None
        if name in self.exclude or method_key(cls, name) in self.exclude:
            return None
        if isinstance(raw, staticmethod):
            return self._make_spec(cls, name, raw.__func__, KIND_STATIC)
        if isinstance(raw, classmethod):
            return self._make_spec(cls, name, raw.__func__, KIND_CLASSMETHOD)
        if inspect.isfunction(raw):
            kind = KIND_CONSTRUCTOR if name == "__init__" else KIND_METHOD
            return self._make_spec(cls, name, raw, kind)
        return None  # properties, descriptors, nested classes, class attrs

    def _name_allowed(self, name: str) -> bool:
        if name.startswith("__") and name.endswith("__"):
            return name in _EXCLUDED_DUNDERS_KEEP or self.include_dunders
        if name.startswith("_"):
            return self.include_private
        return True

    def _make_spec(
        self, cls: type, name: str, func: Callable, kind: str
    ) -> MethodSpec:
        return MethodSpec(
            owner=cls,
            name=name,
            func=func,
            key=method_key(cls, name),
            kind=kind,
            exceptions=self._repertoire(func),
            exception_free=is_exception_free(func),
        )

    def _repertoire(self, func: Callable) -> Tuple[Type[BaseException], ...]:
        repertoire: List[Type[BaseException]] = list(declared_exceptions(func))
        for exc in self.runtime_exceptions:
            if exc not in repertoire:
                repertoire.append(exc)
        return tuple(repertoire)
