"""Core library: detection and masking of non-atomic exception handling.

Public API map (mirrors the phases of the paper, Figure 1):

* Step 1 — :class:`Analyzer` discovers methods and their injection
  repertoires; :func:`throws` / :func:`exception_free` supply the
  declared-exception information Python lacks.
* Step 2 — :class:`Weaver`, :func:`weave_with` and :class:`LoadTimeWeaver`
  route calls to wrappers (source-level and load-time flavors).
* Step 3 — :class:`InjectionCampaign` + :class:`Detector` run the
  exception injector program once per injection point and log marks.
* Classification — :func:`classify` (Definition 3: atomic / conditional /
  pure failure non-atomic).
* Steps 4–5 — :class:`Masker` / :func:`failure_atomic` weave atomicity
  wrappers; :class:`WrapPolicy` decides what to wrap (Section 4.3).
* Reporting — :func:`build_app_report` and the ``format_*`` helpers
  reproduce Table 1 and Figures 2–4.
* State layer — :mod:`repro.core.state` owns all reachable-state
  concerns (graphs, fingerprints, checkpoints) behind the
  :class:`StateBackend` protocol; campaigns select a backend by name
  (``graph``, ``fingerprint``, ``undolog``).
"""

from .analyzer import Analyzer, MethodSpec, method_key
from .classify import (
    CATEGORIES,
    CATEGORY_ATOMIC,
    CATEGORY_CONDITIONAL,
    CATEGORY_PURE,
    ClassificationResult,
    MethodClassification,
    classify,
)
from .detector import (
    CallableProgram,
    DetectionError,
    DetectionResult,
    Detector,
    Program,
    plan_points,
    run_injection_point,
)
from .exceptions import (
    DEFAULT_RUNTIME_EXCEPTIONS,
    InjectedRuntimeError,
    InjectionAbort,
    ResourceExhaustedError,
    exception_free,
    is_injected,
    throws,
)
from .cow import (
    UndoLog,
    failure_atomic_undolog,
    install_write_barrier,
    remove_write_barrier,
)
from .harden import HardeningResult, harden
from .htmlreport import policy_template, render_campaign_html
from .injection import InjectionCampaign, make_injection_wrapper
from .instrument import (
    DEFAULT_INSTRUMENTOR,
    INSTRUMENTOR_NAMES,
    INSTRUMENTORS,
    EventObserver,
    Instrumentor,
    InstrumentorError,
    InstrumentorUnavailable,
    MonitoringInstrumentor,
    WeavingInstrumentor,
    available_instrumentors,
    get_instrumentor,
    resolve_instrumentor_name,
)
from .masking import Masker, MaskingStats, atomic_block, failure_atomic, make_atomicity_wrapper
from .policy import WrapPolicy, filter_log, reclassify, select_methods_to_wrap
from .report import (
    AppReport,
    build_app_report,
    format_class_distribution,
    format_method_classification,
    format_run_provenance,
    format_table1,
    render_bars,
)
from .runlog import ATOMIC, NONATOMIC, Mark, RunLog, RunRecord, merge_logs
from .staticpass import (
    PROVENANCE_DYNAMIC,
    PROVENANCE_STATIC,
    PurityAnalysis,
    StaticPruner,
    syntactic_effects,
    transitive_purity,
)
from .tracepass import (
    PROVENANCE_TRACE,
    TraceDeriver,
    TraceRecorder,
)
from .state import (
    BACKENDS,
    CaptureLimitError,
    Checkpoint,
    CheckpointError,
    FingerprintBackend,
    FingerprintCache,
    GraphBackend,
    GraphDifference,
    ObjectGraph,
    RestoreError,
    StateBackend,
    StateFingerprint,
    StateStats,
    UndoLogBackend,
    capture,
    capture_frame,
    checkpoint,
    fingerprint,
    fingerprint_frame,
    get_backend,
    graph_diff,
    graph_diff_all,
    graphs_equal,
    restore,
)
from .telemetry import CampaignTelemetry
from .weaver import LoadTimeWeaver, Weaver, WeavingError, weave_with

__all__ = [
    # analysis
    "Analyzer",
    "MethodSpec",
    "method_key",
    # exceptions / declarations
    "throws",
    "exception_free",
    "InjectedRuntimeError",
    "ResourceExhaustedError",
    "InjectionAbort",
    "DEFAULT_RUNTIME_EXCEPTIONS",
    "is_injected",
    # state layer: backends
    "StateBackend",
    "GraphBackend",
    "FingerprintBackend",
    "UndoLogBackend",
    "StateStats",
    "BACKENDS",
    "get_backend",
    # state layer: object graphs
    "ObjectGraph",
    "GraphDifference",
    "capture",
    "capture_frame",
    "graphs_equal",
    "graph_diff",
    "graph_diff_all",
    "CaptureLimitError",
    # state layer: fingerprints
    "StateFingerprint",
    "fingerprint",
    "fingerprint_frame",
    "FingerprintCache",
    # state layer: checkpointing
    "Checkpoint",
    "CheckpointError",
    "RestoreError",
    "checkpoint",
    "restore",
    # injection / detection
    "InjectionCampaign",
    "make_injection_wrapper",
    "Detector",
    "DetectionResult",
    "DetectionError",
    "Program",
    "CallableProgram",
    "plan_points",
    "run_injection_point",
    # static purity pre-analysis
    "PROVENANCE_DYNAMIC",
    "PROVENANCE_STATIC",
    "PurityAnalysis",
    "StaticPruner",
    "syntactic_effects",
    "transitive_purity",
    # trace-derived verdicts
    "PROVENANCE_TRACE",
    "TraceDeriver",
    "TraceRecorder",
    # telemetry
    "CampaignTelemetry",
    # run logs
    "RunLog",
    "RunRecord",
    "merge_logs",
    "Mark",
    "ATOMIC",
    "NONATOMIC",
    # classification
    "classify",
    "ClassificationResult",
    "MethodClassification",
    "CATEGORIES",
    "CATEGORY_ATOMIC",
    "CATEGORY_CONDITIONAL",
    "CATEGORY_PURE",
    # policy
    "WrapPolicy",
    "filter_log",
    "reclassify",
    "select_methods_to_wrap",
    # masking
    "Masker",
    "MaskingStats",
    "failure_atomic",
    "atomic_block",
    "make_atomicity_wrapper",
    # weaving
    "Weaver",
    "WeavingError",
    "weave_with",
    "LoadTimeWeaver",
    # instrumentation backends
    "Instrumentor",
    "InstrumentorError",
    "InstrumentorUnavailable",
    "EventObserver",
    "WeavingInstrumentor",
    "MonitoringInstrumentor",
    "INSTRUMENTORS",
    "INSTRUMENTOR_NAMES",
    "DEFAULT_INSTRUMENTOR",
    "available_instrumentors",
    "get_instrumentor",
    "resolve_instrumentor_name",
    # one-call facade
    "harden",
    "HardeningResult",
    # copy-on-write extension
    "UndoLog",
    "failure_atomic_undolog",
    "install_write_barrier",
    "remove_write_barrier",
    # html reports
    "render_campaign_html",
    "policy_template",
    # reports
    "AppReport",
    "build_app_report",
    "format_table1",
    "format_method_classification",
    "format_class_distribution",
    "format_run_provenance",
    "render_bars",
]
