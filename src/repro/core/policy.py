"""Wrap-or-not policies ("To Wrap or Not To Wrap", Section 4.3).

The paper enumerates four situations in which a failure non-atomic method
should *not* receive an atomicity wrapper:

1. The non-atomic behavior is intentional — wrapping would change the
   method's semantics (``never_wrap``).
2. The programmer prefers to fix the method by hand, because a manual fix
   (reordering statements, temporary variables) is cheaper than a wrapper
   (``manual_fix``).
3. The method was classified non-atomic solely because of exceptions
   injected into methods the programmer knows to be exception-free;
   discarding those impossible runs re-classifies it
   (``exception_free`` + :func:`filter_log`).
4. The method is *conditional* failure non-atomic: once its callees are
   masked it is atomic by definition, so wrapping it would only add cost
   (``wrap_conditional`` defaults to False).

The paper exposes these choices through a web interface; here they are a
plain policy object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Set

from .analyzer import MethodSpec
from .classify import (
    CATEGORY_CONDITIONAL,
    CATEGORY_PURE,
    ClassificationResult,
    classify,
)
from .runlog import MethodKey, RunLog

__all__ = ["WrapPolicy", "filter_log", "reclassify", "select_methods_to_wrap"]


@dataclass
class WrapPolicy:
    """Programmer-supplied wrapping decisions.

    Attributes:
        never_wrap: methods whose non-atomic behavior is intended.
        manual_fix: methods the programmer will rewrite by hand instead.
        exception_free: methods asserted to never raise; injection runs
            that fired inside them are discarded before classification.
        wrap_conditional: also wrap conditional failure non-atomic
            methods.  Off by default (case 4 above); turning it on is the
            ablation measured by ``bench_ablation_conditional``.
    """

    never_wrap: Set[MethodKey] = field(default_factory=set)
    manual_fix: Set[MethodKey] = field(default_factory=set)
    exception_free: Set[MethodKey] = field(default_factory=set)
    wrap_conditional: bool = False

    @classmethod
    def from_specs(cls, specs: Iterable[MethodSpec]) -> "WrapPolicy":
        """Build a policy whose exception-free set comes from
        :func:`repro.core.exceptions.exception_free` annotations."""
        return cls(
            exception_free={s.key for s in specs if s.exception_free}
        )

    def merged_with(self, other: "WrapPolicy") -> "WrapPolicy":
        return WrapPolicy(
            never_wrap=self.never_wrap | other.never_wrap,
            manual_fix=self.manual_fix | other.manual_fix,
            exception_free=self.exception_free | other.exception_free,
            wrap_conditional=self.wrap_conditional or other.wrap_conditional,
        )


def filter_log(log: RunLog, policy: WrapPolicy) -> RunLog:
    """Drop runs whose injection fired inside an exception-free method.

    Discarding those runs implements the paper's re-classification: any
    method that was non-atomic *solely* because of impossible injections
    loses all its non-atomic marks and becomes atomic again.
    """
    if not policy.exception_free:
        return log
    filtered = RunLog()
    filtered.call_counts = dict(log.call_counts)
    filtered.methods_seen = list(log.methods_seen)
    filtered.runs = [
        run
        for run in log.runs
        if run.injected_method not in policy.exception_free
    ]
    return filtered


def reclassify(log: RunLog, policy: WrapPolicy) -> ClassificationResult:
    """Classify after applying the policy's exception-free filtering."""
    return classify(filter_log(log, policy))


def select_methods_to_wrap(
    classification: ClassificationResult, policy: WrapPolicy
) -> List[MethodKey]:
    """The methods the masking phase should wrap, per the policy."""
    categories = {CATEGORY_PURE}
    if policy.wrap_conditional:
        categories.add(CATEGORY_CONDITIONAL)
    excluded = policy.never_wrap | policy.manual_fix
    return sorted(
        key
        for key, mc in classification.methods.items()
        if mc.category in categories and key not in excluded
    )
