"""Reports: the paper's Table 1 and the data behind Figures 2–4.

The experimental section of the paper reports, per application:

* Table 1 — number of classes, methods (defined and used), and injections.
* Figures 2(a)/3(a) — method classification as a percentage of the
  methods defined and used.
* Figures 2(b)/3(b) — the same classification weighted by method calls.
* Figure 4 — class-level distribution (a class is atomic if all its
  methods are, pure non-atomic if it contains a pure non-atomic method,
  conditional otherwise).

This module turns detection results into those rows and renders them as
plain-text tables and ASCII percentage bars, which is what the benchmark
harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from .classify import (
    CATEGORIES,
    CATEGORY_ATOMIC,
    CATEGORY_CONDITIONAL,
    CATEGORY_PURE,
    ClassificationResult,
    class_of_method,
)
from .detector import DetectionResult
from .runlog import MethodKey

__all__ = [
    "AppReport",
    "build_app_report",
    "format_table1",
    "format_method_classification",
    "format_class_distribution",
    "format_run_provenance",
    "render_bars",
]


@dataclass
class AppReport:
    """Everything the paper reports about one application."""

    name: str
    class_count: int
    method_count: int
    injection_count: int
    classification: ClassificationResult

    # -- Figure 2/3 data -------------------------------------------------

    def fractions_by_methods(self) -> Dict[str, float]:
        return self.classification.fractions_by_methods()

    def fractions_by_calls(self) -> Dict[str, float]:
        return self.classification.fractions_by_calls()

    # -- Figure 4 data ----------------------------------------------------

    def class_fractions(self) -> Dict[str, float]:
        return self.classification.class_fractions()

    def pure_call_fraction(self) -> float:
        """Fraction of calls going to pure failure non-atomic methods.

        The paper highlights this number: < 0.4% for the C++ apps, < 0.2%
        for the Java apps after trivial fixes (Section 6.2).
        """
        return self.fractions_by_calls()[CATEGORY_PURE]


def build_app_report(
    name: str,
    result: DetectionResult,
    classification: ClassificationResult,
    *,
    class_of: Optional[Callable[[MethodKey], str]] = None,
) -> AppReport:
    """Assemble an :class:`AppReport` from a finished campaign."""
    class_of = class_of or class_of_method
    classes = {class_of(key) for key in classification.methods}
    return AppReport(
        name=name,
        class_count=len(classes),
        method_count=len(classification.methods),
        injection_count=result.total_injections,
        classification=classification,
    )


def _render_table(headers: Sequence[str], rows: List[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def format_table1(reports: Iterable[AppReport]) -> str:
    """Render the paper's Table 1 (application statistics)."""
    rows = [
        (
            report.name,
            str(report.class_count),
            str(report.method_count),
            str(report.injection_count),
        )
        for report in reports
    ]
    return _render_table(
        ["Application", "#Classes", "#Methods", "#Injections"], rows
    )


_CATEGORY_LABELS = {
    CATEGORY_ATOMIC: "atomic",
    CATEGORY_CONDITIONAL: "cond non-atomic",
    CATEGORY_PURE: "pure non-atomic",
}


def format_method_classification(
    reports: Iterable[AppReport], *, weighted_by_calls: bool = False
) -> str:
    """Render Figures 2/3 as a table of percentages per application.

    Args:
        weighted_by_calls: False renders the (a) variants (% of methods
            defined and used); True renders the (b) variants (% of calls).
    """
    rows = []
    for report in reports:
        fractions = (
            report.fractions_by_calls()
            if weighted_by_calls
            else report.fractions_by_methods()
        )
        rows.append(
            (report.name,)
            + tuple(f"{100.0 * fractions[c]:.2f}%" for c in CATEGORIES)
        )
    headers = ["Application"] + [_CATEGORY_LABELS[c] for c in CATEGORIES]
    return _render_table(headers, rows)


def format_class_distribution(reports: Iterable[AppReport]) -> str:
    """Render Figure 4 as a table of class-level percentages."""
    rows = []
    for report in reports:
        fractions = report.class_fractions()
        rows.append(
            (report.name,)
            + tuple(f"{100.0 * fractions[c]:.2f}%" for c in CATEGORIES)
        )
    headers = ["Application"] + [
        f"{_CATEGORY_LABELS[c]} classes" for c in CATEGORIES
    ]
    return _render_table(headers, rows)


def format_run_provenance(classification: ClassificationResult) -> str:
    """One-line evidence summary: counted runs by provenance + crashed.

    Example: ``evidence: 23 dynamic + 9 static + 6 trace run(s), 0
    crashed run(s) excluded``.  The static count is how many records the
    pruning pass synthesized instead of executing
    (:mod:`repro.core.staticpass`); the trace count is how many the
    trace pass derived from the instrumented reference execution
    (:mod:`repro.core.tracepass`); crashed runs are excluded from
    classification entirely.
    """
    provenance = classification.run_provenance
    dynamic = provenance.get("dynamic", 0)
    static = provenance.get("static", 0)
    trace = provenance.get("trace", 0)
    other = sum(
        count
        for tag, count in provenance.items()
        if tag not in ("dynamic", "static", "trace")
    )
    parts = [f"{dynamic} dynamic"]
    if static:
        parts.append(f"{static} static")
    if trace:
        parts.append(f"{trace} trace")
    if other:
        parts.append(f"{other} other")
    return (
        f"evidence: {' + '.join(parts)} run(s), "
        f"{classification.crashed_runs} crashed run(s) excluded"
    )


def render_bars(
    fractions: Dict[str, float], *, width: int = 50, labels: bool = True
) -> str:
    """ASCII stacked-bar rendering of a category-fraction dict."""
    lines = []
    for category in CATEGORIES:
        fraction = fractions.get(category, 0.0)
        filled = int(round(fraction * width))
        bar = "#" * filled + "." * (width - filled)
        label = _CATEGORY_LABELS[category].rjust(16) if labels else ""
        lines.append(f"{label} |{bar}| {100.0 * fraction:6.2f}%")
    return "\n".join(lines)
