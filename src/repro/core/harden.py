"""One-call hardening: the whole Figure-1 pipeline behind a single API.

For users who want the paper's end result — "my classes, made failure
atomic" — without driving the analyzer/weaver/detector/masker by hand::

    from repro.core import harden

    result = harden([Stack, Queue], workload)
    print(result.summary())
    # classes are now masked; undo with result.unmask() or use as a
    # context manager:

    with harden([Stack], workload) as result:
        ...   # masked here
    # originals restored

``harden`` runs the detection campaign over *workload*, classifies every
method, applies the wrap policy, weaves atomicity wrappers for exactly
the methods that need them, and returns a :class:`HardeningResult` with
everything the campaign learned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

from .analyzer import Analyzer
from .classify import ClassificationResult
from .detector import CallableProgram, DetectionResult, Detector
from .injection import InjectionCampaign, make_injection_wrapper
from .masking import Masker, MaskingStats
from .policy import WrapPolicy, reclassify, select_methods_to_wrap
from .runlog import MethodKey
from .weaver import Weaver

__all__ = ["harden", "HardeningResult"]


@dataclass
class HardeningResult:
    """Everything :func:`harden` did, plus the handle to undo it."""

    classes: List[type]
    detection: DetectionResult
    classification: ClassificationResult
    wrapped: List[MethodKey]
    stats: MaskingStats
    _masker: Masker = field(repr=False, default=None)

    def summary(self) -> str:
        counts = self.classification.counts_by_methods()
        return (
            f"{len(self.classes)} classes, "
            f"{len(self.classification.methods)} methods analyzed "
            f"({self.detection.total_injections} injections): "
            f"{counts['atomic']} atomic, "
            f"{counts['conditional']} conditional, "
            f"{counts['pure']} pure non-atomic; "
            f"masked {len(self.wrapped)}: {self.wrapped}"
        )

    def explain(self, method: MethodKey) -> str:
        return self.classification.explain(method)

    def unmask(self) -> None:
        """Restore the original (unwrapped) methods."""
        if self._masker is not None:
            self._masker.unmask_all()

    def __enter__(self) -> "HardeningResult":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.unmask()


def harden(
    classes: Sequence[type],
    workload: Callable[[], None],
    *,
    modules: Sequence = (),
    policy: Optional[WrapPolicy] = None,
    exclude: Iterable[str] = (),
    stride: int = 1,
    capture_args: bool = True,
    name: str = "workload",
) -> HardeningResult:
    """Detect failure non-atomic methods of *classes* and mask them.

    Args:
        classes: the classes to analyze and (where needed) mask.
        modules: modules whose top-level functions are analyzed and
            masked alongside the classes.
        workload: a deterministic, re-runnable callable exercising the
            classes; it is executed once per injection point.
        policy: wrap policy (never-wrap / manual-fix / exception-free /
            wrap-conditional); merged with the ``@exception_free``
            annotations found on the classes.
        exclude: method names (or ``"Class.method"`` keys) to leave
            uninstrumented.
        stride: inject at every *stride*-th point (1 = full sweep).
        capture_args: include mutable arguments in atomicity judgments.

    Returns:
        A :class:`HardeningResult`; the classes are already masked when
        it returns.  Call :meth:`HardeningResult.unmask` (or use it as a
        context manager) to restore the originals.
    """
    classes = list(classes)
    analyzer = Analyzer(exclude=exclude)
    campaign = InjectionCampaign(capture_args=capture_args)
    weaver = Weaver(
        lambda spec: make_injection_wrapper(spec, campaign), analyzer
    )
    with weaver:
        specs = weaver.weave_classes(classes)
        for module in modules:
            specs.extend(weaver.weave_module_functions(module))
        detector = Detector(
            CallableProgram(name, workload), campaign, stride=stride
        )
        detection = detector.detect()

    effective = WrapPolicy.from_specs(specs)
    if policy is not None:
        effective = effective.merged_with(policy)
    classification = reclassify(detection.log, effective)
    wrapped = select_methods_to_wrap(classification, effective)

    stats = MaskingStats()
    masker = Masker(
        wrapped, stats=stats, analyzer=analyzer, checkpoint_args=capture_args
    )
    masker.mask_classes(classes)
    for module in modules:
        masker.mask_module_functions(module)
    return HardeningResult(
        classes=classes,
        detection=detection,
        classification=classification,
        wrapped=wrapped,
        stats=stats,
        _masker=masker,
    )
