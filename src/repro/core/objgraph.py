"""Object graphs and structural graph comparison.

This module implements Definition 1 of the paper: an *object graph* is a
graph whose nodes are objects or instances of basic data types, where the
values of instance variables appear as labeled children, and where aliasing
is preserved — two references to the same object share a single node.

An :class:`ObjectGraph` is a fully materialized snapshot: it holds no
references to the live objects it was captured from, so it doubles as the
``deep_copy`` used by the paper's injection wrappers (Listing 1).  Failure
atomicity of a method is judged by comparing the graph captured before the
call with the graph captured when an exception propagates out
(Definition 2); :func:`graphs_equal` implements that comparison as a rooted
isomorphism check that respects edge labels, node types, scalar values, and
sharing structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "GraphNode",
    "ObjectGraph",
    "CaptureLimitError",
    "capture",
    "capture_frame",
    "graphs_equal",
    "graph_diff",
    "graph_diff_all",
    "GraphDifference",
    "SCALAR_TYPES",
    "is_scalar",
    "is_opaque",
]


class CaptureLimitError(RuntimeError):
    """The object graph exceeded the configured node budget.

    Capturing an unexpectedly huge reachable state (the paper notes
    "there is no upper bound on the size of objects", Section 6.2) is
    usually a sign the wrong class was instrumented; the optional
    ``max_nodes`` budget turns a silent multi-second stall into an
    explicit error."""

#: Types treated as *basic data types* (leaf nodes compared by value).
SCALAR_TYPES = (
    type(None),
    bool,
    int,
    float,
    complex,
    str,
    bytes,
)

#: Kind tags for graph nodes.
KIND_SCALAR = "scalar"
KIND_OBJECT = "object"
KIND_LIST = "list"
KIND_TUPLE = "tuple"
KIND_DICT = "dict"
KIND_SET = "set"
KIND_FROZENSET = "frozenset"
KIND_BYTEARRAY = "bytearray"
KIND_OPAQUE = "opaque"
KIND_FRAME = "frame"

import collections as _collections

KIND_DEQUE = "deque"

#: isinstance-ordered container dispatch: subclasses of the builtin
#: containers (OrderedDict, defaultdict, user list subclasses, ...) are
#: captured as their container kind *plus* any instance attributes they
#: carry.  bool-before-int style pitfalls do not arise here because the
#: builtin container types are disjoint.
_CONTAINER_DISPATCH = (
    (list, KIND_LIST),
    (tuple, KIND_TUPLE),
    (dict, KIND_DICT),
    (set, KIND_SET),
    (frozenset, KIND_FROZENSET),
    (_collections.deque, KIND_DEQUE),
)


def is_scalar(value: Any) -> bool:
    """Return True if *value* is an instance of a basic data type."""
    return isinstance(value, SCALAR_TYPES)


def is_opaque(value: Any) -> bool:
    """Return True if *value* should be treated as an opaque leaf.

    Opaque values are runtime entities that are not part of an object's
    logical state: classes, functions, modules, and the like.  They are
    compared by identity and never traversed.  This mirrors the paper's
    scoping of object graphs to instance state (Section 3) and its
    external-side-effect limitation (Section 4.4).
    """
    return isinstance(value, (type, _FunctionTypes)) or _is_module(value)


import types as _types

_FunctionTypes = (
    _types.FunctionType,
    _types.BuiltinFunctionType,
    _types.MethodType,
    _types.BuiltinMethodType,
    staticmethod,
    classmethod,
    property,
)


def _is_module(value: Any) -> bool:
    return isinstance(value, _types.ModuleType)


@dataclass
class GraphNode:
    """A single node of an :class:`ObjectGraph`.

    Attributes:
        kind: one of the ``KIND_*`` tags (scalar, object, list, ...).
        type_name: qualified name of the runtime type of the value.
        value: the scalar value for ``scalar`` nodes, an identity token for
            ``opaque`` nodes, and ``None`` otherwise.
        edges: labeled edges to child node ids.  Labels are small tuples
            such as ``("attr", name)``, ``("index", i)``, ``("key", k)``.
    """

    kind: str
    type_name: str
    value: Any = None
    edges: List[Tuple[Tuple[str, Any], int]] = field(default_factory=list)


class ObjectGraph:
    """A materialized snapshot of the state reachable from a root object.

    The graph owns its nodes; it never references the live objects it was
    captured from.  Node 0 is always the root.
    """

    __slots__ = ("nodes", "root")

    def __init__(self) -> None:
        self.nodes: List[GraphNode] = []
        self.root: int = 0

    def add_node(self, node: GraphNode) -> int:
        self.nodes.append(node)
        return len(self.nodes) - 1

    def node(self, node_id: int) -> GraphNode:
        return self.nodes[node_id]

    def __len__(self) -> int:
        return len(self.nodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ObjectGraph):
            return NotImplemented
        return graphs_equal(self, other)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    # ObjectGraphs are mutable snapshots; keep them unhashable like lists.
    __hash__ = None  # type: ignore[assignment]

    def size(self) -> int:
        """Number of nodes in the graph."""
        return len(self.nodes)

    def describe(self, node_id: Optional[int] = None, depth: int = 2) -> str:
        """Human-readable sketch of the graph (for diagnostics)."""
        node_id = self.root if node_id is None else node_id
        lines: List[str] = []
        self._describe(node_id, depth, "", lines, set())
        return "\n".join(lines)

    def _describe(
        self,
        node_id: int,
        depth: int,
        indent: str,
        lines: List[str],
        seen: set,
    ) -> None:
        node = self.nodes[node_id]
        tag = f"{indent}#{node_id} {node.kind}:{node.type_name}"
        if node.kind == KIND_SCALAR:
            tag += f" = {node.value!r}"
        lines.append(tag)
        if node_id in seen or depth <= 0:
            return
        seen.add(node_id)
        for label, child in node.edges:
            lines.append(f"{indent}  [{label[0]}={label[1]!r}] ->")
            self._describe(child, depth - 1, indent + "    ", lines, seen)


def _slot_names(cls: type) -> List[str]:
    """Collect slot names across the MRO of *cls*."""
    names: List[str] = []
    for klass in cls.__mro__:
        slots = klass.__dict__.get("__slots__")
        if slots is None:
            continue
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if name in ("__dict__", "__weakref__"):
                continue
            names.append(name)
    return names


def _safe_repr(value: Any) -> str:
    try:
        return repr(value)
    except Exception:
        return f"<unreprable {type(value).__name__}>"


def _scalar_sort_key(value: Any) -> Tuple[str, str]:
    return (type(value).__name__, _safe_repr(value))


class _Capturer:
    """Iterative, aliasing-preserving graph capture.

    The traversal is explicit-stack based so that deep structures such as
    long linked lists do not exhaust the interpreter recursion limit.
    """

    def __init__(
        self,
        ignore_attrs: Callable[[str], bool],
        max_nodes: Optional[int] = None,
    ) -> None:
        self._graph = ObjectGraph()
        self._seen: Dict[int, int] = {}  # id(obj) -> node id
        self._ignore_attrs = ignore_attrs
        self._max_nodes = max_nodes
        # Keep captured objects alive for the duration of the capture so
        # id() values stay unique.
        self._pins: List[Any] = []

    def capture(self, value: Any) -> ObjectGraph:
        self._graph.root = self._visit(value)
        return self._graph

    def capture_many(self, label_values: Iterable[Tuple[Any, Any]]) -> ObjectGraph:
        """Capture several roots under a synthetic frame node.

        *label_values* yields ``(label_key, value)`` pairs; each becomes a
        labeled edge from the frame root.  Used for capturing a receiver
        together with its mutable arguments.
        """
        frame = GraphNode(kind=KIND_FRAME, type_name="<frame>")
        root_id = self._graph.add_node(frame)
        self._graph.root = root_id
        for key, value in label_values:
            child = self._visit(value)
            frame.edges.append((("slot", key), child))
        return self._graph

    # -- traversal ---------------------------------------------------

    def _visit(self, value: Any) -> int:
        """Capture *value*, returning its node id (two-phase, iterative)."""
        pending: List[Tuple[Any, int]] = []
        node_id = self._enter(value, pending)
        while pending:
            obj, nid = pending.pop()
            self._expand(obj, nid, pending)
        return node_id

    def _enter(self, value: Any, pending: List[Tuple[Any, int]]) -> int:
        """Create (or reuse) a node for *value*; queue expansion if needed."""
        if self._max_nodes is not None and len(self._graph) >= self._max_nodes:
            raise CaptureLimitError(
                f"object graph exceeds {self._max_nodes} nodes"
            )
        if is_scalar(value):
            # Scalars are compared by value; interning makes identity
            # meaningless, so each occurrence gets its own leaf node.
            node = GraphNode(
                kind=KIND_SCALAR, type_name=type(value).__name__, value=value
            )
            return self._graph.add_node(node)
        oid = id(value)
        if oid in self._seen:
            return self._seen[oid]
        if is_opaque(value):
            node = GraphNode(
                kind=KIND_OPAQUE,
                type_name=type(value).__name__,
                value=_opaque_token(value),
            )
            nid = self._graph.add_node(node)
            self._seen[oid] = nid
            self._pins.append(value)
            return nid
        kind = None
        if isinstance(value, bytearray):
            kind = KIND_BYTEARRAY
        else:
            for container_type, container_kind in _CONTAINER_DISPATCH:
                if isinstance(value, container_type):
                    kind = container_kind
                    break
        if kind is None:
            kind = KIND_OBJECT
        node = GraphNode(kind=kind, type_name=_type_name(value))
        nid = self._graph.add_node(node)
        self._seen[oid] = nid
        self._pins.append(value)
        pending.append((value, nid))
        return nid

    def _expand(self, obj: Any, nid: int, pending: List[Tuple[Any, int]]) -> None:
        node = self._graph.nodes[nid]
        if node.kind in (KIND_LIST, KIND_TUPLE, KIND_DEQUE):
            for index, item in enumerate(obj):
                child = self._enter(item, pending)
                node.edges.append((("index", index), child))
        elif node.kind == KIND_BYTEARRAY:
            node.value = bytes(obj)
        elif node.kind == KIND_DICT:
            self._expand_dict(obj, node, pending)
        elif node.kind in (KIND_SET, KIND_FROZENSET):
            self._expand_set(obj, node, pending)
        else:
            self._expand_object(obj, node, pending)
            return
        # container *subclasses* may carry instance attributes too
        if type(obj).__module__ != "builtins" or hasattr(obj, "__dict__"):
            self._expand_object(obj, node, pending)
        if isinstance(obj, _collections.defaultdict):
            child = self._enter(obj.default_factory, pending)
            node.edges.append((("attr", "default_factory"), child))

    def _expand_dict(self, obj: dict, node: GraphNode, pending) -> None:
        scalar_items = []
        other_items = []
        for key, val in obj.items():
            if is_scalar(key):
                scalar_items.append((key, val))
            else:
                other_items.append((key, val))
        # Scalar-keyed entries are labeled by key value and sorted so that
        # insertion order does not affect graph equality: the *mapping* is
        # the state, not the ordering bookkeeping.
        scalar_items.sort(key=lambda kv: _scalar_sort_key(kv[0]))
        for key, val in scalar_items:
            child = self._enter(val, pending)
            node.edges.append((("key", (type(key).__name__, key)), child))
        for position, (key, val) in enumerate(other_items):
            key_child = self._enter(key, pending)
            val_child = self._enter(val, pending)
            node.edges.append((("objkey", position), key_child))
            node.edges.append((("objval", position), val_child))

    def _expand_set(self, obj, node: GraphNode, pending) -> None:
        scalars = []
        others = []
        for item in obj:
            if is_scalar(item):
                scalars.append(item)
            else:
                others.append(item)
        scalars.sort(key=_scalar_sort_key)
        for index, item in enumerate(scalars):
            child = self._enter(item, pending)
            node.edges.append((("member", index), child))
        # Non-scalar set members are canonicalized by repr: set elements
        # must be hashable, which in practice means they expose a stable
        # textual identity.  This is a documented approximation.  A repr
        # that raises must not abort the capture (the observer cannot be
        # allowed to fail the experiment), so it falls back to a type tag.
        others.sort(key=lambda item: (type(item).__name__, _safe_repr(item)))
        for index, item in enumerate(others):
            child = self._enter(item, pending)
            node.edges.append((("objmember", index), child))

    def _expand_object(self, obj: Any, node: GraphNode, pending) -> None:
        attrs: Dict[str, Any] = {}
        obj_dict = getattr(obj, "__dict__", None)
        if isinstance(obj_dict, dict):
            attrs.update(obj_dict)
        for name in _slot_names(type(obj)):
            try:
                attrs[name] = getattr(obj, name)
            except AttributeError:
                continue  # unset slot
        for name in sorted(attrs):
            if self._ignore_attrs(name):
                continue
            child = self._enter(attrs[name], pending)
            node.edges.append((("attr", name), child))


def _type_name(value: Any) -> str:
    cls = type(value)
    module = getattr(cls, "__module__", "")
    qualname = getattr(cls, "__qualname__", cls.__name__)
    if module in ("builtins", ""):
        return qualname
    return f"{module}.{qualname}"


def _opaque_token(value: Any) -> str:
    """A stable identity token for opaque leaves.

    Functions and classes are identified by qualified name rather than by
    ``id()`` so that two captures of the same program state compare equal.
    """
    name = getattr(value, "__qualname__", None) or getattr(value, "__name__", None)
    module = getattr(value, "__module__", "")
    if name is not None:
        return f"{module}:{name}"
    return f"{type(value).__name__}@?"


def _default_ignore(name: str) -> bool:
    """Default attribute filter: skip instrumentation-internal attributes."""
    return name.startswith("_repro_")


def capture(
    value: Any,
    *,
    ignore_attrs: Optional[Callable[[str], bool]] = None,
    max_nodes: Optional[int] = None,
) -> ObjectGraph:
    """Capture the object graph rooted at *value* (paper Definition 1).

    The returned graph is a fully materialized snapshot: mutating *value*
    afterwards does not affect it, which is what lets the injection wrapper
    use it as the ``deep_copy`` of Listing 1.

    Args:
        max_nodes: optional node budget; exceeding it raises
            :class:`CaptureLimitError` instead of stalling on a huge graph.
    """
    return _Capturer(ignore_attrs or _default_ignore, max_nodes).capture(value)


def capture_frame(
    label_values: Iterable[Tuple[Any, Any]],
    *,
    ignore_attrs: Optional[Callable[[str], bool]] = None,
    max_nodes: Optional[int] = None,
) -> ObjectGraph:
    """Capture several labeled roots under one synthetic frame node.

    Used to snapshot a receiver together with its mutable arguments (the
    paper includes "arguments passed in as non-constant references" in the
    injection wrapper's copy).
    """
    return _Capturer(ignore_attrs or _default_ignore, max_nodes).capture_many(
        label_values
    )


@dataclass
class GraphDifference:
    """First structural difference found between two graphs."""

    path: str
    reason: str

    def __str__(self) -> str:
        return f"at {self.path or '<root>'}: {self.reason}"


def graphs_equal(a: ObjectGraph, b: ObjectGraph) -> bool:
    """True if the two graphs are structurally identical.

    Equality is rooted isomorphism: same node kinds, types, scalar values,
    edge labels, and — crucially — the same *sharing* structure.  A method
    that replaces a shared child with an equal-valued private copy changes
    the graph and is therefore failure non-atomic under Definition 2.
    """
    return graph_diff(a, b) is None


def graph_diff(a: ObjectGraph, b: ObjectGraph) -> Optional[GraphDifference]:
    """Return the first difference between graphs, or None if equal."""
    differences = graph_diff_all(a, b, limit=1)
    return differences[0] if differences else None


def graph_diff_all(
    a: ObjectGraph, b: ObjectGraph, *, limit: int = 10
) -> List[GraphDifference]:
    """Collect up to *limit* structural differences between two graphs.

    Unlike :func:`graph_diff`, traversal continues past a mismatching
    subtree (the mismatching pair is simply not descended into), so the
    report shows every independently corrupted region — useful when
    deciding whether a non-atomic method has one defect or several.
    """
    differences: List[GraphDifference] = []
    # Parallel BFS maintaining a bijection between mutable node ids.
    a_to_b: Dict[int, int] = {}
    b_to_a: Dict[int, int] = {}
    queue: List[Tuple[int, int, str]] = [(a.root, b.root, "")]

    def note(path: str, reason: str) -> bool:
        """Record a difference; return True when the limit is reached."""
        differences.append(GraphDifference(path, reason))
        return len(differences) >= limit

    while queue:
        na_id, nb_id, path = queue.pop()
        na = a.nodes[na_id]
        nb = b.nodes[nb_id]
        if na.kind == KIND_SCALAR or nb.kind == KIND_SCALAR:
            diff = _compare_scalars(na, nb, path)
            if diff is not None and note(diff.path, diff.reason):
                return differences
            continue
        mapped = a_to_b.get(na_id)
        if mapped is not None:
            if mapped != nb_id and note(path, "sharing structure differs"):
                return differences
            continue  # already compared through another path
        if nb_id in b_to_a:
            if note(path, "sharing structure differs"):
                return differences
            continue
        a_to_b[na_id] = nb_id
        b_to_a[nb_id] = na_id
        if na.kind != nb.kind:
            if note(path, f"kind {na.kind} != {nb.kind}"):
                return differences
            continue
        if na.type_name != nb.type_name:
            if note(path, f"type {na.type_name} != {nb.type_name}"):
                return differences
            continue
        if na.kind in (KIND_OPAQUE, KIND_BYTEARRAY) and na.value != nb.value:
            if note(path, f"value {na.value!r} != {nb.value!r}"):
                return differences
            continue
        if len(na.edges) != len(nb.edges):
            if note(
                path, f"child count {len(na.edges)} != {len(nb.edges)}"
            ):
                return differences
            continue
        labels_match = True
        for (label_a, _), (label_b, _) in zip(na.edges, nb.edges):
            if label_a != label_b:
                labels_match = False
                if note(path, f"edge label {label_a!r} != {label_b!r}"):
                    return differences
                break
        if not labels_match:
            continue
        for (label_a, child_a), (_, child_b) in zip(na.edges, nb.edges):
            queue.append(
                (child_a, child_b, f"{path}/{label_a[0]}={label_a[1]!r}")
            )
    return differences


def _compare_scalars(
    na: GraphNode, nb: GraphNode, path: str
) -> Optional[GraphDifference]:
    if na.kind != nb.kind:
        return GraphDifference(path, f"kind {na.kind} != {nb.kind}")
    if na.type_name != nb.type_name:
        return GraphDifference(path, f"type {na.type_name} != {nb.type_name}")
    va, vb = na.value, nb.value
    # bool is an int subclass; type_name already separated them.  NaN is
    # deliberately equal to itself here: the *state* did not change.
    if va != vb and not (va != va and vb != vb):
        return GraphDifference(path, f"value {va!r} != {vb!r}")
    return None
