"""Deprecated shim — object graphs moved to :mod:`repro.core.state.graph`.

This module re-exports the full historical API of ``repro.core.objgraph``
so existing imports keep working.  New code should import from
:mod:`repro.core.state` (or :mod:`repro.core.state.graph` /
:mod:`repro.core.state.introspect` directly); this path is kept only for
downstream examples and tests migrating incrementally and may be removed
in a future major version.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.core.objgraph is deprecated; object graphs moved to "
    "repro.core.state (import from repro.core.state or "
    "repro.core.state.graph instead)",
    DeprecationWarning,
    stacklevel=2,
)

from .state.graph import (  # noqa: E402
    CaptureLimitError,
    GraphDifference,
    GraphNode,
    ObjectGraph,
    capture,
    capture_frame,
    graph_diff,
    graph_diff_all,
    graphs_equal,
)
from .state.introspect import SCALAR_TYPES, is_opaque, is_scalar  # noqa: E402

# Historical private helper, formerly defined here and imported by
# snapshot.py; kept under its old name for third-party code.
from .state.introspect import slot_names as _slot_names  # noqa: F401,E402

__all__ = [
    "GraphNode",
    "ObjectGraph",
    "CaptureLimitError",
    "capture",
    "capture_frame",
    "graphs_equal",
    "graph_diff",
    "graph_diff_all",
    "GraphDifference",
    "SCALAR_TYPES",
    "is_scalar",
    "is_opaque",
]
