"""Source registry for classes built from generated (virtual) modules.

Several subsystems materialize subject programs from *rendered* source
rather than files on disk: the fuzz builder ``exec``'s the source a
:class:`~repro.fuzz.spec.ProgramSpec` renders to, and the variant
builder ``exec``'s transformed module sources.  Downstream passes then
read that source back through the ordinary ``inspect`` machinery — the
static purity scan parses method bodies, the transparency index
certifies suspended lines, and tracebacks want real lines — so every
generated module must be registered with :mod:`linecache` under its
synthetic ``<...>`` filename.

:func:`register_virtual_source` is the one shared way to do that.  The
angle-bracket convention matters: ``inspect.getsource`` only consults
``linecache`` for filenames of the form ``<...>`` (anything else must
exist on disk), and ``linecache.checkcache`` purges entries whose
filename looks like a real path that no longer exists.
"""

from __future__ import annotations

import linecache

__all__ = [
    "register_virtual_source",
    "unregister_virtual_source",
    "virtual_source_registered",
]


def register_virtual_source(filename: str, source: str) -> str:
    """Register *source* under *filename* so ``inspect.getsource`` works.

    Args:
        filename: the synthetic filename the module's code objects carry
            (``compile(source, filename, "exec")``).  Must be wrapped in
            angle brackets — that is what makes ``inspect`` fall through
            to ``linecache`` instead of requiring a file on disk.
        source: the module source text.

    Returns:
        The filename, for convenient chaining into ``compile``.
    """
    if not (filename.startswith("<") and filename.endswith(">")):
        raise ValueError(
            f"virtual filename {filename!r} must be <angle-bracketed>; "
            "inspect.getsource only consults linecache for such names"
        )
    linecache.cache[filename] = (
        len(source),
        None,
        source.splitlines(True),
        filename,
    )
    return filename


def unregister_virtual_source(filename: str) -> None:
    """Drop a registered module (tests use this to simulate sourceless
    subjects — e.g. the trace pass's ``transparency`` fallback)."""
    linecache.cache.pop(filename, None)


def virtual_source_registered(filename: str) -> bool:
    """True when *filename* currently resolves in the registry."""
    return filename in linecache.cache
