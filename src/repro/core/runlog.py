"""Structured logs of injection runs.

The paper's injection wrappers write the results of online atomicity
checks to log files, which are processed offline to classify each method
(Section 5.1, Step 3).  This module is those log files: every execution of
the injector program produces one :class:`RunRecord` holding the ordered
sequence of :class:`Mark` entries emitted while the injected exception
propagated from callee to caller.

Mark order within a run is significant: a *pure* failure non-atomic method
is one that is the **first** to be marked non-atomic in some run
(Definition 3 / Section 4.3), because exceptions propagate from callee to
caller and each wrapper marks its method before re-throwing.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "MethodKey",
    "Mark",
    "RunRecord",
    "RunLog",
    "merge_logs",
    "ATOMIC",
    "NONATOMIC",
]

#: Verdicts recorded by the injection wrapper for a single call.
ATOMIC = "atomic"
NONATOMIC = "nonatomic"

#: A method is identified by ``"ClassName.method"`` (or ``"module.func"``
#: for free functions), mirroring the paper's per-method bookkeeping.
MethodKey = str


@dataclass(frozen=True)
class Mark:
    """One atomicity verdict emitted by an injection wrapper.

    Attributes:
        method: the wrapped method the verdict is about.
        verdict: :data:`ATOMIC` or :data:`NONATOMIC` for this call.
        sequence: position of the mark within its run (propagation order).
        difference: human-readable description of the first object-graph
            difference (non-atomic marks only).
    """

    method: MethodKey
    verdict: str
    sequence: int
    difference: Optional[str] = None

    @property
    def is_nonatomic(self) -> bool:
        return self.verdict == NONATOMIC


@dataclass
class RunRecord:
    """Everything observed during one execution of the injector program."""

    injection_point: int
    injected_method: Optional[MethodKey] = None
    injected_exception: Optional[str] = None
    marks: List[Mark] = field(default_factory=list)
    completed: bool = False  # True if the program finished without injection
    escaped: bool = False  # True if the injected exception reached the top
    crashed: bool = False  # True if the run never finished (timeout/worker loss)
    #: "dynamic" for executed runs, "static" for records synthesized by
    #: the static pruning pass (repro.core.staticpass) instead of run.
    provenance: str = "dynamic"

    def add_mark(
        self,
        method: MethodKey,
        verdict: str,
        difference: Optional[str] = None,
    ) -> Mark:
        mark = Mark(
            method=method,
            verdict=verdict,
            sequence=len(self.marks),
            difference=difference,
        )
        self.marks.append(mark)
        return mark

    def first_nonatomic(self) -> Optional[Mark]:
        """The first non-atomic mark of the run, if any (purity test)."""
        for mark in self.marks:
            if mark.is_nonatomic:
                return mark
        return None

    def nonatomic_methods(self) -> List[MethodKey]:
        return [m.method for m in self.marks if m.is_nonatomic]

    # -- (de)serialization -------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-ready dict (one ``runs`` entry of the log format)."""
        return {
            "injection_point": self.injection_point,
            "injected_method": self.injected_method,
            "injected_exception": self.injected_exception,
            "completed": self.completed,
            "escaped": self.escaped,
            "crashed": self.crashed,
            "provenance": self.provenance,
            "marks": [asdict(mark) for mark in self.marks],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RunRecord":
        """Rebuild a record; missing keys (older logs) default sanely."""
        record = cls(
            injection_point=data["injection_point"],
            injected_method=data.get("injected_method"),
            injected_exception=data.get("injected_exception"),
            completed=data.get("completed", False),
            escaped=data.get("escaped", False),
            crashed=data.get("crashed", False),
            provenance=data.get("provenance", "dynamic"),
        )
        for mark_data in data.get("marks", []):
            record.marks.append(Mark(**mark_data))
        return record


def merge_logs(logs: "List[RunLog]") -> "RunLog":
    """Combine several campaigns into one log.

    The paper tests shared classes in several experiments ("because of
    the inheritance relationships between classes and the reuse of
    methods, some classes have been tested in several of the
    experiments").  Merging concatenates the runs and sums the call
    counts, so classification over the merged log gives the worst-case,
    library-wide verdict per method: a single non-atomic mark in any
    campaign makes the method non-atomic overall.
    """
    merged = RunLog()
    for log in logs:
        for method, count in log.call_counts.items():
            if method not in merged.call_counts:
                merged.call_counts[method] = 0
                merged.methods_seen.append(method)
            merged.call_counts[method] += count
        merged.runs.extend(log.runs)
    return merged


class RunLog:
    """The complete log of a detection campaign (all runs).

    Also accumulates per-method call counts from the profiling run, which
    the paper uses to weight classification results by number of calls
    (Figures 2(b) and 3(b)).
    """

    def __init__(self) -> None:
        self.runs: List[RunRecord] = []
        self.call_counts: Dict[MethodKey, int] = {}
        self.methods_seen: List[MethodKey] = []

    # -- recording ---------------------------------------------------

    def begin_run(self, injection_point: int) -> RunRecord:
        record = RunRecord(injection_point=injection_point)
        self.runs.append(record)
        return record

    def record_call(self, method: MethodKey) -> None:
        if method not in self.call_counts:
            self.call_counts[method] = 0
            self.methods_seen.append(method)
        self.call_counts[method] += 1

    # -- queries -----------------------------------------------------

    def marks_for(self, method: MethodKey) -> List[Mark]:
        return [m for run in self.runs for m in run.marks if m.method == method]

    def marked_methods(self) -> List[MethodKey]:
        seen: List[MethodKey] = []
        for run in self.runs:
            for mark in run.marks:
                if mark.method not in seen:
                    seen.append(mark.method)
        return seen

    def total_injections(self) -> int:
        """Number of runs in which an exception was actually injected."""
        return sum(1 for run in self.runs if run.injected_method is not None)

    # -- (de)serialization -------------------------------------------

    def to_json(self) -> str:
        """Serialize the log (the paper's offline-processing format)."""
        payload = {
            "call_counts": self.call_counts,
            "methods_seen": self.methods_seen,
            "runs": [run.to_dict() for run in self.runs],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunLog":
        payload = json.loads(text)
        log = cls()
        log.call_counts = dict(payload.get("call_counts", {}))
        log.methods_seen = list(payload.get("methods_seen", []))
        for run_data in payload.get("runs", []):
            log.runs.append(RunRecord.from_dict(run_data))
        return log

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "RunLog":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())
