"""Undo-log ("copy-on-write") checkpointing — the paper's §6.2 extension.

The eager :mod:`snapshot <repro.core.snapshot>` checkpoint copies the
whole reachable state up front, so its cost grows with object size even
when the method barely writes anything.  The paper suggests copy-on-write
to speed up checkpointing of very large objects; this module implements
the standard realization: a **write barrier** on instrumented classes
records the old value of each attribute the first time it is written
inside a checkpointed region, and rollback replays the undo log in
reverse.  Cost is proportional to the number of *writes*, not to the
object size.

Limitations (documented, checked by tests): only attribute writes on
barrier-installed classes are covered.  Mutations of plain containers
(``list.append`` etc.) bypass the barrier, so the undo-log wrapper is
only safe for classes whose state lives in attributes of barriered
objects — exactly the trade-off a production system would document.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, List, Tuple

__all__ = [
    "UndoLog",
    "active_log_top",
    "install_write_barrier",
    "pop_active_log",
    "push_active_log",
    "remove_write_barrier",
    "failure_atomic_undolog",
    "make_undolog_atomicity_wrapper",
]

_MISSING = object()

#: Stack of active undo logs (innermost last).  Single-threaded by
#: design, like the paper's infrastructure (Section 4.4).
_ACTIVE_LOGS: List["UndoLog"] = []


def push_active_log(log: Any) -> None:
    """Make *log* the innermost write-barrier sink.

    Public entry point for non-``UndoLog`` sinks (any object with the
    ``record``/``absorb`` protocol) — the trace pass registers its
    :class:`~repro.core.tracepass.TraceRecorder` here so the same class
    barrier that feeds rollback logs feeds the write trace.
    """
    _ACTIVE_LOGS.append(log)


def pop_active_log(log: Any) -> None:
    """Unregister *log*; it must be the innermost sink."""
    if not _ACTIVE_LOGS or _ACTIVE_LOGS[-1] is not log:
        raise RuntimeError("pop_active_log: log is not the innermost sink")
    _ACTIVE_LOGS.pop()


def active_log_top() -> Any:
    """The innermost barrier sink, or None when the stack is empty."""
    return _ACTIVE_LOGS[-1] if _ACTIVE_LOGS else None


class UndoLog:
    """Records (object, attribute, old value) triples for rollback."""

    def __init__(self) -> None:
        self._entries: List[Tuple[Any, str, Any]] = []
        self._seen: set = set()

    def record(self, obj: Any, name: str) -> None:
        """Save the current value of ``obj.name`` (first write only)."""
        key = (id(obj), name)
        if key in self._seen:
            return
        self._seen.add(key)
        old = obj.__dict__.get(name, _MISSING) if hasattr(obj, "__dict__") else getattr(obj, name, _MISSING)
        self._entries.append((obj, name, old))

    def rollback(self) -> None:
        """Undo every recorded write, newest first."""
        for obj, name, old in reversed(self._entries):
            if old is _MISSING:
                try:
                    object.__delattr__(obj, name)
                except AttributeError:
                    pass
            else:
                object.__setattr__(obj, name, old)

    def absorb(self, child: "UndoLog") -> None:
        """Adopt a nested log's entries (the oldest saved value wins).

        When a nested checkpointed region commits, its writes become part
        of the enclosing region's tentative state: if the enclosing region
        later fails, those writes must be rolled back too.  Keys this log
        already recorded keep their own (older) saved value.  Absorbing a
        child that was rolled back is harmless — restoring an attribute to
        its pre-child value a second time is idempotent.
        """
        for obj, name, old in child._entries:
            key = (id(obj), name)
            if key in self._seen:
                continue
            self._seen.add(key)
            self._entries.append((obj, name, old))

    @property
    def recorded_writes(self) -> int:
        return len(self._entries)

    # -- context management ------------------------------------------------

    def __enter__(self) -> "UndoLog":
        _ACTIVE_LOGS.append(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        _ACTIVE_LOGS.pop()
        # Commit-to-parent: without this, a nested masked method that
        # completes successfully would leave the enclosing log blind to
        # its writes, making the *outer* method's rollback incomplete.
        if _ACTIVE_LOGS:
            _ACTIVE_LOGS[-1].absorb(self)


_BARRIER_ATTR = "_repro_original_setattr"
_BARRIER_DELATTR = "_repro_original_delattr"


def install_write_barrier(cls: type) -> None:
    """Route attribute writes *and deletes* through the active undo log.

    Both ``__setattr__`` and ``__delattr__`` record the old value before
    mutating — a delete is a write as far as rollback is concerned.
    """
    if _BARRIER_ATTR in vars(cls):
        return  # already installed
    original_set = cls.__setattr__
    original_del = cls.__delattr__

    def barrier_setattr(self: Any, name: str, value: Any) -> None:
        if _ACTIVE_LOGS:
            _ACTIVE_LOGS[-1].record(self, name)
        original_set(self, name, value)

    def barrier_delattr(self: Any, name: str) -> None:
        if _ACTIVE_LOGS:
            _ACTIVE_LOGS[-1].record(self, name)
        original_del(self, name)

    setattr(cls, _BARRIER_ATTR, original_set)
    setattr(cls, _BARRIER_DELATTR, original_del)
    cls.__setattr__ = barrier_setattr  # type: ignore[method-assign]
    cls.__delattr__ = barrier_delattr  # type: ignore[method-assign]


def remove_write_barrier(cls: type) -> None:
    """Restore the original ``__setattr__`` / ``__delattr__`` of *cls*."""
    original_set = vars(cls).get(_BARRIER_ATTR)
    if original_set is None:
        return
    cls.__setattr__ = original_set  # type: ignore[method-assign]
    cls.__delattr__ = vars(cls)[_BARRIER_DELATTR]  # type: ignore[method-assign]
    delattr(cls, _BARRIER_ATTR)
    delattr(cls, _BARRIER_DELATTR)


def make_undolog_atomicity_wrapper(spec: Any, *, stats: Any = None) -> Callable:
    """Spec-based atomicity wrapper backed by the undo log.

    Equivalent to
    ``make_atomicity_wrapper(spec, stats=stats, backend="undolog")`` and
    kept as a named entry point for the write-barrier strategy.  ``stats``
    is a :class:`~repro.core.masking.MaskingStats`; the
    checkpointed-object count is reported as the number of *recorded
    writes* rolled back — there is no up-front copy to count, which is
    the strategy's point.
    """
    # Lazy import: masking builds on the state layer, which builds on the
    # UndoLog defined in this module.
    from .masking import make_atomicity_wrapper

    return make_atomicity_wrapper(spec, stats=stats, backend="undolog")


def failure_atomic_undolog(func: Callable) -> Callable:
    """Atomicity wrapper backed by the undo log instead of a deep copy.

    The wrapped method's receiver class (and any class it writes to) must
    have the write barrier installed; writes to other objects are not
    rolled back.
    """

    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        log = UndoLog()
        with log:
            try:
                return func(*args, **kwargs)
            except BaseException:
                log.rollback()
                raise

    wrapper._repro_wrapped = func  # type: ignore[attr-defined]
    wrapper._repro_kind = "atomicity-undolog"  # type: ignore[attr-defined]
    return wrapper
