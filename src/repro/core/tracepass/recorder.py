"""Write-trace recording for the one-trace-many-points pass.

The trace pass (:mod:`repro.core.tracepass`) derives per-point verdicts
from a single instrumented reference execution.  Its cheapest rule —
"no writes to the receiver's reachable state precede the point in its
span → trivially atomic" — needs to know whether *anything* was written
between a wrapper entry and a later injection moment.  This module
supplies that knowledge by riding the existing copy-on-write machinery
(:mod:`repro.core.cow`): the same class-level write barrier that feeds
undo logs feeds a :class:`TraceRecorder` during the profiling run,
producing a sequence-numbered log of every attribute write and delete
on the instrumented classes.

The barrier only sees attribute (re)assignment and deletion on classes
it is installed on; in-place container mutation (``list.append`` etc.)
bypasses it — the same documented limitation as the undo-log masking
strategy.  The trace pass therefore never trusts the write counter
alone: the zero-writes fast path additionally requires
:func:`barrier_covered` to certify, at wrapper entry, that everything
reachable from the captured roots is either immutable or an instance of
a barriered class.  Any mutation of a covered root set must pass
through the barrier, so "no events recorded since entry" is then a
sound proof that the reachable state is unchanged.  Root sets that a
stray list or foreign object makes uncoverable simply fall back to a
state recapture, which is sound unconditionally.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Set, Tuple

from ..cow import (
    active_log_top,
    install_write_barrier,
    pop_active_log,
    push_active_log,
    remove_write_barrier,
)
from ..state.introspect import (
    KIND_FROZENSET,
    KIND_OBJECT,
    KIND_TUPLE,
    default_ignore,
    is_opaque,
    is_scalar,
    iter_children,
    kind_of,
)

__all__ = ["TraceRecorder", "barrier_covered"]

#: Retained write events; the sequence counter keeps counting past it.
EVENT_CAP = 10_000


class TraceRecorder:
    """Sequence-numbered log of attribute writes/deletes during a trace.

    Duck-types the :class:`~repro.core.cow.UndoLog` protocol (``record``
    / ``absorb``) so the cow write barrier feeds it, but never dedups
    and never stores old values: the trace pass only needs to know
    *that* and *when* state was written, not how to undo it.
    """

    def __init__(self) -> None:
        #: Monotonic count of barrier events seen so far.  Wrapper-entry
        #: observations snapshot it; an unchanged value later proves no
        #: barrier-visible write happened in between.
        self.sequence = 0
        #: ``(sequence, type name, attribute)`` per event, capped at
        #: :data:`EVENT_CAP` entries (the counter is authoritative).
        self.events: List[Tuple[int, str, str]] = []
        #: Classes whose write barrier routes into this recorder.
        self.barriered: Set[type] = set()
        self._installed: List[type] = []
        self._active = False

    # -- UndoLog protocol (fed by the cow write barrier) ----------------

    def record(self, obj: Any, name: str) -> None:
        self.sequence += 1
        if len(self.events) < EVENT_CAP:
            self.events.append((self.sequence, type(obj).__name__, name))

    def absorb(self, child: Any) -> None:
        """A nested undo log closed; count its writes as our own.

        While a subject-owned :class:`~repro.core.cow.UndoLog` region is
        open *above* this recorder, barrier events go to that log, not to
        us — so bump the sequence by the child's recorded writes when it
        commits back down.  Over-counting a rolled-back region is fine:
        a too-high counter only disables the zero-writes fast path.
        """
        self.sequence += max(1, int(getattr(child, "recorded_writes", 1)))

    @property
    def recorded_writes(self) -> int:
        return self.sequence

    @property
    def is_innermost(self) -> bool:
        """True when barrier events are currently routed to this recorder
        (no subject-owned undo-log region is open above it)."""
        return active_log_top() is self

    # -- lifecycle ------------------------------------------------------

    def start(self, classes: Iterable[type]) -> None:
        """Install write barriers and make this the active sink.

        Only classes whose barrier this call installed are removed again
        by :meth:`stop` — a class that already carries a barrier (e.g.
        from an enclosing undo-log campaign) is left alone, but still
        counts as covered since its events reach the active-log stack.
        """
        if self._active:
            raise RuntimeError("TraceRecorder already started")
        for cls in classes:
            freshly_installed = not hasattr(cls, "_repro_original_setattr")
            install_write_barrier(cls)
            if freshly_installed:
                self._installed.append(cls)
            self.barriered.add(cls)
        push_active_log(self)
        self._active = True

    def stop(self) -> None:
        if not self._active:
            return
        pop_active_log(self)
        for cls in self._installed:
            remove_write_barrier(cls)
        self._installed = []
        self._active = False


def barrier_covered(
    roots: Iterable[Tuple[Any, Any]],
    barriered: Set[type],
    *,
    ignore_attrs: Optional[Callable[[str], bool]] = None,
    max_objects: int = 10_000,
) -> bool:
    """True when every mutation of the roots' reachable state is
    barrier-visible.

    Walks the live objects reachable from ``roots`` (labeled exactly
    like a state capture): scalars and opaque leaves cannot mutate
    observably, tuples and frozensets are immutable shells whose
    children are walked, instances of barriered classes route every
    attribute write/delete through the recorder — and anything else
    (a plain list, dict, set, bytearray, or a non-barriered object)
    makes the set uncoverable, because it could change without an
    event.  Attaching a *new* mutable object to a covered set requires
    an attribute write on a barriered instance, which is itself an
    event, so coverage at entry plus an unchanged event counter is a
    sound unchanged-state proof for the whole window.
    """
    ignore = ignore_attrs or default_ignore
    stack = [value for _, value in roots]
    seen: Set[int] = set()
    while stack:
        value = stack.pop()
        if is_scalar(value) or is_opaque(value):
            continue
        if id(value) in seen:
            continue
        seen.add(id(value))
        if len(seen) > max_objects:
            return False
        kind = kind_of(value)
        if kind == KIND_OBJECT:
            if type(value) not in barriered:
                return False
        elif kind not in (KIND_TUPLE, KIND_FROZENSET):
            return False  # mutable container: bypasses the barrier
        for _, child in iter_children(value, kind, ignore):
            stack.append(child)
    return True
