"""One-trace-many-points derivation of injection-run verdicts.

The paper's detection step (§3) executes the subject once per injection
point: run *k* replays the workload deterministically, injects at point
*k*, and records one atomic/non-atomic mark per enclosing wrapper as the
exception propagates out.  RegionTrack-style trace checking observes
that a single instrumented reference execution already contains enough
information to decide most of those runs without replaying them.

The key alignment that makes derivation exact: the injection wrapper
raises in its repertoire loop **at entry, before the before-capture**.
So the program state at the moment point *p* (belonging to wrapper entry
*E*) would fire is precisely the state at *E*'s entry during the
reference execution — no later statement has run yet.  The mark an
enclosing wrapper *W* would record in run *p* is therefore::

    diff(capture(W's roots at W's entry), capture(W's roots at E's entry))

both of which this pass captures during the ONE profiling run.  The
trace-derived record for *p* is then

* one mark per genuine exception that escaped a wrapped call *before*
  *E* in the trace (the "ambient" marks — a dynamic run for *p* replays
  those failures identically and records the identical verdicts, since
  the dynamic after-capture happens at the same program moment as this
  pass's escape-time recapture), in chronological order, followed by
* one mark per enclosing wrapper of *E*, innermost first (propagation
  order of the injected exception).

A point is **trace-decidable** only when every ingredient of that
reconstruction is certain:

* the stack walk from *E* reached the profile boundary and identified
  every wrapper frame (rule R1);
* every non-wrapper frame between *E* and the boundary is
  exception-transparent at its suspended line (rule R2) — the injected
  exception provably propagates through untouched, so the enclosing
  wrappers are exactly the marks;
* every enclosing wrapper's entry-time capture succeeded and the active
  stack reconciled by frame identity (rule R3);
* the exception type passes the injectability probe (rule R4); and
* every ambient mark before *E* was itself derivable (rule R5).

Everything else falls back to real execution — derivation is sound by
construction, never by luck.  Verdicts come in three flavors:

* **zero-writes fast path** — the receiver's reachable state was
  barrier-covered at *W*'s entry (:func:`~.recorder.barrier_covered`)
  and the :class:`~.recorder.TraceRecorder` sequence is unchanged:
  atomic without a recapture;
* **recapture-equal** — the graph recapture at *E*'s entry equals *W*'s
  entry capture: atomic (this is how handler-compensated writes — state
  restored by a finally/except block before the exception crossed *W* —
  are recognized as atomic, exactly as a dynamic run would);
* **recapture-differs** — an unreversed write precedes the point:
  non-atomic, with the same ``GraphDifference`` string a dynamic run
  under the graph backend would record.

Captures always use the graph backend with the pass's own
:class:`~repro.core.state.StateStats`, regardless of the campaign
backend: dynamic non-atomic runs are already graph-refined on lossy
backends, so derived records keep the log bit-identical across all
backends (modulo per-run ``provenance="trace"``).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..analyzer import MethodSpec
from ..exceptions import is_injected, make_injected
from ..injection import INJ_WRAPPER_CODE, InjectionCampaign
from ..instrument.protocol import EventObserver
from ..runlog import ATOMIC, NONATOMIC, RunRecord
from ..state import CaptureLimitError, StateStats, get_backend
from ..staticpass.pruner import (
    PROFILE_BOUNDARY_CODE,
    StaticPruner,
    nested_boundary,
)
from ..staticpass.transparency import TransparencyIndex
from .recorder import TraceRecorder, barrier_covered

__all__ = ["PROVENANCE_TRACE", "TraceDeriver"]

PROVENANCE_TRACE = "trace"

#: A derived mark: (method key, verdict, difference-or-None).
_MarkTuple = Tuple[Any, str, Optional[str]]


@dataclass
class _ActiveEntry:
    """A wrapper invocation currently on the stack during the trace."""

    spec: MethodSpec
    #: The wrapper's own frame object — active-stack reconciliation
    #: compares these by identity, which spec matching cannot replace
    #: (the same method re-entered at the same depth is a new entry).
    frame: Any
    roots: List[Tuple[Any, Any]]
    #: Graph capture of the roots at entry; None if the capture failed
    #: (every verdict against this entry is then undecidable).
    capture: Any
    #: Recorder sequence at entry — unchanged later means no
    #: barrier-visible write happened in the window.
    write_seq: int
    #: True when the roots were fully barrier-covered at entry (the
    #: precondition of the zero-writes fast path).
    covered: bool


@dataclass(frozen=True)
class _TraceSpan:
    """The derivation outcome for one wrapper entry's repertoire."""

    base_point: int
    spec: MethodSpec
    decided: bool
    #: Ambient marks then enclosing marks, in dynamic-run record order.
    marks: Tuple[_MarkTuple, ...]
    #: Why the span is undecidable (telemetry/tests); None when decided.
    reason: Optional[str] = None


class TraceDeriver(EventObserver):
    """Derives injection-run records from one instrumented trace.

    Attaches to the campaign's profiling-only observer hooks (sharing
    the slots with an optional chained :class:`StaticPruner`, which
    keeps `--static-prune --trace-derive` composable on one profiling
    run) and, per wrapper entry, decides the entry's whole repertoire
    immediately — captures happen at the exact moment the points would
    fire, so no state needs to be retained beyond the active stack.
    """

    def __init__(
        self,
        campaign: InjectionCampaign,
        *,
        pruner: Optional[StaticPruner] = None,
        recorder: Optional[TraceRecorder] = None,
    ) -> None:
        started = time.perf_counter()
        self.campaign = campaign
        self.pruner = pruner
        self.recorder = recorder
        self.transparency: TransparencyIndex = (
            pruner.transparency if pruner is not None else TransparencyIndex()
        )
        #: The pass's own capture/compare accounting; deliberately not
        #: the campaign's StateStats, so the dynamic-run telemetry
        #: counters stay comparable with and without --trace-derive.
        self.stats = StateStats()
        self.spans: List[_TraceSpan] = []
        self._graph = get_backend("graph")
        self._stack: List[_ActiveEntry] = []
        #: One entry per escape event, chronological; None marks an
        #: escape whose verdict could not be derived — every span
        #: observed after it is undecidable (rule R5).
        self._ambient: List[Optional[_MarkTuple]] = []
        self._probe: Dict[type, bool] = {}
        #: How often the adaptive budget lift re-captured after a
        #: CaptureLimitError (telemetry ``trace_capture_retries``).
        self.capture_retries = 0
        self.seconds = time.perf_counter() - started

    # -- campaign hooks -------------------------------------------------

    def attach(self, campaign: InjectionCampaign) -> None:
        campaign.point_observer = self.observe
        campaign.escape_observer = self.observe_escape

    def detach(self, campaign: InjectionCampaign) -> None:
        campaign.point_observer = None
        campaign.escape_observer = None

    def observe(self, spec: MethodSpec, base_point: int) -> None:
        """``point_observer`` — called from the wrapper at entry."""
        wrapper_frame = sys._getframe(1)
        try:
            self.observe_entry_frame(spec, base_point, wrapper_frame)
        finally:
            del wrapper_frame

    def observe_escape(self, spec: MethodSpec) -> None:
        """``escape_observer`` — a genuine exception is crossing the
        innermost wrapper."""
        wrapper_frame = sys._getframe(1)
        try:
            self.observe_escape_frame(spec, wrapper_frame)
        finally:
            del wrapper_frame

    # -- instrumentor-protocol observer hooks ---------------------------

    def on_call_enter(self, spec: MethodSpec, base_point: int, frame) -> None:
        self.observe_entry_frame(spec, base_point, frame)

    def on_escape(self, spec: MethodSpec, frame) -> None:
        self.observe_escape_frame(spec, frame)

    # -- frame-explicit observations ------------------------------------

    def observe_entry_frame(
        self, spec: MethodSpec, base_point: int, wrapper_frame
    ) -> None:
        """Record one wrapper entry, given the live wrapper frame."""
        started = time.perf_counter()
        try:
            if self.pruner is not None:
                self.pruner.observe_frame(spec, base_point, wrapper_frame.f_back)
            enclosing, frames, usable = self._walk(wrapper_frame.f_back)
            reconciled = self._reconcile(
                [frame for _, frame in reversed(enclosing)]
            )
            self._decide_span(spec, base_point, frames, usable, reconciled)
            self._stack.append(self._enter(spec, wrapper_frame))
        finally:
            self.seconds += time.perf_counter() - started

    def observe_escape_frame(self, spec: MethodSpec, wrapper_frame) -> None:
        """A genuine exception is crossing the innermost wrapper: pop
        its entry and record the ambient mark a dynamic run would
        record at this same moment."""
        started = time.perf_counter()
        try:
            if self.pruner is not None:
                self.pruner.observe_escape(spec)
            enclosing, _frames, usable = self._walk(wrapper_frame.f_back)
            expected = [frame for _, frame in reversed(enclosing)]
            expected.append(wrapper_frame)
            if not usable:
                # unknown true depth: distrust the whole active stack
                self._stack.clear()
                self._ambient.append(None)
                return
            if not self._reconcile(expected) or len(self._stack) != len(expected):
                if self._stack and self._stack[-1].frame is wrapper_frame:
                    self._stack.pop()
                self._ambient.append(None)
                return
            entry = self._stack.pop()
            self._ambient.append(self._verdict(entry))
        finally:
            self.seconds += time.perf_counter() - started

    # -- trace mechanics ------------------------------------------------

    def _walk(self, start):
        """Split the stack above *start* into enclosing wrapper frames
        (innermost first, as ``(spec, frame)``) and other frames (as
        ``(code, suspended line)``); ``usable`` is False when a wrapper
        frame could not be identified or the boundary was never found."""
        enclosing: List[Tuple[MethodSpec, Any]] = []
        frames: List[Tuple[Any, int]] = []
        usable = True
        complete = False
        frame = start
        try:
            while frame is not None:
                code = frame.f_code
                if code is PROFILE_BOUNDARY_CODE:
                    # Same guard as the static pruner's walk: an inner
                    # boundary called by subject code hides the real
                    # enclosing context, so the walk is not trustworthy.
                    complete = not nested_boundary(frame)
                    break
                if code is INJ_WRAPPER_CODE:
                    enclosing_spec = frame.f_locals.get("spec")
                    if isinstance(enclosing_spec, MethodSpec):
                        enclosing.append((enclosing_spec, frame))
                    else:
                        usable = False
                else:
                    frames.append((code, frame.f_lineno))
                frame = frame.f_back
        finally:
            del frame
        return enclosing, frames, usable and complete

    def _reconcile(self, outermost_first: List[Any]) -> bool:
        """Correct the active stack against the walked wrapper frames.

        Truncates to the walked depth, then keeps the longest prefix
        whose stored frames match the walked frames *by identity* —
        entries orphaned by an exception that bypassed the escape hook
        (or by a distrusted walk) are dropped here, before they can
        donate a stale capture to a verdict.  Returns True when the
        whole stack matches.
        """
        del self._stack[len(outermost_first):]
        matched = 0
        for entry, frame in zip(self._stack, outermost_first):
            if entry.frame is not frame:
                break
            matched += 1
        exact = matched == len(self._stack) == len(outermost_first)
        del self._stack[matched:]
        return exact

    def _enter(self, spec: MethodSpec, wrapper_frame) -> _ActiveEntry:
        args = wrapper_frame.f_locals.get("args", ())
        kwargs = wrapper_frame.f_locals.get("kwargs", {})
        roots = self.campaign.capture_roots(spec, args, kwargs)
        capture = self._capture(roots)
        covered = (
            capture is not None
            and self.recorder is not None
            and self.recorder.is_innermost
            and barrier_covered(
                roots,
                self.recorder.barriered,
                ignore_attrs=self.campaign.ignore_attrs,
            )
        )
        return _ActiveEntry(
            spec=spec,
            frame=wrapper_frame,
            roots=roots,
            capture=capture,
            write_seq=self.recorder.sequence if self.recorder else -1,
            covered=covered,
        )

    def _capture(self, roots) -> Any:
        """Graph capture under suspension; None when over budget.

        Budget overruns retry once with a doubled budget (the adaptive
        lift of ROADMAP item 1): the deriver's captures exist only to
        compare against each other, so a wider budget costs nothing in
        soundness — a span the budget still defeats falls back to
        execution with reason ``capture`` exactly as before, and
        ``capture_retries`` records how often the lift was attempted.
        """
        budget = self.campaign.max_graph_nodes
        with self.campaign.suspend():
            try:
                return self._graph.capture_frame(
                    roots,
                    ignore_attrs=self.campaign.ignore_attrs,
                    max_nodes=budget,
                    stats=self.stats,
                )
            except CaptureLimitError:
                self.capture_retries += 1
                try:
                    return self._graph.capture_frame(
                        roots,
                        ignore_attrs=self.campaign.ignore_attrs,
                        max_nodes=budget * 2,
                        stats=self.stats,
                    )
                except CaptureLimitError:
                    return None

    def _verdict(self, entry: _ActiveEntry) -> Optional[_MarkTuple]:
        """The mark *entry*'s wrapper would record if an exception
        crossed it right now; None when underivable."""
        if entry.capture is None:
            return None
        if (
            entry.covered
            and self.recorder is not None
            and self.recorder.is_innermost
            and self.recorder.sequence == entry.write_seq
        ):
            return (entry.spec.key, ATOMIC, None)
        now = self._capture(entry.roots)
        if now is None:
            return None
        with self.campaign.suspend():
            difference = self._graph.diff(entry.capture, now, stats=self.stats)
        if difference is None:
            return (entry.spec.key, ATOMIC, None)
        return (entry.spec.key, NONATOMIC, str(difference))

    def _decide_span(
        self,
        spec: MethodSpec,
        base_point: int,
        frames: List[Tuple[Any, int]],
        usable: bool,
        reconciled: bool,
    ) -> None:
        reason: Optional[str] = None
        if not usable:
            reason = "walk"  # R1: boundary/wrapper identification failed
        elif not reconciled:
            reason = "stack"  # R3: active stack disagrees with the walk
        elif any(
            not self.transparency.transparent_at(code, lineno)
            for code, lineno in frames
        ):
            reason = "transparency"  # R2
        marks: List[_MarkTuple] = []
        if reason is None:
            for ambient in self._ambient:
                if ambient is None:
                    reason = "ambient"  # R5
                    break
                marks.append(ambient)
        if reason is None:
            for entry in reversed(self._stack):  # innermost first
                mark = self._verdict(entry)
                if mark is None:
                    reason = "capture"  # R3: entry capture/recapture failed
                    break
                marks.append(mark)
        self.spans.append(
            _TraceSpan(
                base_point=base_point,
                spec=spec,
                decided=reason is None,
                marks=tuple(marks),
                reason=reason,
            )
        )

    # -- decision -------------------------------------------------------

    def _injectable(self, exc_type: type) -> bool:
        cached = self._probe.get(exc_type)
        if cached is None:
            try:
                probe = make_injected(
                    exc_type, method="<probe>", injection_point=0
                )
                cached = is_injected(probe)
            except Exception:
                cached = False
            self._probe[exc_type] = cached
        return cached

    def derive_map(self) -> Dict[int, RunRecord]:
        """Derived records keyed by injection point.

        Mirrors :meth:`StaticPruner.prune_map`: points whose exception
        type fails the injectability probe (R4) stay dynamic — an
        uninjectable type would surface as a *genuine* failure, which
        only execution can characterize.
        """
        started = time.perf_counter()
        records: Dict[int, RunRecord] = {}
        for span in self.spans:
            if not span.decided:
                continue
            for offset, exc_type in enumerate(span.spec.exceptions):
                if not self._injectable(exc_type):
                    continue
                point = span.base_point + offset + 1
                record = RunRecord(
                    injection_point=point,
                    injected_method=span.spec.key,
                    injected_exception=exc_type.__name__,
                    completed=False,
                    escaped=True,
                    provenance=PROVENANCE_TRACE,
                )
                for method, verdict, difference in span.marks:
                    record.add_mark(method, verdict, difference)
                records[point] = record
        self.seconds += time.perf_counter() - started
        return records

    @property
    def undecided_spans(self) -> int:
        return sum(1 for span in self.spans if not span.decided)
