"""One-trace-many-points detection (trace-derived verdicts).

See :mod:`repro.core.tracepass.deriver` for the derivation rules and
:mod:`repro.core.tracepass.recorder` for the write-trace instrumentation.
"""

from .deriver import PROVENANCE_TRACE, TraceDeriver
from .recorder import TraceRecorder, barrier_covered

__all__ = [
    "PROVENANCE_TRACE",
    "TraceDeriver",
    "TraceRecorder",
    "barrier_covered",
]
