"""Structured campaign telemetry (runs/sec, phase timings, utilization).

The paper reports only end results; a campaign that sweeps hundreds of
injection points at production scale needs observability of its own.
Both detection engines (the sequential :class:`~repro.core.detector.Detector`
and the parallel engine in :mod:`repro.experiments.parallel`) attach a
:class:`CampaignTelemetry` to their :class:`DetectionResult`, and
``save_outcome``/``load_outcome`` round-trip it through ``meta.json``.

The serialized form is a plain dict so that journals and metadata written
by older versions of the code (or hand-edited) load cleanly: every key is
optional and defaults sanely in :meth:`CampaignTelemetry.from_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

__all__ = ["CampaignTelemetry"]

#: Engine identifiers recorded in the telemetry.
ENGINE_SEQUENTIAL = "sequential"
ENGINE_PARALLEL = "parallel"


@dataclass
class CampaignTelemetry:
    """Observability record of one detection campaign.

    Attributes:
        engine: ``"sequential"`` or ``"parallel"``.
        workers: number of worker processes (1 for the sequential engine).
        runs_total: number of runs the campaign plan called for.
        runs_executed: runs actually executed this invocation (resumed
            runs are *not* re-executed and are counted separately).
        runs_resumed: runs skipped because a journal already held their
            results (``--resume``).
        runs_pruned: runs whose records were synthesized by the static
            pruning pass (``--static-prune``) instead of executed.
        runs_derived: runs whose records were derived from the
            instrumented reference trace (``--trace-derive``) instead of
            executed.  A point both passes decide counts as pruned, not
            derived (the static tag wins).
        static_pure_methods: woven methods the static pass proved
            transitively receiver-pure.
        static_seconds: wall time spent in the static pass (analysis,
            stack bookkeeping, record synthesis).
        trace_seconds: wall time spent in the trace pass (stack
            reconciliation, entry captures, verdict derivation).
        trace_writes: attribute writes/deletes the trace recorder's
            write barrier observed during the reference execution.
        trace_captures: state captures the trace pass performed (on its
            own meter — not included in ``state_captures``).
        trace_capture_retries: entry captures the trace pass retried at
            a doubled node budget after the first attempt blew the
            limit (the adaptive capture-budget lift).
        instrumentor: name of the instrumentation backend the profiling
            passes observed through (``weave``, ``monitoring``).
        fingerprint_cache_hits: frame digests served from the
            per-campaign digest cache instead of recomputed.
        fingerprint_cache_misses: frame digests the cache had to
            compute (including uncacheable captures).
        result_cache_hits: whole-campaign results the service layer
            (:mod:`repro.service`) served from its digest-keyed result
            cache instead of re-running the campaign.
        result_cache_misses: campaign submissions the result cache had
            to run for real.
        cache_persist_hits: result-cache lookups answered by an entry
            that was replayed from the on-disk cache journal — i.e.
            campaigns a *restarted* server never re-ran.
        faults_injected: chaos faults the armed
            :class:`~repro.resilience.chaos.FaultPlan` fired during the
            campaign (0 outside ``repro chaos``).
        shard_retries: shard attempts the supervisor restarted after a
            crash, hang, or incomplete fragment (distinct from
            ``retries``, which counts per-point re-runs).
        runs_crashed: points marked ``crashed`` after exhausting retries.
        retries: total retry attempts across all points.
        wall_seconds: end-to-end campaign duration.
        runs_per_second: ``runs_executed / wall_seconds`` (0 when unknown).
        phase_seconds: per-phase wall-clock (``profile`` / ``execute`` /
            ``merge``).
        worker_busy_seconds: per-worker busy time, keyed by worker id
            (the pool worker's pid as a string).
        worker_utilization: mean fraction of the execute phase the
            workers spent busy (1.0 = perfectly utilized).
        state_backend: name of the state backend the campaign compared
            state with (``graph``, ``fingerprint``).
        state_captures: full graph/checkpoint captures performed.
        state_fingerprints: one-pass digest computations performed.
        state_compares: state comparisons (graph diff or digest equality).
        state_seconds: cumulative wall time inside the state layer —
            the "where does sweep time go" number the backend swap targets.
    """

    engine: str = ENGINE_SEQUENTIAL
    workers: int = 1
    runs_total: int = 0
    runs_executed: int = 0
    runs_resumed: int = 0
    runs_pruned: int = 0
    runs_derived: int = 0
    runs_crashed: int = 0
    retries: int = 0
    static_pure_methods: int = 0
    static_seconds: float = 0.0
    trace_seconds: float = 0.0
    trace_writes: int = 0
    trace_captures: int = 0
    trace_capture_retries: int = 0
    instrumentor: str = "weave"
    fingerprint_cache_hits: int = 0
    fingerprint_cache_misses: int = 0
    result_cache_hits: int = 0
    result_cache_misses: int = 0
    cache_persist_hits: int = 0
    faults_injected: int = 0
    shard_retries: int = 0
    wall_seconds: float = 0.0
    runs_per_second: float = 0.0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    worker_busy_seconds: Dict[str, float] = field(default_factory=dict)
    worker_utilization: float = 0.0
    state_backend: str = "graph"
    state_captures: int = 0
    state_fingerprints: int = 0
    state_compares: int = 0
    state_seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a JSON-ready dict (the ``meta.json`` format)."""
        return {
            "engine": self.engine,
            "workers": self.workers,
            "runs_total": self.runs_total,
            "runs_executed": self.runs_executed,
            "runs_resumed": self.runs_resumed,
            "runs_pruned": self.runs_pruned,
            "runs_derived": self.runs_derived,
            "runs_crashed": self.runs_crashed,
            "retries": self.retries,
            "static_pure_methods": self.static_pure_methods,
            "static_seconds": self.static_seconds,
            "trace_seconds": self.trace_seconds,
            "trace_writes": self.trace_writes,
            "trace_captures": self.trace_captures,
            "trace_capture_retries": self.trace_capture_retries,
            "instrumentor": self.instrumentor,
            "fingerprint_cache_hits": self.fingerprint_cache_hits,
            "fingerprint_cache_misses": self.fingerprint_cache_misses,
            "result_cache_hits": self.result_cache_hits,
            "result_cache_misses": self.result_cache_misses,
            "cache_persist_hits": self.cache_persist_hits,
            "faults_injected": self.faults_injected,
            "shard_retries": self.shard_retries,
            "wall_seconds": self.wall_seconds,
            "runs_per_second": self.runs_per_second,
            "phase_seconds": dict(self.phase_seconds),
            "worker_busy_seconds": dict(self.worker_busy_seconds),
            "worker_utilization": self.worker_utilization,
            "state_backend": self.state_backend,
            "state_captures": self.state_captures,
            "state_fingerprints": self.state_fingerprints,
            "state_compares": self.state_compares,
            "state_seconds": self.state_seconds,
        }

    @classmethod
    def from_dict(cls, data: Optional[Mapping[str, Any]]) -> "CampaignTelemetry":
        """Deserialize, tolerating records from older runs.

        Every missing key falls back to the field default, so metadata
        written before a field existed still loads.
        """
        data = data or {}
        return cls(
            engine=str(data.get("engine", ENGINE_SEQUENTIAL)),
            workers=int(data.get("workers", 1)),
            runs_total=int(data.get("runs_total", 0)),
            runs_executed=int(data.get("runs_executed", 0)),
            runs_resumed=int(data.get("runs_resumed", 0)),
            runs_pruned=int(data.get("runs_pruned", 0)),
            runs_derived=int(data.get("runs_derived", 0)),
            runs_crashed=int(data.get("runs_crashed", 0)),
            retries=int(data.get("retries", 0)),
            static_pure_methods=int(data.get("static_pure_methods", 0)),
            static_seconds=float(data.get("static_seconds", 0.0)),
            trace_seconds=float(data.get("trace_seconds", 0.0)),
            trace_writes=int(data.get("trace_writes", 0)),
            trace_captures=int(data.get("trace_captures", 0)),
            trace_capture_retries=int(data.get("trace_capture_retries", 0)),
            instrumentor=str(data.get("instrumentor", "weave")),
            fingerprint_cache_hits=int(data.get("fingerprint_cache_hits", 0)),
            fingerprint_cache_misses=int(
                data.get("fingerprint_cache_misses", 0)
            ),
            result_cache_hits=int(data.get("result_cache_hits", 0)),
            result_cache_misses=int(data.get("result_cache_misses", 0)),
            cache_persist_hits=int(data.get("cache_persist_hits", 0)),
            faults_injected=int(data.get("faults_injected", 0)),
            shard_retries=int(data.get("shard_retries", 0)),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            runs_per_second=float(data.get("runs_per_second", 0.0)),
            phase_seconds={
                str(k): float(v)
                for k, v in dict(data.get("phase_seconds", {})).items()
            },
            worker_busy_seconds={
                str(k): float(v)
                for k, v in dict(data.get("worker_busy_seconds", {})).items()
            },
            worker_utilization=float(data.get("worker_utilization", 0.0)),
            state_backend=str(data.get("state_backend", "graph")),
            state_captures=int(data.get("state_captures", 0)),
            state_fingerprints=int(data.get("state_fingerprints", 0)),
            state_compares=int(data.get("state_compares", 0)),
            state_seconds=float(data.get("state_seconds", 0.0)),
        )

    def summary(self) -> str:
        """Human-readable one-paragraph summary (the CLI's telemetry box)."""
        lines = [
            f"engine={self.engine} workers={self.workers} "
            f"runs={self.runs_executed}/{self.runs_total} "
            f"(resumed={self.runs_resumed}, pruned={self.runs_pruned}, "
            f"derived={self.runs_derived}, crashed={self.runs_crashed}, "
            f"retries={self.retries})",
            f"wall={self.wall_seconds:.3f}s "
            f"throughput={self.runs_per_second:.1f} runs/s",
        ]
        if self.phase_seconds:
            phases = " ".join(
                f"{name}={seconds:.3f}s"
                for name, seconds in sorted(self.phase_seconds.items())
            )
            lines.append(f"phases: {phases}")
        if self.worker_busy_seconds:
            lines.append(
                f"worker utilization: {100.0 * self.worker_utilization:.0f}% "
                f"mean over {len(self.worker_busy_seconds)} worker(s)"
            )
        if self.runs_pruned or self.static_pure_methods:
            lines.append(
                f"static prune: {self.runs_pruned} point(s) synthesized, "
                f"{self.static_pure_methods} method(s) proven pure, "
                f"pass time {self.static_seconds:.3f}s"
            )
        if self.runs_derived or self.trace_captures:
            lines.append(
                f"trace derive: {self.runs_derived} point(s) derived, "
                f"{self.trace_writes} write(s) traced, "
                f"{self.trace_captures} capture(s) "
                f"({self.trace_capture_retries} budget retries), "
                f"pass time {self.trace_seconds:.3f}s"
            )
        if self.instrumentor != "weave":
            lines.append(f"instrumentor: {self.instrumentor}")
        if self.fingerprint_cache_hits or self.fingerprint_cache_misses:
            lines.append(
                f"fingerprint cache: {self.fingerprint_cache_hits} hit(s), "
                f"{self.fingerprint_cache_misses} miss(es)"
            )
        if self.result_cache_hits or self.result_cache_misses:
            line = (
                f"result cache: {self.result_cache_hits} hit(s), "
                f"{self.result_cache_misses} miss(es)"
            )
            if self.cache_persist_hits:
                line += f", {self.cache_persist_hits} from disk"
            lines.append(line)
        if self.faults_injected or self.shard_retries:
            lines.append(
                f"chaos: {self.faults_injected} fault(s) injected, "
                f"{self.shard_retries} shard retr"
                + ("y" if self.shard_retries == 1 else "ies")
            )
        if self.state_captures or self.state_fingerprints or self.state_compares:
            lines.append(
                f"state: backend={self.state_backend} "
                f"captures={self.state_captures} "
                f"fingerprints={self.state_fingerprints} "
                f"compares={self.state_compares} "
                f"time={self.state_seconds:.3f}s"
            )
        return "\n".join(lines)
