"""The detection campaign driver (Step 3 of Figure 1).

The exception injector program is executed repeatedly: the threshold
``InjectionPoint`` is incremented before each execution so that every run
injects exactly one exception, at a different point.  The driver first
performs a *profiling* run (threshold 0, nothing fires) to count the total
number of potential injection points and to collect per-method call
counts, then sweeps the threshold over ``1..N``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Container,
    Iterable,
    List,
    Optional,
    Protocol,
    Tuple,
    Type,
    runtime_checkable,
)

from .analyzer import MethodSpec
from .exceptions import InjectionAbort, is_injected
from .injection import InjectionCampaign
from .instrument import Instrumentor, WeavingInstrumentor
from .runlog import RunLog, RunRecord
from .state import FingerprintCache, get_backend
from .staticpass import StaticPruner, call_through_boundary
from .telemetry import CampaignTelemetry
from .tracepass import TraceDeriver, TraceRecorder

__all__ = [
    "Program",
    "Detector",
    "DetectionResult",
    "DetectionError",
    "plan_points",
    "run_injection_point",
]


@runtime_checkable
class Program(Protocol):
    """A re-runnable test program.

    Every invocation must execute the same deterministic workload on
    *fresh* state (construct the objects inside the call), because the
    detection phase re-executes the program once per injection point.
    """

    name: str

    def __call__(self) -> None: ...


class DetectionError(RuntimeError):
    """Raised when the test program misbehaves during a campaign."""


@dataclass
class DetectionResult:
    """Outcome of one detection campaign.

    ``telemetry`` is observability metadata (engine, timings, worker
    utilization) and intentionally not part of the scientific result:
    two campaigns over the same program are *equivalent* when their
    ``log``, ``total_points``, ``runs_executed`` and ``genuine_failures``
    agree, regardless of which engine produced them or how fast.
    """

    program: str
    log: RunLog
    total_points: int
    runs_executed: int
    genuine_failures: List[str] = field(default_factory=list)
    telemetry: Optional[CampaignTelemetry] = None

    @property
    def total_injections(self) -> int:
        """Number of runs in which an exception was injected (Table 1)."""
        return self.log.total_injections()


def plan_points(
    total: int,
    *,
    stride: int = 1,
    injection_points: Optional[Iterable[int]] = None,
    baseline_run: bool = True,
    pruned: Optional[Container[int]] = None,
) -> List[int]:
    """The ordered list of thresholds a campaign will sweep.

    Shared by the sequential and parallel engines so both execute the
    *same* plan: points ``1..total`` thinned by ``stride`` (or an explicit
    point list), plus the trailing baseline run at ``total + 1`` that
    observes genuine (non-injected) failures without injecting anything.

    Args:
        pruned: points the static pass decided without execution
            (``repro.core.staticpass``); they are dropped from the plan
            so both engines skip them the same way.  The baseline run is
            never pruned — genuine failures are only observable
            dynamically.
    """
    if stride < 1:
        raise ValueError("stride must be >= 1")
    if injection_points is None:
        points = list(range(1, total + 1, stride))
    else:
        points = list(injection_points)
    if pruned is not None:
        points = [point for point in points if point not in pruned]
    if baseline_run:
        points.append(total + 1)
    return points


def run_injection_point(
    program: Program,
    campaign: InjectionCampaign,
    injection_point: int,
    *,
    reraise: Tuple[Type[BaseException], ...] = (),
) -> Tuple[RunRecord, Optional[str]]:
    """Execute one injection run; return ``(record, genuine_failure)``.

    This is the single-run kernel both engines share: begin a run at the
    given threshold, execute the program, swallow the injected abort, and
    classify anything else that escapes as a *genuine* failure (returned
    as the formatted string the campaign accumulates).

    Args:
        reraise: exception types to re-raise instead of recording — the
            parallel engine passes its timeout exception here so a timed
            out run is retried rather than logged as a genuine failure.

    When the campaign uses a lossy-diff backend (fingerprints) and the
    run produced non-atomic marks, the run is transparently re-executed
    under the graph backend and the refined record replaces the lossy
    one: digests can witness *that* state changed but not *where*, and
    the run log's ``difference`` strings are part of the deliverable.
    Programs are re-runnable by contract (:class:`Program`), so the
    refinement run observes the identical execution — the emitted log is
    bit-identical to an all-graph campaign's.  Atomic-only runs (the vast
    majority in a sweep, Figure 5) never pay for a second execution.
    """
    record = campaign.begin_run(injection_point)
    completed = False
    escaped = False
    failure: Optional[str] = None
    try:
        program()
        completed = True
    except InjectionAbort:
        pass
    except BaseException as exc:
        if reraise and isinstance(exc, reraise):
            raise
        escaped = is_injected(exc)
        if not escaped:
            # A genuine (non-injected) failure escaping the program is a
            # robustness finding of its own; record and go on.
            failure = f"point={injection_point}: {type(exc).__name__}: {exc}"
    finally:
        campaign.end_run(completed=completed, escaped=escaped)
    if campaign.backend.lossy_diff and record.first_nonatomic() is not None:
        return _refine_run(program, campaign, injection_point, record, reraise)
    return record, failure


def _refine_run(
    program: Program,
    campaign: InjectionCampaign,
    injection_point: int,
    lossy_record: RunRecord,
    reraise: Tuple[Type[BaseException], ...],
) -> Tuple[RunRecord, Optional[str]]:
    """Re-execute one run under the graph backend for full diagnostics."""
    if campaign.log.runs and campaign.log.runs[-1] is lossy_record:
        campaign.log.runs.pop()
    saved_backend = campaign.backend
    campaign.backend = get_backend("graph")
    try:
        return run_injection_point(
            program, campaign, injection_point, reraise=reraise
        )
    finally:
        campaign.backend = saved_backend


class Detector:
    """Runs the injector program once per injection point.

    Args:
        program: the (already woven) test program.
        campaign: the campaign whose wrappers instrument the program's
            classes.
        stride: sample every *stride*-th injection point instead of all of
            them.  The paper sweeps every point; a stride > 1 trades
            completeness for speed and is used by some benchmarks.
        static_prune: run the static purity pre-analysis
            (``repro.core.staticpass``) over the profiling run and
            synthesize the records of provably decided points instead of
            executing them.
        trace_derive: instrument the profiling run (``repro.core.tracepass``)
            and derive the records of every trace-decidable point from
            that one execution; only trace-undecidable points run for
            real.  Composes with ``static_prune`` on the same profiling
            run (statically decided points win the provenance tag).
        woven_specs: the campaign's woven method specs — the universe the
            static pass analyzes and the classes the trace pass puts
            write barriers on.  Optional; without it only points whose
            whole stack context is wrapper-free can be pruned.
        instrumentor: the event substrate the profiling passes observe
            through (:mod:`repro.core.instrument`).  Defaults to a
            weaving instrumentor over this campaign; callers that wove
            through an instrumentor pass it in so observation rides the
            same backend.
        fingerprint_cache: memoize frame digests between barriered
            writes when the campaign's backend supports it
            (fingerprint sweeps only; output is bit-identical either
            way, this is purely a hot-path switch).
    """

    def __init__(
        self,
        program: Program,
        campaign: InjectionCampaign,
        *,
        stride: int = 1,
        progress: Optional[Callable[[int, int], None]] = None,
        static_prune: bool = False,
        trace_derive: bool = False,
        woven_specs: Optional[List[MethodSpec]] = None,
        instrumentor: Optional[Instrumentor] = None,
        fingerprint_cache: bool = True,
    ) -> None:
        """
        Args:
            progress: optional ``(runs_done, runs_total)`` callback invoked
                after every run — long campaigns (large workloads, scale >
                1) are otherwise silent for minutes.
        """
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.program = program
        self.campaign = campaign
        self.stride = stride
        self.progress = progress
        self.static_prune = static_prune
        self.trace_derive = trace_derive
        self.woven_specs = woven_specs
        self.instrumentor = instrumentor
        self.fingerprint_cache = fingerprint_cache

    def profile(self) -> int:
        """Count injection points and record call counts (no injection)."""
        self.campaign.begin_profile()
        try:
            call_through_boundary(self.program)
        except BaseException as exc:
            raise DetectionError(
                f"program {self.program.name!r} failed during profiling: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        finally:
            total = self.campaign.end_profile()
        return total

    def detect(
        self,
        *,
        injection_points: Optional[Iterable[int]] = None,
        baseline_run: bool = True,
    ) -> DetectionResult:
        """Run the full campaign and return its result.

        Args:
            injection_points: explicit points to inject at; defaults to
                every point discovered by the profiling run (optionally
                thinned by ``stride``).
            baseline_run: additionally execute the program once with the
                threshold beyond the last point.  Nothing is injected, but
                the wrappers still capture and compare state, so methods
                that raise *genuine* exceptions are marked too (Listing 1
                intercepts all exceptions, not only injected ones).  Runs
                that abort at an early injection never reach later genuine
                failures; the baseline run observes them.
        """
        started = time.perf_counter()
        instrumentor = self.instrumentor
        if instrumentor is None:
            # Observation-only adapter over the campaign's slots; the
            # program was woven by the caller (any factory), so this
            # instrumentor never instruments, it only dispatches events.
            instrumentor = WeavingInstrumentor(self.campaign)
        pruner: Optional[StaticPruner] = None
        deriver: Optional[TraceDeriver] = None
        recorder: Optional[TraceRecorder] = None
        woven_classes = {
            spec.owner for spec in self.woven_specs or [] if spec.owner
        }
        if self.static_prune:
            pruner = StaticPruner(self.woven_specs)
        observers: List[object] = []
        if self.trace_derive:
            recorder = TraceRecorder()
            instrumentor.start_write_trace(recorder, woven_classes)
            deriver = TraceDeriver(
                self.campaign, pruner=pruner, recorder=recorder
            )
            # The deriver chains the pruner's observations internally,
            # so composed passes still share one event subscription.
            observers.append(deriver)
        elif pruner is not None:
            observers.append(pruner)
        for observer in observers:
            instrumentor.subscribe(observer)
        if observers:
            instrumentor.attach()
        try:
            total = self.profile()
        finally:
            if instrumentor.attached:
                instrumentor.detach()
            for observer in observers:
                instrumentor.unsubscribe(observer)
            if recorder is not None:
                instrumentor.stop_write_trace(recorder)
        prune_map = pruner.prune_map() if pruner is not None else {}
        derive_map = deriver.derive_map() if deriver is not None else {}
        # Statically decided points win the provenance tag; the records
        # agree modulo provenance whenever both passes decide a point.
        decided = dict(derive_map)
        decided.update(prune_map)
        profiled = time.perf_counter()
        points = plan_points(
            total,
            stride=self.stride,
            injection_points=injection_points,
            baseline_run=baseline_run,
        )
        executable = set(
            plan_points(
                total,
                stride=self.stride,
                injection_points=injection_points,
                baseline_run=baseline_run,
                pruned=decided,
            )
        )
        genuine_failures: List[str] = []
        executed = 0
        pruned = 0
        derived = 0
        done = 0
        cache: Optional[FingerprintCache] = None
        if (
            self.fingerprint_cache
            and woven_classes
            and self.campaign.digest_cache is None
            and getattr(self.campaign.backend, "supports_digest_cache", False)
        ):
            # Memoize frame digests across the sweep: the write barriers
            # invalidate on any attribute write to a woven class, so the
            # cached digest is only ever served when it is provably the
            # digest the backend would recompute (bit-identical output).
            cache = FingerprintCache()
            cache.start(woven_classes)
            self.campaign.digest_cache = cache
        try:
            for injection_point in points:
                if injection_point in executable:
                    _, failure = run_injection_point(
                        self.program, self.campaign, injection_point
                    )
                    if failure is not None:
                        genuine_failures.append(failure)
                    executed += 1
                else:
                    # Decided without execution: append the synthesized
                    # record in plan order, bypassing begin_run.
                    self.campaign.log.runs.append(decided[injection_point])
                    if injection_point in prune_map:
                        pruned += 1
                    else:
                        derived += 1
                done += 1
                if self.progress is not None:
                    self.progress(done, len(points))
        finally:
            if cache is not None:
                self.campaign.digest_cache = None
                cache.stop()
        finished = time.perf_counter()
        wall = finished - started
        state_stats = self.campaign.state_stats
        telemetry = CampaignTelemetry(
            engine="sequential",
            workers=1,
            runs_total=len(points),
            runs_executed=executed,
            runs_pruned=pruned,
            runs_derived=derived,
            wall_seconds=wall,
            runs_per_second=(executed / wall) if wall > 0 else 0.0,
            phase_seconds={
                "profile": profiled - started,
                "execute": finished - profiled,
            },
            state_backend=self.campaign.backend.name,
            state_captures=state_stats.captures,
            state_fingerprints=state_stats.fingerprints,
            state_compares=state_stats.compares,
            state_seconds=state_stats.seconds,
            static_pure_methods=(
                pruner.pure_method_count if pruner is not None else 0
            ),
            static_seconds=pruner.seconds if pruner is not None else 0.0,
            trace_seconds=deriver.seconds if deriver is not None else 0.0,
            trace_writes=(
                recorder.recorded_writes if recorder is not None else 0
            ),
            trace_captures=(
                deriver.stats.captures if deriver is not None else 0
            ),
            trace_capture_retries=(
                deriver.capture_retries if deriver is not None else 0
            ),
            instrumentor=instrumentor.name,
            fingerprint_cache_hits=cache.hits if cache is not None else 0,
            fingerprint_cache_misses=cache.misses if cache is not None else 0,
        )
        return DetectionResult(
            program=self.program.name,
            log=self.campaign.log,
            total_points=total,
            runs_executed=len(points),
            genuine_failures=genuine_failures,
            telemetry=telemetry,
        )


@dataclass
class CallableProgram:
    """Adapter turning a plain callable into a :class:`Program`."""

    name: str
    body: Callable[[], None]

    def __call__(self) -> None:
        self.body()
