"""The detection campaign driver (Step 3 of Figure 1).

The exception injector program is executed repeatedly: the threshold
``InjectionPoint`` is incremented before each execution so that every run
injects exactly one exception, at a different point.  The driver first
performs a *profiling* run (threshold 0, nothing fires) to count the total
number of potential injection points and to collect per-method call
counts, then sweeps the threshold over ``1..N``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Protocol, runtime_checkable

from .exceptions import InjectionAbort, is_injected
from .injection import InjectionCampaign
from .runlog import RunLog

__all__ = ["Program", "Detector", "DetectionResult", "DetectionError"]


@runtime_checkable
class Program(Protocol):
    """A re-runnable test program.

    Every invocation must execute the same deterministic workload on
    *fresh* state (construct the objects inside the call), because the
    detection phase re-executes the program once per injection point.
    """

    name: str

    def __call__(self) -> None: ...


class DetectionError(RuntimeError):
    """Raised when the test program misbehaves during a campaign."""


@dataclass
class DetectionResult:
    """Outcome of one detection campaign."""

    program: str
    log: RunLog
    total_points: int
    runs_executed: int
    genuine_failures: List[str] = field(default_factory=list)

    @property
    def total_injections(self) -> int:
        """Number of runs in which an exception was injected (Table 1)."""
        return self.log.total_injections()


class Detector:
    """Runs the injector program once per injection point.

    Args:
        program: the (already woven) test program.
        campaign: the campaign whose wrappers instrument the program's
            classes.
        stride: sample every *stride*-th injection point instead of all of
            them.  The paper sweeps every point; a stride > 1 trades
            completeness for speed and is used by some benchmarks.
    """

    def __init__(
        self,
        program: Program,
        campaign: InjectionCampaign,
        *,
        stride: int = 1,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        """
        Args:
            progress: optional ``(runs_done, runs_total)`` callback invoked
                after every run — long campaigns (large workloads, scale >
                1) are otherwise silent for minutes.
        """
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.program = program
        self.campaign = campaign
        self.stride = stride
        self.progress = progress

    def profile(self) -> int:
        """Count injection points and record call counts (no injection)."""
        self.campaign.begin_profile()
        try:
            self.program()
        except BaseException as exc:
            raise DetectionError(
                f"program {self.program.name!r} failed during profiling: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        finally:
            total = self.campaign.end_profile()
        return total

    def detect(
        self,
        *,
        injection_points: Optional[Iterable[int]] = None,
        baseline_run: bool = True,
    ) -> DetectionResult:
        """Run the full campaign and return its result.

        Args:
            injection_points: explicit points to inject at; defaults to
                every point discovered by the profiling run (optionally
                thinned by ``stride``).
            baseline_run: additionally execute the program once with the
                threshold beyond the last point.  Nothing is injected, but
                the wrappers still capture and compare state, so methods
                that raise *genuine* exceptions are marked too (Listing 1
                intercepts all exceptions, not only injected ones).  Runs
                that abort at an early injection never reach later genuine
                failures; the baseline run observes them.
        """
        total = self.profile()
        if injection_points is None:
            points: List[int] = list(range(1, total + 1, self.stride))
        else:
            points = list(injection_points)
        if baseline_run:
            points.append(total + 1)
        genuine_failures: List[str] = []
        runs = 0
        for injection_point in points:
            record = self.campaign.begin_run(injection_point)
            completed = False
            escaped = False
            try:
                self.program()
                completed = True
            except InjectionAbort:
                pass
            except BaseException as exc:
                escaped = is_injected(exc)
                if not escaped:
                    # A genuine (non-injected) failure escaping the program
                    # is a robustness finding of its own; record and go on.
                    genuine_failures.append(
                        f"point={injection_point}: {type(exc).__name__}: {exc}"
                    )
            finally:
                self.campaign.end_run(completed=completed, escaped=escaped)
            runs += 1
            if self.progress is not None:
                self.progress(runs, len(points))
        return DetectionResult(
            program=self.program.name,
            log=self.campaign.log,
            total_points=total,
            runs_executed=runs,
            genuine_failures=genuine_failures,
        )


@dataclass
class CallableProgram:
    """Adapter turning a plain callable into a :class:`Program`."""

    name: str
    body: Callable[[], None]

    def __call__(self) -> None:
        self.body()
