"""AST-based receiver-purity effect analysis (the static half).

A woven method is *syntactically effect-free* when its body provably
cannot mutate any object that existed before the call: no attribute,
subscript or slot writes (so nothing reachable from ``self`` or from a
mutable argument can change), no augmented assignment (``x += y`` can
mutate a shared object in place through a local alias), no ``del``, no
``global``/``nonlocal``, no exception handlers or context managers (a
handler could swallow an injected exception and resume with effects),
and no calls except

* a short safelist of read-only builtins (``len``, ``isinstance``, …),
  rejected when the name is shadowed by any local binding;
* ``self.<name>(...)`` — recorded as a call edge and resolved by the
  call-graph closure (:mod:`.callgraph`) against the whole woven
  universe; and
* construction of a *benign exception type*: a ``Name`` that resolves in
  the function's globals (or builtins) to a ``BaseException`` subclass
  that inherits ``__init__``/``__new__`` straight from the builtin
  exception hierarchy.  Building and raising a fresh exception cannot
  mutate pre-existing state.

Everything else — attribute-chain calls, free-function calls, dynamic
dispatch through locals, ``setattr``, comprehensible-but-unproven code —
makes the method *unprovable* and it simply stays dynamic.  The analysis
is deliberately one-sided: a false "impure" costs one dynamic run, a
false "pure" would corrupt the run log, so every default answers
"impure".

Trusted assumptions (documented in ``docs/GUIDE.md``): read-protocol
dunders invoked implicitly by allowed syntax (``__eq__``, ``__lt__``,
``__iter__``, ``__getitem__``, ``__repr__``, …) are effect-free, and the
driver workload does not monkey-patch woven instances (shadowing a woven
method with an instance attribute); shadowing *inside* the analyzed
universe is detected and poisons the name.
"""

from __future__ import annotations

import ast
import builtins
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Optional, Set, Tuple

from ..analyzer import KIND_CONSTRUCTOR, KIND_METHOD, MethodSpec

__all__ = [
    "EffectReport",
    "PURE_BUILTINS",
    "function_ast",
    "syntactic_effects",
    "unwrap_original",
]

#: Builtins whose calls are trusted not to mutate their arguments'
#: pre-existing state (read-only protocol dunders are trusted too, see
#: the module docstring).
PURE_BUILTINS = frozenset(
    {
        "abs",
        "bool",
        "chr",
        "float",
        "int",
        "isinstance",
        "issubclass",
        "len",
        "max",
        "min",
        "ord",
        "range",
        "repr",
        "str",
    }
)

#: Names whose very appearance defeats static reasoning about attribute
#: writes anywhere in the universe (dynamic attribute surgery).
_OPAQUE_NAMES = frozenset({"delattr", "eval", "exec", "globals", "setattr", "vars"})


@dataclass
class EffectReport:
    """Verdict of the syntactic scan for one method."""

    key: str
    #: True when the body alone is provably effect-free (call edges are
    #: resolved later by the closure).
    clean: bool
    #: Why the method is unprovable (first violation found), else None.
    reason: Optional[str] = None
    #: ``self.<name>`` call edges to resolve against the woven universe.
    self_calls: Set[str] = field(default_factory=set)
    #: Attribute names this method stores/deletes anywhere in its body —
    #: collected even for unclean methods, because an instance attribute
    #: can shadow a same-named method for *other* callers.
    attr_stores: Set[str] = field(default_factory=set)
    #: True when the method mentions setattr/vars/exec/… or its source
    #: is unavailable: attribute writes become statically invisible.
    opaque: bool = False


def unwrap_original(func):
    """Peel injection/atomicity wrappers back to the original function."""
    seen = set()
    while hasattr(func, "_repro_wrapped") and id(func) not in seen:
        seen.add(id(func))
        func = func._repro_wrapped
    return func


def function_ast(func) -> Optional[ast.FunctionDef]:
    """The ``FunctionDef`` node of *func*, or None when unprovable."""
    func = unwrap_original(func)
    try:
        source = inspect.getsource(func)
    except (OSError, TypeError):
        return None
    try:
        tree = ast.parse(textwrap.dedent(source))
    except (SyntaxError, ValueError):
        return None
    if not tree.body or not isinstance(tree.body[0], ast.FunctionDef):
        return None
    return tree.body[0]


def _benign_exception_type(name: str, func) -> bool:
    """True when *name* resolves to an exception class whose construction
    is effect-free (no user ``__init__``/``__new__`` below the builtins)."""
    func = unwrap_original(func)
    namespace = getattr(func, "__globals__", {})
    target = namespace.get(name, getattr(builtins, name, None))
    if not (isinstance(target, type) and issubclass(target, BaseException)):
        return False
    for klass in target.__mro__:
        if getattr(builtins, klass.__name__, None) is klass:
            # Reached the builtin exception hierarchy: its constructors
            # only store their arguments.  (CPython materializes
            # __init__/__new__ in every builtin exception's own dict, so
            # the vars() check below must not apply to them.)
            return True
        if "__init__" in vars(klass) or "__new__" in vars(klass):
            return False
    return True


def _bound_names(node: ast.FunctionDef) -> Set[str]:
    """Every name the function binds: parameters plus all Name stores."""
    names: Set[str] = set()
    args = node.args
    for group in (
        getattr(args, "posonlyargs", []),
        args.args,
        args.kwonlyargs,
    ):
        for arg in group:
            names.add(arg.arg)
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and not isinstance(child.ctx, ast.Load):
            names.add(child.id)
    return names


_GUARD_STATEMENTS = tuple(
    getattr(ast, name)
    for name in ("Try", "TryStar", "With", "AsyncWith")
    if hasattr(ast, name)
)


class _BodyScan(ast.NodeVisitor):
    """Walks a method body and accumulates the :class:`EffectReport`."""

    def __init__(self, receiver: Optional[str], bound: Set[str], func) -> None:
        self.receiver = receiver
        self.bound = bound
        self.func = func
        self.clean = True
        self.reason: Optional[str] = None
        self.self_calls: Set[str] = set()

    def fail(self, node: ast.AST, why: str) -> None:
        if self.clean:
            self.clean = False
            line = getattr(node, "lineno", "?")
            self.reason = f"line {line}: {why}"

    # -- bindings ----------------------------------------------------

    def _check_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(element)
            return
        if isinstance(target, ast.Starred):
            self._check_target(target.value)
            return
        self.fail(target, "assignment to attribute/subscript")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_target(node.target)
        if node.value is not None:
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # Even on a local name: += dispatches __iadd__, which mutates in
        # place when the local aliases a shared mutable object.
        self.fail(node, "augmented assignment")

    def visit_Delete(self, node: ast.Delete) -> None:
        self.fail(node, "del statement")

    def visit_Global(self, node: ast.Global) -> None:
        self.fail(node, "global declaration")

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self.fail(node, "nonlocal declaration")

    # -- control flow that can swallow or interleave exceptions ------

    def visit_Import(self, node: ast.Import) -> None:
        self.fail(node, "import")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.fail(node, "import")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.fail(node, "nested function definition")

    def visit_AsyncFunctionDef(self, node) -> None:
        self.fail(node, "async function")

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.fail(node, "nested class definition")

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.fail(node, "lambda")

    def visit_Yield(self, node: ast.Yield) -> None:
        self.fail(node, "yield")

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self.fail(node, "yield from")

    def visit_Await(self, node: ast.Await) -> None:
        self.fail(node, "await")

    def visit_For(self, node: ast.For) -> None:
        self._check_target(node.target)
        self.visit(node.iter)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_AsyncFor(self, node) -> None:
        self.fail(node, "async for")

    # -- stores through non-Name targets ------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if not isinstance(node.ctx, ast.Load):
            self.fail(node, "attribute write")
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if not isinstance(node.ctx, ast.Load):
            self.fail(node, "subscript write")
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        target = node.func
        if isinstance(target, ast.Name):
            name = target.id
            if name in self.bound:
                self.fail(node, f"call to locally bound name {name!r}")
            elif name in PURE_BUILTINS:
                pass
            elif _benign_exception_type(name, self.func):
                pass
            else:
                self.fail(node, f"call into unanalyzed code ({name})")
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and self.receiver is not None
            and target.value.id == self.receiver
        ):
            self.self_calls.add(target.attr)
        else:
            self.fail(node, "call into unanalyzed code")
        for arg in node.args:
            self.visit(arg)
        for keyword in node.keywords:
            self.visit(keyword.value)

    def generic_visit(self, node: ast.AST) -> None:
        if isinstance(node, _GUARD_STATEMENTS):
            self.fail(node, "exception handler or context manager")
            return
        super().generic_visit(node)


def _write_profile(node: Optional[ast.FunctionDef]) -> Tuple[Set[str], bool]:
    """(attribute names stored anywhere, opaque?) — for shadow detection."""
    if node is None:
        return set(), True
    stores: Set[str] = set()
    opaque = False
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and not isinstance(
            child.ctx, ast.Load
        ):
            stores.add(child.attr)
        elif isinstance(child, ast.Name) and child.id in _OPAQUE_NAMES:
            opaque = True
    return stores, opaque


def syntactic_effects(spec: MethodSpec) -> EffectReport:
    """Scan one woven method; call edges are left for the closure."""
    node = function_ast(spec.func)
    stores, opaque = _write_profile(node)
    if node is None:
        return EffectReport(
            key=spec.key,
            clean=False,
            reason="source unavailable",
            attr_stores=stores,
            opaque=opaque,
        )

    receiver: Optional[str] = None
    if spec.kind in (KIND_METHOD, KIND_CONSTRUCTOR):
        positional = getattr(node.args, "posonlyargs", []) or node.args.args
        if positional:
            receiver = positional[0].arg

    bound = _bound_names(node)
    scan = _BodyScan(receiver, bound - ({receiver} if receiver else set()), spec.func)
    if receiver is not None:
        # A rebound receiver makes self-call resolution meaningless.
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Name)
                and child.id == receiver
                and not isinstance(child.ctx, ast.Load)
            ):
                scan.fail(child, "receiver rebound")
                break
    for statement in node.body:
        scan.visit(statement)
    return EffectReport(
        key=spec.key,
        clean=scan.clean,
        reason=scan.reason,
        self_calls=scan.self_calls,
        attr_stores=stores,
        opaque=opaque,
    )
