"""Stack-certified pruning of injection points (the dynamic half).

The profiling run (threshold 0, Listing 1) already executes every
injection point once.  With a :class:`StaticPruner` attached, the
campaign reports each wrapper entry's base ``Point`` value together with
the live call stack, and the pruner decides — per entry — whether the
dynamic run for each of its points can be *synthesized* instead of
executed:

1. every enclosing injection-wrapper frame belongs to a method proven
   transitively receiver-pure (:mod:`.callgraph`) — its before/after
   state comparison is therefore guaranteed equal, i.e. an ``atomic``
   mark, because nothing the method executed between its own entry and
   the injection moment can have mutated reachable state;
2. every other frame between the entry and the profile boundary is
   exception-transparent at its suspended line (:mod:`.transparency`) —
   the injected exception provably reaches the top uncaught and
   untransformed, touching exactly the enclosing wrappers;
3. no wrapped call exited via an exception earlier in the profiling run
   (``escape_observer``): a genuine failure the workload catches leaves
   an atomic/non-atomic mark in every detection run that executes past
   it, and that mark's verdict needs a real before/after state
   comparison — so every later point stays dynamic; and
4. the exception type passes an injectability probe: ``make_injected``
   can actually tag an instance (``__slots__`` types that reject the
   tag would escape as *genuine* failures, not injected ones).

The injected method's own body never runs (the wrapper raises at entry,
before capture), so its purity is irrelevant; what must be certified is
the *context* of the point.  Determinism of the test program
(:class:`~repro.core.detector.Program` contract) guarantees the
detection run for that point would meet the identical stack.  Anything
unprovable — an unidentifiable wrapper frame, a frame without source, a
missing boundary — leaves the point dynamic, so pruning is sound by
construction.

The synthesized :class:`~repro.core.runlog.RunRecord` carries
``provenance="static"``; dynamically executed runs carry ``"dynamic"``.
Pruned and unpruned sweeps agree bit-for-bit on everything else, which
is exactly what :func:`log_json_without_provenance` lets benchmarks and
the fuzz harness assert.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..analyzer import MethodSpec
from ..exceptions import is_injected, make_injected
from ..injection import INJ_WRAPPER_CODE, InjectionCampaign
from ..instrument.protocol import EventObserver
from ..runlog import ATOMIC, RunLog, RunRecord
from .callgraph import PurityAnalysis, transitive_purity
from .transparency import TransparencyIndex

__all__ = [
    "PROVENANCE_DYNAMIC",
    "PROVENANCE_STATIC",
    "StaticPruner",
    "call_through_boundary",
    "log_json_without_provenance",
    "nested_boundary",
]

PROVENANCE_DYNAMIC = "dynamic"
PROVENANCE_STATIC = "static"


def call_through_boundary(program) -> None:
    """Invoke the test program under the profile-boundary sentinel.

    The pruner's stack walk terminates at this function's code object;
    frames below it (engine, test runner) are harness machinery the
    detection run reproduces identically and need no certificate.  Both
    engines route their profiling run through here.
    """
    return program()


PROFILE_BOUNDARY_CODE = call_through_boundary.__code__


def nested_boundary(boundary_frame) -> bool:
    """True when another profiling-boundary frame lies *outward* of
    *boundary_frame*.

    Stack walks stop at the first boundary frame they meet.  When
    subject code itself calls :func:`call_through_boundary`, that inner
    boundary truncates the walk: the real enclosing wrappers and
    suspended lines sit above it and would silently go missing, turning
    a "complete" walk into an unsound one.  Walkers call this at their
    stopping frame and treat the walk as unusable when it returns True.
    """
    outer = boundary_frame.f_back
    try:
        while outer is not None:
            if outer.f_code is PROFILE_BOUNDARY_CODE:
                return True
            outer = outer.f_back
        return False
    finally:
        del outer


@dataclass(frozen=True)
class _Span:
    """One wrapper entry observed during profiling.

    The entry's repertoire occupies points ``base_point + 1 ..
    base_point + len(spec.exceptions)``; all of them share this stack
    observation.
    """

    base_point: int
    spec: MethodSpec
    #: Enclosing injection-wrapper methods, innermost first — the mark
    #: order of the dynamic run.
    enclosing: Tuple[MethodSpec, ...]
    #: (code object, suspended line) of every other frame up to the
    #: boundary.
    frames: Tuple[Tuple[Any, int], ...]
    #: False when the walk hit the top without finding the boundary or
    #: met a wrapper frame it could not identify.
    usable: bool
    #: True when a genuine failure escaped some wrapped call earlier in
    #: the profiling run — the detection run for this point would carry
    #: that failure's mark, which only execution can produce.
    tainted: bool = False


class StaticPruner(EventObserver):
    """Combines purity, transparency and the stack observations."""

    def __init__(self, woven_specs: Optional[List[MethodSpec]] = None) -> None:
        started = time.perf_counter()
        self.purity: PurityAnalysis = transitive_purity(list(woven_specs or []))
        self.transparency = TransparencyIndex()
        self.spans: List[_Span] = []
        self._probe: Dict[type, bool] = {}
        self._escape_seen = False
        self.seconds = time.perf_counter() - started

    # -- observation (campaign hook) ----------------------------------

    def observe(self, spec: MethodSpec, base_point: int) -> None:
        """``InjectionCampaign.point_observer`` — records one entry."""
        frame = sys._getframe(2)  # skip observe() and the wrapper itself
        try:
            self.observe_frame(spec, base_point, frame)
        finally:
            del frame

    def observe_frame(self, spec: MethodSpec, base_point: int, start) -> None:
        """Record one entry, walking the stack from *start* (the frame
        that called the injection wrapper).  The trace pass chains here
        with an explicit frame so both passes share one observer slot."""
        frame = start
        enclosing: List[MethodSpec] = []
        frames: List[Tuple[Any, int]] = []
        usable = True
        complete = False
        try:
            while frame is not None:
                code = frame.f_code
                if code is PROFILE_BOUNDARY_CODE:
                    # An inner boundary (subject code calling
                    # call_through_boundary itself) hides the real
                    # enclosing context above it — unusable then.
                    complete = not nested_boundary(frame)
                    break
                if code is INJ_WRAPPER_CODE:
                    enclosing_spec = frame.f_locals.get("spec")
                    if isinstance(enclosing_spec, MethodSpec):
                        enclosing.append(enclosing_spec)
                    else:
                        usable = False
                else:
                    frames.append((code, frame.f_lineno))
                frame = frame.f_back
        finally:
            del frame
        self.spans.append(
            _Span(
                base_point=base_point,
                spec=spec,
                enclosing=tuple(enclosing),
                frames=tuple(frames),
                usable=usable and complete,
                tainted=self._escape_seen,
            )
        )

    def observe_escape(self, spec: MethodSpec) -> None:
        """``InjectionCampaign.escape_observer`` — a genuine failure
        escaped a wrapped call; every later point stays dynamic."""
        self._escape_seen = True

    def attach(self, campaign: InjectionCampaign) -> None:
        campaign.point_observer = self.observe
        campaign.escape_observer = self.observe_escape

    def detach(self, campaign: InjectionCampaign) -> None:
        campaign.point_observer = None
        campaign.escape_observer = None

    # -- instrumentor-protocol observer hooks --------------------------
    #
    # The dispatch layer hands over the wrapper frame explicitly (the
    # extra hop would break the raw slots' sys._getframe offsets).

    def on_call_enter(self, spec: MethodSpec, base_point: int, frame) -> None:
        self.observe_frame(spec, base_point, frame.f_back)

    def on_escape(self, spec: MethodSpec, frame) -> None:
        self.observe_escape(spec)

    # -- decision ------------------------------------------------------

    def _injectable(self, exc_type: type) -> bool:
        cached = self._probe.get(exc_type)
        if cached is None:
            try:
                probe = make_injected(
                    exc_type, method="<probe>", injection_point=0
                )
                cached = is_injected(probe)
            except Exception:
                cached = False
            self._probe[exc_type] = cached
        return cached

    def _span_prunable(self, span: _Span) -> bool:
        if not span.usable or span.tainted:
            return False
        for enclosing in span.enclosing:
            if not self.purity.is_pure(enclosing.key):
                return False
        for code, lineno in span.frames:
            if not self.transparency.transparent_at(code, lineno):
                return False
        return True

    def prune_map(self) -> Dict[int, RunRecord]:
        """Synthesized records, keyed by injection point."""
        started = time.perf_counter()
        records: Dict[int, RunRecord] = {}
        for span in self.spans:
            if not self._span_prunable(span):
                continue
            for offset, exc_type in enumerate(span.spec.exceptions):
                if not self._injectable(exc_type):
                    continue
                point = span.base_point + offset + 1
                record = RunRecord(
                    injection_point=point,
                    injected_method=span.spec.key,
                    injected_exception=exc_type.__name__,
                    completed=False,
                    escaped=True,
                    provenance=PROVENANCE_STATIC,
                )
                for enclosing in span.enclosing:
                    record.add_mark(enclosing.key, ATOMIC)
                records[point] = record
        self.seconds += time.perf_counter() - started
        return records

    @property
    def pure_method_count(self) -> int:
        return len(self.purity.pure)


def log_json_without_provenance(log: RunLog) -> str:
    """The log's JSON with per-run provenance erased.

    A pruned and an unpruned sweep differ *only* in which runs carry
    ``"static"``; equality of this projection is the differential
    oracle's bit-identicality check.
    """
    payload = json.loads(log.to_json())
    for run in payload.get("runs", []):
        run.pop("provenance", None)
    return json.dumps(payload, indent=2, sort_keys=True)
