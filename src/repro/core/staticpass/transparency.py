"""Line-level exception-transparency certificates for stack frames.

A pruned injection point must reproduce the dynamic run's record without
executing it, and the record depends on what the in-flight exception
meets on its way out: a frame suspended *inside* a ``try`` (or ``with``)
statement may catch or transform it, changing marks, escape status and
everything downstream.  A frame is certified *exception-transparent* at
a given line when its source is available and the line falls outside
every ``try``/``with`` span of the enclosing code block — then the only
thing the frame can do with a propagating exception is pass it on.

The whole statement span (handlers, ``else``, ``finally``, context
managers) is treated as guarded even though e.g. an ``else`` clause is
not actually covered by its handlers: over-approximating the guarded
region can only keep points dynamic, never prune one wrongly.

Source is not the only certificate.  On CPython 3.11+ (zero-cost
exceptions, PEP 626 era bytecode) every handler span of a code object —
``try``, ``with``, ``async with``, generator cleanup — lives in
``co_exceptiontable``; an *empty* table proves the frame cannot catch,
transform, or run cleanup for a propagating exception at any line.
That certifies the sourceless adapters real programs route calls
through (``exec``-built decorator glue carrying ``functools.wraps``
metadata, plugin trampolines) which the AST certificate can never
reach.  Frames with a non-empty table and no retrievable source stay
non-transparent, as do all sourceless frames on older interpreters.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Dict, Optional, Tuple

__all__ = ["TransparencyIndex"]

_GUARD_NODES = tuple(
    getattr(ast, name)
    for name in ("Try", "TryStar", "With", "AsyncWith")
    if hasattr(ast, name)
)

#: Cache sentinel distinguishing "not computed" from "uncertifiable".
_MISSING = object()

_Spans = Optional[Tuple[Tuple[int, int], ...]]


def _guarded_spans(code) -> _Spans:
    """Absolute line spans of every guarded statement in *code*'s block,
    or None when the block cannot be certified at all."""
    if getattr(code, "co_exceptiontable", None) == b"":
        # Zero-cost exceptions: an empty handler table is a bytecode-
        # level proof the frame is exception-transparent everywhere —
        # no source needed.
        return ()
    try:
        lines, start = inspect.getsourcelines(code)
    except (OSError, TypeError):
        return None
    try:
        tree = ast.parse(textwrap.dedent("".join(lines)))
    except (SyntaxError, ValueError):
        return None
    spans = []
    for node in ast.walk(tree):
        if isinstance(node, _GUARD_NODES):
            end = getattr(node, "end_lineno", None)
            if end is None:
                return None
            spans.append((start + node.lineno - 1, start + end - 1))
    return tuple(spans)


class TransparencyIndex:
    """Memoized per-code-object transparency queries."""

    def __init__(self) -> None:
        self._spans: Dict[object, _Spans] = {}

    def transparent_at(self, code, lineno: int) -> bool:
        spans = self._spans.get(code, _MISSING)
        if spans is _MISSING:
            spans = _guarded_spans(code)
            self._spans[code] = spans
        if spans is None:
            return False
        return not any(low <= lineno <= high for low, high in spans)
