"""Static purity pre-analysis that prunes the injection sweep.

The detection phase (Listing 1, Step 3) re-executes the test program
once per injection point.  This package proves — before the sweep —
that many of those executions can only produce one possible run record,
and synthesizes the record instead of paying for the run:

* :mod:`.effects` — AST-based receiver-purity scan of each woven method
  (no heap writes, no ``del``, no handlers, no calls into unanalyzed
  code; anything unprovable stays dynamic).
* :mod:`.callgraph` — greatest-fixpoint closure: a method counts as
  pure only when its whole reachable callee set is proven pure.
* :mod:`.transparency` — line-level certificates that a suspended frame
  passes a propagating exception through untouched.
* :mod:`.pruner` — combines the three with per-entry stack observations
  from the profiling run and emits synthesized ``provenance="static"``
  run records.

See ``docs/GUIDE.md`` ("The static pruning pass") for the soundness
argument and the precise list of what is and is not provable.
"""

from .callgraph import PurityAnalysis, transitive_purity
from .effects import EffectReport, PURE_BUILTINS, syntactic_effects
from .pruner import (
    PROVENANCE_DYNAMIC,
    PROVENANCE_STATIC,
    StaticPruner,
    call_through_boundary,
    log_json_without_provenance,
)
from .transparency import TransparencyIndex

__all__ = [
    "EffectReport",
    "PURE_BUILTINS",
    "PROVENANCE_DYNAMIC",
    "PROVENANCE_STATIC",
    "PurityAnalysis",
    "StaticPruner",
    "TransparencyIndex",
    "call_through_boundary",
    "log_json_without_provenance",
    "syntactic_effects",
    "transitive_purity",
]
