"""Transitive receiver-purity closure over the woven method universe.

:func:`syntactic_effects` proves single bodies effect-free but leaves
``self.<name>(...)`` call edges unresolved.  A method is only *pruned*
when its whole reachable callee set is proven pure, so this module
computes the greatest fixpoint: start from every syntactically clean
method and iteratively evict any whose call edges cannot be discharged.
Starting from the greatest solution keeps mutually recursive clean
methods pure (the least fixpoint would spuriously reject them).

Dynamic dispatch is handled by over-approximation: an edge ``self.m()``
is discharged only when *every* analyzed method named ``m`` anywhere in
the woven universe is pure, at least one exists, and the name is not
*shadowed* — defined by an unanalyzed class member (a property, an
excluded method, an inherited helper outside the weave) or stored as an
instance attribute by any analyzed method.  If any method in the
universe performs statically invisible attribute writes (``setattr``,
``vars``, unavailable source), shadow detection itself is defeated and
no call edge is trusted at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from ..analyzer import MethodSpec
from .effects import EffectReport, syntactic_effects, unwrap_original

__all__ = ["PurityAnalysis", "transitive_purity"]


@dataclass
class PurityAnalysis:
    """Per-method transitive receiver-purity verdicts."""

    #: Keys of methods whose whole reachable callee set is proven pure.
    pure: Set[str] = field(default_factory=set)
    #: The underlying per-body scan results (diagnostics).
    reports: Dict[str, EffectReport] = field(default_factory=dict)

    def is_pure(self, key: str) -> bool:
        return key in self.pure

    def reason(self, key: str) -> Optional[str]:
        report = self.reports.get(key)
        return report.reason if report is not None else "not analyzed"


def _unanalyzed_class_members(specs: List[MethodSpec]) -> Set[str]:
    """Names defined on any woven class (or its bases) that do not map to
    an analyzed spec — possible dynamic-dispatch targets we never saw."""
    analyzed = {id(unwrap_original(spec.func)) for spec in specs}
    shadowed: Set[str] = set()
    owners = {spec.owner for spec in specs if isinstance(spec.owner, type)}
    for owner in owners:
        for klass in owner.__mro__:
            if klass is object:
                continue
            for name, raw in vars(klass).items():
                func = raw
                if isinstance(raw, (staticmethod, classmethod)):
                    func = raw.__func__
                func = unwrap_original(func)
                if id(func) not in analyzed:
                    shadowed.add(name)
    return shadowed


def transitive_purity(specs: Iterable[MethodSpec]) -> PurityAnalysis:
    """Greatest-fixpoint purity of every woven method."""
    spec_list = list(specs)
    reports = {spec.key: syntactic_effects(spec) for spec in spec_list}

    by_name: Dict[str, List[str]] = {}
    for spec in spec_list:
        by_name.setdefault(spec.name, []).append(spec.key)

    shadowed = _unanalyzed_class_members(spec_list)
    for report in reports.values():
        shadowed |= report.attr_stores
    opaque_universe = any(report.opaque for report in reports.values())

    pure = {key for key, report in reports.items() if report.clean}
    changed = True
    while changed:
        changed = False
        for key in sorted(pure):
            report = reports[key]
            for name in report.self_calls:
                candidates = by_name.get(name, [])
                resolvable = (
                    not opaque_universe
                    and name not in shadowed
                    and bool(candidates)
                    and all(candidate in pure for candidate in candidates)
                )
                if not resolvable:
                    pure.discard(key)
                    changed = True
                    break
    return PurityAnalysis(pure=pure, reports=reports)
