"""Deprecated shim — checkpoints moved to :mod:`repro.core.state.checkpoint`.

This module re-exports the full historical API of ``repro.core.snapshot``
so existing imports keep working.  New code should import from
:mod:`repro.core.state`; this path is kept only for downstream examples
and tests migrating incrementally and may be removed in a future major
version.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.core.snapshot is deprecated; checkpoints moved to "
    "repro.core.state (import from repro.core.state or "
    "repro.core.state.checkpoint instead)",
    DeprecationWarning,
    stacklevel=2,
)

from .state.checkpoint import (  # noqa: E402
    Checkpoint,
    CheckpointError,
    RestoreError,
    checkpoint,
    restore,
)

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "RestoreError",
    "checkpoint",
    "restore",
]
