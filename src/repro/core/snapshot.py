"""Deprecated shim — checkpoints moved to :mod:`repro.core.state.checkpoint`.

This module re-exports the full historical API of ``repro.core.snapshot``
so existing imports keep working.  New code should import from
:mod:`repro.core.state`; this path is kept only for downstream examples
and tests migrating incrementally and may be removed in a future major
version.
"""

from __future__ import annotations

from .state.checkpoint import (
    Checkpoint,
    CheckpointError,
    RestoreError,
    checkpoint,
    restore,
)

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "RestoreError",
    "checkpoint",
    "restore",
]
