"""Classification of methods from detection logs (Definitions 2 and 3).

A method is **failure atomic** iff no injection run ever marked it
non-atomic.  Among the failure non-atomic methods, a method is **pure**
failure non-atomic iff there exists a run in which it was the *first*
method marked non-atomic — exceptions propagate from callee to caller, so
any non-atomic callee would have been marked earlier in the run
(Section 4.3).  Every other failure non-atomic method is **conditional**:
it would be atomic if all the methods it calls were atomic, and therefore
needs no wrapper once its callees are masked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .runlog import MethodKey, RunLog

__all__ = [
    "CATEGORY_ATOMIC",
    "CATEGORY_CONDITIONAL",
    "CATEGORY_PURE",
    "CATEGORIES",
    "MethodClassification",
    "ClassificationResult",
    "classify",
    "class_of_method",
]

CATEGORY_ATOMIC = "atomic"
CATEGORY_CONDITIONAL = "conditional"
CATEGORY_PURE = "pure"
#: All categories, in the display order used by the paper's figures.
CATEGORIES = (CATEGORY_ATOMIC, CATEGORY_CONDITIONAL, CATEGORY_PURE)


@dataclass
class MethodClassification:
    """Aggregated verdicts for one method across all runs."""

    method: MethodKey
    category: str
    calls: int
    atomic_marks: int = 0
    nonatomic_marks: int = 0
    #: Injection points of runs in which this method was the first
    #: non-atomic mark (evidence of purity).
    pure_evidence: List[int] = field(default_factory=list)
    #: Callees marked non-atomic immediately before this method in some
    #: run — the methods whose non-atomicity propagated into this one.
    #: For conditional methods this is the masking dependency set: once
    #: these are atomic, this method is too.
    blamed_callees: List[MethodKey] = field(default_factory=list)

    @property
    def is_nonatomic(self) -> bool:
        return self.category != CATEGORY_ATOMIC


@dataclass
class ClassificationResult:
    """The per-method classification of one application.

    ``crashed_runs`` and ``run_provenance`` are summary metadata about
    the evidence base — how many runs were discarded as crashed and how
    many of the counted runs were executed (``"dynamic"``) versus
    synthesized by the static pruning pass (``"static"``).  They are
    intentionally not part of the serialized per-method payload: two
    campaigns with the same verdicts are the same classification.
    """

    methods: Dict[MethodKey, MethodClassification]
    #: Runs excluded from the evidence because they never finished
    #: (timeout / worker loss); their marks may be truncated mid-method.
    crashed_runs: int = 0
    #: Counted (non-crashed) runs per provenance tag.
    run_provenance: Dict[str, int] = field(default_factory=dict)

    def category_of(self, method: MethodKey) -> str:
        return self.methods[method].category

    def methods_in(self, category: str) -> List[MethodKey]:
        return sorted(
            key for key, mc in self.methods.items() if mc.category == category
        )

    def explain(self, method: MethodKey) -> str:
        """Human-readable rationale for one method's category."""
        mc = self.methods[method]
        if mc.category == CATEGORY_ATOMIC:
            return (
                f"{method} is failure atomic: "
                f"{mc.atomic_marks} atomic mark(s), no non-atomic mark "
                f"in any run."
            )
        if mc.category == CATEGORY_PURE:
            points = ", ".join(str(p) for p in mc.pure_evidence[:5])
            return (
                f"{method} is pure failure non-atomic: it was the first "
                f"method marked non-atomic in run(s) with injection "
                f"point(s) {points} — its inconsistency is its own "
                f"(Definition 3)."
            )
        culprits = ", ".join(mc.blamed_callees) or "unknown callees"
        return (
            f"{method} is conditional failure non-atomic: it was never "
            f"first-marked; its non-atomicity propagated from {culprits}. "
            f"Masking those makes it atomic without wrapping it."
        )

    # -- (de)serialization --------------------------------------------------

    def to_json(self) -> str:
        """Serialize (for offline processing, like the paper's log files)."""
        payload = {
            key: {
                "category": mc.category,
                "calls": mc.calls,
                "atomic_marks": mc.atomic_marks,
                "nonatomic_marks": mc.nonatomic_marks,
                "pure_evidence": mc.pure_evidence,
                "blamed_callees": mc.blamed_callees,
            }
            for key, mc in self.methods.items()
        }
        import json

        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ClassificationResult":
        import json

        payload = json.loads(text)
        methods = {
            key: MethodClassification(method=key, **data)
            for key, data in payload.items()
        }
        return cls(methods=methods)

    # -- statistics (Figures 2 and 3) -----------------------------------

    def counts_by_methods(self) -> Dict[str, int]:
        """Number of methods (defined and used) per category."""
        counts = {category: 0 for category in CATEGORIES}
        for mc in self.methods.values():
            counts[mc.category] += 1
        return counts

    def counts_by_calls(self) -> Dict[str, int]:
        """Number of calls per category (weighting of Figs. 2(b)/3(b))."""
        counts = {category: 0 for category in CATEGORIES}
        for mc in self.methods.values():
            counts[mc.category] += mc.calls
        return counts

    def fractions_by_methods(self) -> Dict[str, float]:
        return _fractions(self.counts_by_methods())

    def fractions_by_calls(self) -> Dict[str, float]:
        return _fractions(self.counts_by_calls())

    # -- class-level rollup (Figure 4) -----------------------------------

    def class_categories(
        self, class_of: Optional[Callable[[MethodKey], str]] = None
    ) -> Dict[str, str]:
        """Classify classes: atomic (all methods atomic), pure (contains a
        pure method), else conditional."""
        class_of = class_of or class_of_method
        rollup: Dict[str, str] = {}
        for key, mc in self.methods.items():
            cls = class_of(key)
            current = rollup.get(cls, CATEGORY_ATOMIC)
            rollup[cls] = _worse(current, mc.category)
        return rollup

    def class_counts(
        self, class_of: Optional[Callable[[MethodKey], str]] = None
    ) -> Dict[str, int]:
        counts = {category: 0 for category in CATEGORIES}
        for category in self.class_categories(class_of).values():
            counts[category] += 1
        return counts

    def class_fractions(
        self, class_of: Optional[Callable[[MethodKey], str]] = None
    ) -> Dict[str, float]:
        return _fractions(self.class_counts(class_of))


_SEVERITY = {CATEGORY_ATOMIC: 0, CATEGORY_CONDITIONAL: 1, CATEGORY_PURE: 2}


def _worse(a: str, b: str) -> str:
    return a if _SEVERITY[a] >= _SEVERITY[b] else b


def _fractions(counts: Dict[str, int]) -> Dict[str, float]:
    total = sum(counts.values())
    if total == 0:
        return {category: 0.0 for category in counts}
    return {category: count / total for category, count in counts.items()}


def class_of_method(method: MethodKey) -> str:
    """Default ``"Class.method" -> "Class"`` mapping for rollups."""
    head, _, _ = method.rpartition(".")
    return head or method


def classify(log: RunLog) -> ClassificationResult:
    """Classify every method observed in *log*.

    The universe is every method seen during profiling plus every method
    that received a mark; a method with no non-atomic mark in any run is
    failure atomic (Definition 2 quantifies over the executions actually
    explored, exactly as the paper's experiments do).

    Crashed runs (timeout / worker loss) are excluded from the evidence
    entirely: a run killed mid-method may have recorded a spurious
    first-non-atomic mark, or been cut short before the caller marks
    that would have demoted it to conditional.  They are counted in
    ``crashed_runs`` instead.
    """
    counted_runs = [run for run in log.runs if not run.crashed]
    crashed_runs = len(log.runs) - len(counted_runs)

    universe: List[MethodKey] = list(log.methods_seen)
    seen = set(universe)
    for run in counted_runs:
        for mark in run.marks:
            if mark.method not in seen:
                universe.append(mark.method)
                seen.add(mark.method)

    atomic_marks: Dict[MethodKey, int] = {m: 0 for m in universe}
    nonatomic_marks: Dict[MethodKey, int] = {m: 0 for m in universe}
    pure_evidence: Dict[MethodKey, List[int]] = {m: [] for m in universe}
    blamed: Dict[MethodKey, List[MethodKey]] = {m: [] for m in universe}
    run_provenance: Dict[str, int] = {}

    for run in counted_runs:
        run_provenance[run.provenance] = (
            run_provenance.get(run.provenance, 0) + 1
        )
        first = run.first_nonatomic()
        if first is not None:
            pure_evidence[first.method].append(run.injection_point)
        previous_nonatomic: MethodKey = ""
        for mark in run.marks:
            if mark.is_nonatomic:
                nonatomic_marks[mark.method] += 1
                if (
                    previous_nonatomic
                    and previous_nonatomic != mark.method
                    and previous_nonatomic not in blamed[mark.method]
                ):
                    # propagation order: the previous non-atomic mark is
                    # the callee whose inconsistency reached this method
                    blamed[mark.method].append(previous_nonatomic)
                previous_nonatomic = mark.method
            else:
                atomic_marks[mark.method] += 1

    methods: Dict[MethodKey, MethodClassification] = {}
    for method in universe:
        if nonatomic_marks[method] == 0:
            category = CATEGORY_ATOMIC
        elif pure_evidence[method]:
            category = CATEGORY_PURE
        else:
            category = CATEGORY_CONDITIONAL
        methods[method] = MethodClassification(
            method=method,
            category=category,
            calls=log.call_counts.get(method, 0),
            atomic_marks=atomic_marks[method],
            nonatomic_marks=nonatomic_marks[method],
            pure_evidence=pure_evidence[method],
            blamed_callees=blamed[method],
        )
    return ClassificationResult(
        methods=methods,
        crashed_runs=crashed_runs,
        run_provenance=run_provenance,
    )
