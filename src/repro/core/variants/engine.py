"""The transform engine: parse → apply recipe → unparse, with records.

A *recipe* is an ordered tuple of rule names.  :func:`transform_source`
parses a subject module, walks every class's directly-defined methods,
and applies each recipe rule wherever its applicability predicate
admits it — recording every application and collecting the helper
methods that try-body extraction mints, so callers can exclude them
from weaving (helpers must never shift injection-point numbering).

Recipe *order* matters and is part of the variant's identity: e.g.
``temp-assign`` creates locals that make ``alpha-rename`` applicable on
otherwise local-free methods, and ``augassign-expand`` after
``augassign-contract`` round-trips back to the original spelling.
:func:`make_recipes` derives a deterministic, seeded recipe sequence —
same ``(seed, count)`` → same recipes, across processes and sessions.
"""

from __future__ import annotations

import ast
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .rules import (
    RULES,
    TransformContext,
    TransformRule,
    all_identifiers,
    all_rule_names,
    rule_by_name,
)

__all__ = [
    "AppliedTransform",
    "VariantModule",
    "make_recipes",
    "transform_source",
]


@dataclass(frozen=True)
class AppliedTransform:
    """One successful rule application, for reports and reproducers."""

    rule: str
    class_name: str
    method: str

    def to_dict(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "class": self.class_name,
            "method": self.method,
        }


@dataclass
class VariantModule:
    """The outcome of transforming one subject module.

    Attributes:
        tag: the variant index the fresh-name generator was salted with.
        recipe: the rule names that were attempted, in order.
        source: the transformed module source (``ast.unparse`` output).
        applied: every (rule, class, method) application, in order.
        helper_keys: ``"Class.helper"`` keys of minted helper methods —
            campaigns must exclude these from weaving so injection-point
            numbering matches the original subject.
    """

    tag: int
    recipe: Tuple[str, ...]
    source: str
    applied: Tuple[AppliedTransform, ...] = ()
    helper_keys: Tuple[str, ...] = ()

    @property
    def changed(self) -> bool:
        return bool(self.applied)

    def to_dict(self) -> Dict:
        return {
            "tag": self.tag,
            "recipe": list(self.recipe),
            "applied": [a.to_dict() for a in self.applied],
            "helper_keys": list(self.helper_keys),
            "source": self.source,
        }


def make_recipes(seed: int, count: int) -> List[Tuple[str, ...]]:
    """*count* deterministic recipes for one subject.

    Each recipe samples a subset of the rule base in a shuffled order.
    The first recipe is always the full rule base in registry order
    (maximum coverage); later ones explore subsets and orderings.  A
    recipe may end up changing nothing on a given subject — that yields
    a variant identical to the original, which is a valid (trivially
    invariant) corpus member.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = random.Random(seed)
    names = all_rule_names()
    recipes: List[Tuple[str, ...]] = [tuple(names)]
    while len(recipes) < count:
        size = rng.randint(2, len(names))
        recipes.append(tuple(rng.sample(names, size)))
    return recipes[:count]


def _method_defs(cls: ast.ClassDef) -> List[ast.FunctionDef]:
    return [stmt for stmt in cls.body if isinstance(stmt, ast.FunctionDef)]


def _class_taken(cls: ast.ClassDef) -> set:
    """Identifiers already claimed anywhere in the class body — fresh
    helper/local names must not shadow or collide with any of them."""
    taken = set()
    for fn in _method_defs(cls):
        taken |= all_identifiers(fn)
        taken.add(fn.name)
    return taken


def transform_source(
    source: str,
    recipe: Sequence[str],
    *,
    tag: int,
    class_names: Optional[Sequence[str]] = None,
) -> VariantModule:
    """Apply *recipe* to every eligible method of every class in *source*.

    Args:
        source: subject module source (must parse).
        recipe: rule names applied in order to each method.
        tag: variant index — salted into every fresh identifier so
            variants of the same subject never collide with each other.
        class_names: when given, only classes with these names are
            transformed (others pass through verbatim).

    Returns:
        A :class:`VariantModule`.  ``source`` is always the unparsed
        module, even when nothing applied (unparse normalizes layout, so
        byte-compare *variants against each other*, not against the
        input).
    """
    rules: List[TransformRule] = [rule_by_name(name) for name in recipe]
    tree = ast.parse(source)
    wanted = set(class_names) if class_names is not None else None
    applied: List[AppliedTransform] = []
    helper_keys: List[str] = []
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        if wanted is not None and node.name not in wanted:
            continue
        taken = _class_taken(node)
        for fn in _method_defs(node):
            ctx = TransformContext(
                tag=tag, class_name=node.name, taken=set(taken)
            )
            for rule in rules:
                if rule.applies(fn, ctx):
                    rule.apply(fn, ctx)
                    applied.append(
                        AppliedTransform(
                            rule=rule.name,
                            class_name=node.name,
                            method=fn.name,
                        )
                    )
            for helper in ctx.helpers:
                node.body.append(helper)
                helper_keys.append(f"{node.name}.{helper.name}")
                taken.add(helper.name)
    ast.fix_missing_locations(tree)
    return VariantModule(
        tag=tag,
        recipe=tuple(recipe),
        source=ast.unparse(tree) + "\n",
        applied=tuple(applied),
        helper_keys=tuple(helper_keys),
    )
