"""Build runnable subject programs from transformed sources.

Two subject families, two builders:

* **Fuzz specs** (:func:`build_spec_variant`): the spec renders to
  source, the engine transforms it, and the result is ``exec``'d in the
  same fixed namespace the untransformed fuzz builder uses — so object
  type names, and therefore run-log difference strings, are identical
  across variants.

* **Table-1 applications** (:func:`grafted_variant`): the real classes
  live in real modules with inheritance, decorators, and cross-class
  construction, so variants cannot simply be re-built from scratch —
  the workload bodies close over the *original* class objects.  Instead
  the transformed methods are **grafted** onto the original classes for
  the duration of a context manager and restored afterwards.  Grafted
  functions execute with a copy of the defining module's globals in
  which the class name is re-bound to the original class, so runtime
  constructions and ``isinstance`` checks inside grafted code see the
  very same types as everything else.

Both builders register the transformed source with
:func:`~repro.core.virtualsource.register_virtual_source`, so the
static pass and the trace pass can read variant method bodies exactly
as they read originals.  Helper methods minted by try-body extraction
are returned as exclusion keys — they must never be woven, or
injection-point numbering would diverge from the original subject.
"""

from __future__ import annotations

import ast
import inspect
import sys
import textwrap
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.core.virtualsource import (
    register_virtual_source,
    unregister_virtual_source,
)

from .engine import AppliedTransform, VariantModule, transform_source

__all__ = [
    "GraftedVariant",
    "build_spec_variant",
    "grafted_variant",
]


# ---------------------------------------------------------------------------
# Fuzz-spec variants
# ---------------------------------------------------------------------------


def build_spec_variant(spec, recipe: Sequence[str], *, tag: int):
    """A fresh variant :class:`AppProgram` for one fuzz spec.

    Returns ``(program, variant_module)``.  The program's ``exclude``
    set carries the minted helper keys; its workload is the ordinary
    spec workload over the variant root class.  Call again for a fresh
    program (masking rounds need unwoven classes), same-tag calls are
    deterministic.
    """
    # Imported lazily: core must not depend on the fuzz package at
    # module level (fuzz already imports core).
    from repro.experiments.programs import AppProgram
    from repro.fuzz.build import (
        FUZZ_LANGUAGE,
        build_namespace,
        make_workload,
        render_source,
    )

    variant = transform_source(render_source(spec), recipe, tag=tag)
    filename = register_virtual_source(f"<{spec.name}.v{tag}>", variant.source)
    namespace = build_namespace()
    exec(compile(variant.source, filename, "exec"), namespace)
    classes = [namespace[cd.name] for cd in spec.classes]
    program = AppProgram(
        name=spec.name,
        language=FUZZ_LANGUAGE,
        classes=classes,
        body=make_workload(spec, classes[0]),
        exclude=frozenset(variant.helper_keys),
    )
    return program, variant


# ---------------------------------------------------------------------------
# Table-1 grafted variants
# ---------------------------------------------------------------------------


def _uses_class_cell(fn: ast.FunctionDef) -> bool:
    """True for methods that cannot be grafted: zero-arg ``super()``
    and explicit ``__class__`` both read the compiler-provided class
    cell, which a re-exec'd method would bind to the wrong class."""
    return any(
        isinstance(sub, ast.Name) and sub.id in ("super", "__class__")
        for sub in ast.walk(fn)
    )


@dataclass
class GraftedVariant:
    """What :func:`grafted_variant` yields inside the context.

    Attributes:
        program: the variant application — same class objects and
            workload as the original, with transformed methods grafted
            on and helper keys added to the exclusion set.
        modules: per-class transform outcomes (class name → module).
        skipped_classes: classes left untouched (no retrievable source).
        skipped_methods: ``"Class.method"`` left untouched (class-cell
            users that cannot be re-compiled outside their class).
    """

    program: object
    modules: Dict[str, VariantModule] = field(default_factory=dict)
    skipped_classes: Tuple[str, ...] = ()
    skipped_methods: Tuple[str, ...] = ()

    @property
    def applied(self) -> Tuple[AppliedTransform, ...]:
        out: List[AppliedTransform] = []
        for module in self.modules.values():
            out.extend(module.applied)
        return tuple(out)

    @property
    def helper_keys(self) -> Tuple[str, ...]:
        out: List[str] = []
        for module in self.modules.values():
            out.extend(module.helper_keys)
        return tuple(out)


def _class_variant_source(cls: type, recipe, tag: int):
    """Transform one real class; returns (module, skipped_methods) or
    None when the class has no retrievable source."""
    try:
        source = textwrap.dedent(inspect.getsource(cls))
    except (OSError, TypeError):
        return None
    tree = ast.parse(source)
    class_node = next(
        (n for n in tree.body if isinstance(n, ast.ClassDef)), None
    )
    if class_node is None:
        return None
    skipped: List[str] = []
    kept: List[ast.stmt] = []
    for stmt in class_node.body:
        if isinstance(stmt, ast.FunctionDef) and _uses_class_cell(stmt):
            skipped.append(f"{cls.__name__}.{stmt.name}")
            continue
        kept.append(stmt)
    class_node.body = kept or [ast.Pass()]
    variant = transform_source(
        ast.unparse(tree) + "\n", recipe, tag=tag, class_names=[cls.__name__]
    )
    return variant, tuple(skipped)


@contextmanager
def grafted_variant(program, recipe: Sequence[str], *, tag: int) -> Iterator[GraftedVariant]:
    """Temporarily graft recipe-transformed methods onto *program*'s
    classes; yield the variant application; restore on exit.

    Only methods an applied transform actually changed (plus minted
    helpers) are grafted — everything else keeps its original function
    object, decorators included.
    """
    modules: Dict[str, VariantModule] = {}
    skipped_classes: List[str] = []
    skipped_methods: List[str] = []
    # (cls, name, original_or_sentinel) for restoration, innermost last.
    _MISSING = object()
    grafted: List[Tuple[type, str, object]] = []
    filenames: List[str] = []
    try:
        for cls in program.classes:
            outcome = _class_variant_source(cls, recipe, tag)
            if outcome is None:
                skipped_classes.append(cls.__name__)
                continue
            variant, cls_skipped = outcome
            skipped_methods.extend(cls_skipped)
            target_names = {
                a.method
                for a in variant.applied
                if a.class_name == cls.__name__
            } | {key.split(".", 1)[1] for key in variant.helper_keys}
            if not target_names:
                continue
            modules[cls.__name__] = variant
            filename = register_virtual_source(
                f"<variant:{cls.__module__}.{cls.__qualname__}.v{tag}>",
                variant.source,
            )
            filenames.append(filename)
            glb = dict(vars(sys.modules[cls.__module__]))
            exec(compile(variant.source, filename, "exec"), glb)
            shadow = glb[cls.__name__]
            # Grafted code must resolve the class name to the *original*
            # class at runtime — constructions and isinstance checks in
            # transformed methods have to agree with untransformed code.
            glb[cls.__name__] = cls
            for name in sorted(target_names):
                replacement = vars(shadow).get(name)
                if replacement is None:
                    continue
                grafted.append((cls, name, vars(cls).get(name, _MISSING)))
                setattr(cls, name, replacement)
        exclude = frozenset(program.exclude) | {
            key for module in modules.values() for key in module.helper_keys
        }
        variant_program = type(program)(
            name=program.name,
            language=program.language,
            classes=program.classes,
            body=program.body,
            exclude=exclude,
            rounds=program.rounds,
        )
        yield GraftedVariant(
            program=variant_program,
            modules=modules,
            skipped_classes=tuple(skipped_classes),
            skipped_methods=tuple(skipped_methods),
        )
    finally:
        for cls, name, original in reversed(grafted):
            if original is _MISSING:
                if name in vars(cls):
                    delattr(cls, name)
            else:
                setattr(cls, name, original)
        for filename in filenames:
            unregister_virtual_source(filename)
