"""The rule base: semantic-preserving per-idiom method transforms.

Each rule is a :class:`TransformRule` — a self-describing object with an
*applicability predicate* and a *transform*.  The predicate is the
soundness boundary: a rule only fires on code shapes where the rewrite
provably preserves observable behavior (receiver state trajectories,
raised exceptions, call sequences of instrumented methods).  Anything
the predicate cannot prove safe is left untouched; a variant that ends
up identical to the original is a valid (trivially invariant) subject.

Soundness ground rules shared by every transform:

* **No woven-call changes.**  Transforms never add, remove, duplicate,
  or reorder calls to subject methods — injection-point numbering is
  the dynamic sequence of instrumented calls and must stay identical
  across variants.  New helper *methods* (try-body extraction) are
  reported so the builder can exclude them from weaving.
* **No observable-state changes.**  Receiver attributes are only ever
  written by the same statements writing the same values; only *local*
  binding structure may differ (temps, comprehension scoping), which
  object-graph captures never see.
* **No frame introspection.**  Rules that change local binding
  structure refuse functions that call ``locals``/``vars``/``eval``/
  ``exec``/``dir`` or reach for frames via ``sys``/``inspect`` — such
  code could observe the rewrite.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "RULES",
    "TransformContext",
    "TransformRule",
    "all_identifiers",
    "all_rule_names",
    "rule_by_name",
]


# ---------------------------------------------------------------------------
# Rule protocol
# ---------------------------------------------------------------------------


@dataclass
class TransformContext:
    """Per-function state handed to a rule's predicate and transform.

    Attributes:
        tag: the variant index — woven into every fresh identifier so
            distinct variants of one subject never collide.
        class_name: name of the enclosing class (helper bookkeeping).
        helpers: helper methods a transform wants added to the class
            body; the engine appends them after the original methods and
            reports their keys so campaigns exclude them from weaving.
        taken: every identifier already in use in the function — fresh
            names are guaranteed disjoint from it.
    """

    tag: int
    class_name: str
    helpers: List[ast.FunctionDef] = field(default_factory=list)
    taken: set = field(default_factory=set)
    _counter: int = 0

    def fresh(self, base: str) -> str:
        """A new identifier derived from *base*, unused in the function."""
        while True:
            name = f"{base.lstrip('_')}_v{self.tag}_{self._counter}"
            self._counter += 1
            if name not in self.taken:
                self.taken.add(name)
                return name

    def fresh_helper(self, method_name: str) -> str:
        """A new helper-method name (leading underscore: private)."""
        return "_" + self.fresh(f"{method_name}_try")

    def add_helper(self, helper: ast.FunctionDef) -> None:
        self.helpers.append(helper)


@dataclass(frozen=True)
class TransformRule:
    """One self-describing semantic-preserving transform.

    Attributes:
        name: stable identifier (recipes, CLI, reports).
        description: one-line human summary of the rewrite.
        applies: ``(fn, ctx) -> bool`` — True when the transform would
            change *fn* and the change is provably behavior-preserving.
        apply: ``(fn, ctx) -> fn`` — performs the rewrite (in place on
            the node; also returned for chaining).  Only called when
            ``applies`` returned True.
    """

    name: str
    description: str
    applies: Callable[[ast.FunctionDef, TransformContext], bool]
    apply: Callable[[ast.FunctionDef, TransformContext], ast.FunctionDef]


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------

#: Builtins whose mere invocation can observe local binding structure.
_FRAME_INTROSPECTORS = frozenset(
    {"locals", "vars", "eval", "exec", "dir", "globals"}
)

#: Attribute roots that can reach frame objects.
_FRAME_MODULES = frozenset({"sys", "inspect"})


def _introspects_frame(node: ast.AST) -> bool:
    """True when *node* may observe local variables reflectively."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in _FRAME_INTROSPECTORS:
            return True
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id in _FRAME_MODULES
        ):
            return True
    return False


def _has_scope_escapes(node: ast.AST) -> bool:
    """True when *node* contains constructs that leak control or bind
    names in enclosing scopes (yield/await/walrus)."""
    return any(
        isinstance(sub, (ast.Yield, ast.YieldFrom, ast.Await, ast.NamedExpr))
        for sub in ast.walk(node)
    )


def _suites(node: ast.AST) -> Iterator[List[ast.stmt]]:
    """Every statement list in *node*, without entering nested defs."""
    stack: List[ast.AST] = [node]
    first = True
    while stack:
        current = stack.pop()
        if not first and isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        first = False
        for suite_name in ("body", "orelse", "finalbody"):
            suite = getattr(current, suite_name, None)
            if isinstance(suite, list) and suite and isinstance(
                suite[0], ast.stmt
            ):
                yield suite
                stack.extend(suite)
        for handler in getattr(current, "handlers", []) or []:
            yield handler.body
            stack.extend(handler.body)


def _has_nested_scope(fn: ast.FunctionDef) -> bool:
    for sub in ast.walk(fn):
        if sub is fn:
            continue
        if isinstance(
            sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            return True
    return False


def _param_names(fn: ast.FunctionDef) -> List[str]:
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def _assigned_names(fn: ast.FunctionDef) -> set:
    """Names bound by assignment-like constructs inside *fn* (excluding
    parameters), i.e. the function's locals under CPython scoping."""
    bound = set()
    for sub in ast.walk(fn):
        if isinstance(sub, ast.Name) and isinstance(
            sub.ctx, (ast.Store, ast.Del)
        ):
            bound.add(sub.id)
        elif isinstance(sub, ast.ExceptHandler) and sub.name:
            bound.add(sub.name)
    return bound


def all_identifiers(fn: ast.FunctionDef) -> set:
    names = set(_param_names(fn))
    for sub in ast.walk(fn):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.ExceptHandler) and sub.name:
            names.add(sub.name)
    return names


def _names_in(node: ast.AST) -> set:
    return {sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)}


def _is_simple_target(node: ast.expr) -> bool:
    """A store target whose re-evaluation is provably effect-free: a
    bare name, or a one-level attribute of a bare name (``self.count``).
    Deeper chains may invoke properties twice; subscripts re-evaluate
    index expressions — both rejected."""
    if isinstance(node, ast.Name):
        return True
    return isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)


def _targets_equal(a: ast.expr, b: ast.expr) -> bool:
    if isinstance(a, ast.Name) and isinstance(b, ast.Name):
        return a.id == b.id
    if isinstance(a, ast.Attribute) and isinstance(b, ast.Attribute):
        return (
            a.attr == b.attr
            and isinstance(a.value, ast.Name)
            and isinstance(b.value, ast.Name)
            and a.value.id == b.value.id
        )
    return False


def _load(target: ast.expr) -> ast.expr:
    clone = ast.parse(ast.unparse(target), mode="eval").body
    for sub in ast.walk(clone):
        if hasattr(sub, "ctx"):
            sub.ctx = ast.Load()
    return clone


#: Operators whose augmented form is identical to the expanded form for
#: numeric operands (numbers define no mutating ``__iadd__``).
_NUMERIC_AUG_OPS = (ast.Add, ast.Sub, ast.Mult)


def _is_number(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    )


def _finish(fn: ast.FunctionDef) -> ast.FunctionDef:
    ast.fix_missing_locations(fn)
    return fn


# ---------------------------------------------------------------------------
# for -> comprehension
# ---------------------------------------------------------------------------


def _for_comp_sites(
    fn: ast.FunctionDef,
) -> Iterator[Tuple[List[ast.stmt], int]]:
    """(suite, index) pairs where ``x = []`` is followed by a pure
    append loop over a simple name target."""
    for suite in _suites(fn):
        for index in range(len(suite) - 1):
            init, loop = suite[index], suite[index + 1]
            if not (
                isinstance(init, ast.Assign)
                and len(init.targets) == 1
                and isinstance(init.targets[0], ast.Name)
                and isinstance(init.value, ast.List)
                and not init.value.elts
            ):
                continue
            acc = init.targets[0].id
            if not (
                isinstance(loop, ast.For)
                and not loop.orelse
                and isinstance(loop.target, ast.Name)
                and len(loop.body) == 1
                and isinstance(loop.body[0], ast.Expr)
            ):
                continue
            call = loop.body[0].value
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "append"
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id == acc
                and len(call.args) == 1
                and not call.keywords
            ):
                continue
            element, loop_var = call.args[0], loop.target.id
            if loop_var == acc:
                continue
            if acc in _names_in(element) | _names_in(loop.iter):
                continue
            if _has_scope_escapes(loop) or _has_scope_escapes(init):
                continue
            # The for loop leaks its variable into the function scope;
            # the comprehension does not.  Only safe when nothing else
            # mentions the loop variable.
            uses_elsewhere = sum(
                1
                for sub in ast.walk(fn)
                if isinstance(sub, ast.Name) and sub.id == loop_var
            ) - sum(
                1
                for sub in ast.walk(loop)
                if isinstance(sub, ast.Name) and sub.id == loop_var
            )
            if uses_elsewhere:
                continue
            yield suite, index


def _for_to_comp_applies(fn: ast.FunctionDef, ctx: TransformContext) -> bool:
    return not _introspects_frame(fn) and any(
        True for _ in _for_comp_sites(fn)
    )


def _for_to_comp_apply(
    fn: ast.FunctionDef, ctx: TransformContext
) -> ast.FunctionDef:
    for suite, index in list(_for_comp_sites(fn)):
        init, loop = suite[index], suite[index + 1]
        comp = ast.Assign(
            targets=init.targets,
            value=ast.ListComp(
                elt=loop.body[0].value.args[0],
                generators=[
                    ast.comprehension(
                        target=loop.target, iter=loop.iter, ifs=[], is_async=0
                    )
                ],
            ),
        )
        suite[index : index + 2] = [comp]
    return _finish(fn)


# ---------------------------------------------------------------------------
# comprehension -> for
# ---------------------------------------------------------------------------


def _comp_for_sites(
    fn: ast.FunctionDef,
) -> Iterator[Tuple[List[ast.stmt], int]]:
    for suite in _suites(fn):
        for index, stmt in enumerate(suite):
            if not (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.ListComp)
            ):
                continue
            comp = stmt.value
            if len(comp.generators) != 1:
                continue
            gen = comp.generators[0]
            if gen.is_async or len(gen.ifs) > 1:
                continue
            if not isinstance(gen.target, ast.Name):
                continue
            pieces = [comp.elt, gen.iter] + gen.ifs
            if any(_has_scope_escapes(p) for p in pieces):
                continue
            # Nested comprehensions may rebind the loop variable in
            # their own scope; renaming would need real scope analysis.
            if any(
                isinstance(sub, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp))
                for piece in pieces
                for sub in ast.walk(piece)
            ):
                continue
            yield suite, index


def _comp_to_for_applies(fn: ast.FunctionDef, ctx: TransformContext) -> bool:
    return not _introspects_frame(fn) and any(
        True for _ in _comp_for_sites(fn)
    )


class _RenameName(ast.NodeTransformer):
    def __init__(self, mapping: Dict[str, str]) -> None:
        self.mapping = mapping

    def visit_Name(self, node: ast.Name) -> ast.Name:
        new = self.mapping.get(node.id)
        return ast.Name(id=new, ctx=node.ctx) if new else node


def _comp_to_for_apply(
    fn: ast.FunctionDef, ctx: TransformContext
) -> ast.FunctionDef:
    for suite, index in list(_comp_for_sites(fn)):
        stmt = suite[index]
        comp: ast.ListComp = stmt.value
        gen = comp.generators[0]
        # The expanded loop leaks its variable; use a fresh name so no
        # existing local is clobbered.
        loop_var = ctx.fresh(gen.target.id)
        rename = _RenameName({gen.target.id: loop_var})
        element = rename.visit(comp.elt)
        conditions = [rename.visit(test) for test in gen.ifs]
        append = ast.Expr(
            value=ast.Call(
                func=ast.Attribute(
                    value=ast.Name(id=stmt.targets[0].id, ctx=ast.Load()),
                    attr="append",
                    ctx=ast.Load(),
                ),
                args=[element],
                keywords=[],
            )
        )
        body: List[ast.stmt] = [append]
        if conditions:
            body = [ast.If(test=conditions[0], body=body, orelse=[])]
        suite[index : index + 1] = [
            ast.Assign(targets=stmt.targets, value=ast.List(elts=[], ctx=ast.Load())),
            ast.For(
                target=ast.Name(id=loop_var, ctx=ast.Store()),
                iter=gen.iter,
                body=body,
                orelse=[],
            ),
        ]
    return _finish(fn)


# ---------------------------------------------------------------------------
# if/else flattening
# ---------------------------------------------------------------------------


def _terminal(stmt: ast.stmt) -> bool:
    return isinstance(stmt, (ast.Raise, ast.Return, ast.Continue, ast.Break))


def _else_sites(fn: ast.FunctionDef) -> Iterator[Tuple[List[ast.stmt], int]]:
    for suite in _suites(fn):
        for index, stmt in enumerate(suite):
            if (
                isinstance(stmt, ast.If)
                and stmt.body
                and stmt.orelse
                and _terminal(stmt.body[-1])
            ):
                yield suite, index


def _else_flatten_applies(fn: ast.FunctionDef, ctx: TransformContext) -> bool:
    return any(True for _ in _else_sites(fn))


def _else_flatten_apply(
    fn: ast.FunctionDef, ctx: TransformContext
) -> ast.FunctionDef:
    # Innermost-last ordering: sites are re-discovered after each splice
    # because flattening shifts suite indices.
    while True:
        sites = list(_else_sites(fn))
        if not sites:
            break
        suite, index = sites[0]
        stmt: ast.If = suite[index]
        tail = stmt.orelse
        stmt.orelse = []
        suite[index + 1 : index + 1] = tail
    return _finish(fn)


# ---------------------------------------------------------------------------
# augmented assignment: expand / contract
# ---------------------------------------------------------------------------


def _aug_expand_sites(fn: ast.FunctionDef) -> Iterator[Tuple[List[ast.stmt], int]]:
    for suite in _suites(fn):
        for index, stmt in enumerate(suite):
            if (
                isinstance(stmt, ast.AugAssign)
                and isinstance(stmt.op, _NUMERIC_AUG_OPS)
                and _is_simple_target(stmt.target)
                and _is_number(stmt.value)
            ):
                yield suite, index


def _aug_expand_applies(fn: ast.FunctionDef, ctx: TransformContext) -> bool:
    return any(True for _ in _aug_expand_sites(fn))


def _aug_expand_apply(
    fn: ast.FunctionDef, ctx: TransformContext
) -> ast.FunctionDef:
    for suite, index in _aug_expand_sites(fn):
        stmt: ast.AugAssign = suite[index]
        target = stmt.target
        store = ast.parse(ast.unparse(target), mode="eval").body
        for sub in ast.walk(store):
            if hasattr(sub, "ctx"):
                sub.ctx = ast.Store()
        suite[index] = ast.Assign(
            targets=[store],
            value=ast.BinOp(left=_load(target), op=stmt.op, right=stmt.value),
        )
    return _finish(fn)


def _aug_contract_sites(fn: ast.FunctionDef) -> Iterator[Tuple[List[ast.stmt], int]]:
    for suite in _suites(fn):
        for index, stmt in enumerate(suite):
            if not (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and _is_simple_target(stmt.targets[0])
                and isinstance(stmt.value, ast.BinOp)
                and isinstance(stmt.value.op, _NUMERIC_AUG_OPS)
                and _is_number(stmt.value.right)
                and _targets_equal(stmt.targets[0], stmt.value.left)
            ):
                continue
            yield suite, index


def _aug_contract_applies(fn: ast.FunctionDef, ctx: TransformContext) -> bool:
    return any(True for _ in _aug_contract_sites(fn))


def _aug_contract_apply(
    fn: ast.FunctionDef, ctx: TransformContext
) -> ast.FunctionDef:
    for suite, index in _aug_contract_sites(fn):
        stmt: ast.Assign = suite[index]
        suite[index] = ast.AugAssign(
            target=stmt.targets[0], op=stmt.value.op, value=stmt.value.right
        )
    return _finish(fn)


# ---------------------------------------------------------------------------
# alpha-renaming of locals
# ---------------------------------------------------------------------------


def _renameable_locals(fn: ast.FunctionDef) -> List[str]:
    params = set(_param_names(fn))
    return sorted(
        name
        for name in _assigned_names(fn)
        if name not in params and not name.startswith("__")
    )


def _alpha_applies(fn: ast.FunctionDef, ctx: TransformContext) -> bool:
    if _has_nested_scope(fn) or _introspects_frame(fn):
        return False
    if any(
        isinstance(sub, (ast.Global, ast.Nonlocal)) for sub in ast.walk(fn)
    ):
        return False
    return bool(_renameable_locals(fn))


def _alpha_apply(fn: ast.FunctionDef, ctx: TransformContext) -> ast.FunctionDef:
    mapping = {name: ctx.fresh(name) for name in _renameable_locals(fn)}
    for sub in ast.walk(fn):
        if isinstance(sub, ast.Name) and sub.id in mapping:
            sub.id = mapping[sub.id]
        elif isinstance(sub, ast.ExceptHandler) and sub.name in mapping:
            sub.name = mapping[sub.name]
    return _finish(fn)


# ---------------------------------------------------------------------------
# try-body extraction into a helper method
# ---------------------------------------------------------------------------


def _extractable_tries(
    fn: ast.FunctionDef, ctx: TransformContext
) -> Iterator[ast.Try]:
    params = _param_names(fn)
    if not params or params[0] != "self":
        return
    local_names = (_assigned_names(fn) | set(params)) - {"self"}
    for suite in _suites(fn):
        for stmt in suite:
            if not isinstance(stmt, ast.Try) or not stmt.body:
                continue
            body = stmt.body
            if any(_introspects_frame(s) for s in body):
                continue
            safe = True
            for sub_stmt in body:
                for sub in ast.walk(sub_stmt):
                    if isinstance(
                        sub,
                        (
                            ast.Return,
                            ast.Break,
                            ast.Continue,
                            ast.Yield,
                            ast.YieldFrom,
                            ast.Await,
                            ast.Global,
                            ast.Nonlocal,
                            ast.NamedExpr,
                            ast.FunctionDef,
                            ast.AsyncFunctionDef,
                            ast.Lambda,
                            ast.ClassDef,
                        ),
                    ):
                        safe = False
                        break
                    if isinstance(sub, ast.Name):
                        # Only the receiver and non-local (global/builtin)
                        # names may appear: moving a read or write of a
                        # true local into the helper would change scope.
                        if isinstance(sub.ctx, (ast.Store, ast.Del)):
                            safe = False
                            break
                        if sub.id != "self" and sub.id in local_names:
                            safe = False
                            break
                    if isinstance(sub, ast.ExceptHandler):
                        safe = False
                        break
                if not safe:
                    break
            if safe:
                yield stmt


def _extract_try_applies(fn: ast.FunctionDef, ctx: TransformContext) -> bool:
    return any(True for _ in _extractable_tries(fn, ctx))


def _extract_try_apply(
    fn: ast.FunctionDef, ctx: TransformContext
) -> ast.FunctionDef:
    for stmt in list(_extractable_tries(fn, ctx)):
        helper_name = ctx.fresh_helper(fn.name)
        helper = ast.FunctionDef(
            name=helper_name,
            args=ast.arguments(
                posonlyargs=[],
                args=[ast.arg(arg="self")],
                vararg=None,
                kwonlyargs=[],
                kw_defaults=[],
                kwarg=None,
                defaults=[],
            ),
            body=stmt.body,
            decorator_list=[],
            returns=None,
        )
        ast.fix_missing_locations(helper)
        ctx.add_helper(helper)
        stmt.body = [
            ast.Expr(
                value=ast.Call(
                    func=ast.Attribute(
                        value=ast.Name(id="self", ctx=ast.Load()),
                        attr=helper_name,
                        ctx=ast.Load(),
                    ),
                    args=[],
                    keywords=[],
                )
            )
        ]
    return _finish(fn)


# ---------------------------------------------------------------------------
# temp introduction (broadly applicable; feeds alpha-renaming)
# ---------------------------------------------------------------------------


def _temp_sites(fn: ast.FunctionDef) -> Iterator[Tuple[List[ast.stmt], int]]:
    for suite in _suites(fn):
        for index, stmt in enumerate(suite):
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and _is_simple_target(stmt.targets[0])
                and not isinstance(stmt.value, (ast.Name, ast.Constant))
                and not _has_scope_escapes(stmt.value)
            ):
                yield suite, index
            elif (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and not _has_scope_escapes(stmt.value)
            ):
                yield suite, index


def _temp_applies(fn: ast.FunctionDef, ctx: TransformContext) -> bool:
    if _introspects_frame(fn):
        return False
    return any(True for _ in _temp_sites(fn))


def _temp_apply(fn: ast.FunctionDef, ctx: TransformContext) -> ast.FunctionDef:
    # Collect first: splicing shifts indices within a suite.
    sites = list(_temp_sites(fn))
    for suite, index in sorted(
        sites, key=lambda pair: -pair[1]
    ):
        stmt = suite[index]
        temp = ctx.fresh("tmp")
        if isinstance(stmt, ast.Assign):
            suite[index : index + 1] = [
                ast.Assign(
                    targets=[ast.Name(id=temp, ctx=ast.Store())],
                    value=stmt.value,
                ),
                ast.Assign(
                    targets=stmt.targets,
                    value=ast.Name(id=temp, ctx=ast.Load()),
                ),
            ]
        else:
            suite[index] = ast.Assign(
                targets=[ast.Name(id=temp, ctx=ast.Store())],
                value=stmt.value,
            )
    return _finish(fn)


# ---------------------------------------------------------------------------
# constant guard (always-applicable structural noise)
# ---------------------------------------------------------------------------


def _guard_split(fn: ast.FunctionDef) -> Tuple[List[ast.stmt], List[ast.stmt]]:
    body = list(fn.body)
    prefix: List[ast.stmt] = []
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        prefix, body = body[:1], body[1:]
    return prefix, body


def _guard_applies(fn: ast.FunctionDef, ctx: TransformContext) -> bool:
    _prefix, rest = _guard_split(fn)
    return bool(rest)


def _guard_apply(fn: ast.FunctionDef, ctx: TransformContext) -> ast.FunctionDef:
    prefix, rest = _guard_split(fn)
    fn.body = prefix + [
        ast.If(test=ast.Constant(value=True), body=rest, orelse=[])
    ]
    return _finish(fn)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

RULES: Tuple[TransformRule, ...] = (
    TransformRule(
        name="for-to-comprehension",
        description="accumulator loop (x = []; for ...: x.append(e)) "
        "becomes a list comprehension",
        applies=_for_to_comp_applies,
        apply=_for_to_comp_apply,
    ),
    TransformRule(
        name="comprehension-to-for",
        description="list comprehension assigned to a local becomes an "
        "explicit accumulator loop (fresh loop variable)",
        applies=_comp_to_for_applies,
        apply=_comp_to_for_apply,
    ),
    TransformRule(
        name="else-flatten",
        description="if/else whose then-branch ends in raise/return is "
        "flattened: the else suite is dedented after the if",
        applies=_else_flatten_applies,
        apply=_else_flatten_apply,
    ),
    TransformRule(
        name="augassign-expand",
        description="numeric x += n becomes x = x + n (simple targets "
        "only; numbers have no mutating in-place ops)",
        applies=_aug_expand_applies,
        apply=_aug_expand_apply,
    ),
    TransformRule(
        name="augassign-contract",
        description="numeric x = x + n becomes x += n (simple targets "
        "only)",
        applies=_aug_contract_applies,
        apply=_aug_contract_apply,
    ),
    TransformRule(
        name="alpha-rename",
        description="consistently renames every purely-local variable "
        "(parameters and closures untouched)",
        applies=_alpha_applies,
        apply=_alpha_apply,
    ),
    TransformRule(
        name="extract-try-body",
        description="the body of a self-contained try block moves into a "
        "fresh (unwoven) helper method called in its place",
        applies=_extract_try_applies,
        apply=_extract_try_apply,
    ),
    TransformRule(
        name="temp-assign",
        description="assignments and bare calls route their value "
        "through a fresh local temporary",
        applies=_temp_applies,
        apply=_temp_apply,
    ),
    TransformRule(
        name="constant-guard",
        description="the method body nests under `if True:` — pure "
        "line/indentation noise for line-keyed analyses",
        applies=_guard_applies,
        apply=_guard_apply,
    ),
)

_BY_NAME: Dict[str, TransformRule] = {rule.name: rule for rule in RULES}


def rule_by_name(name: str) -> TransformRule:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown transform rule {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None


def all_rule_names() -> List[str]:
    return [rule.name for rule in RULES]
