"""Metamorphic variant corpus: semantic-preserving subject transforms.

The pipeline's verdicts are about program semantics; its analyses read
syntax and traces.  This package stresses that gap with an AST-based
variant generator (``rules`` → ``engine`` → ``builder``) and a
detection-invariance oracle (``oracle``) asserting that classification,
masking fixpoints, and static/trace campaign outputs are identical —
modulo provenance tags — across every variant of a subject.

See ``docs/ARCHITECTURE.md`` for the subsystem walkthrough and the
``repro variants`` CLI / fuzz Check 8 for the entry points.
"""

from .builder import GraftedVariant, build_spec_variant, grafted_variant
from .engine import (
    AppliedTransform,
    VariantModule,
    make_recipes,
    transform_source,
)
from .oracle import (
    CampaignBundle,
    Divergence,
    InvarianceReport,
    campaign_bundle,
    check_invariance,
    diff_bundles,
)
from .rules import RULES, TransformRule, all_rule_names, rule_by_name

__all__ = [
    "AppliedTransform",
    "CampaignBundle",
    "Divergence",
    "GraftedVariant",
    "InvarianceReport",
    "RULES",
    "TransformRule",
    "VariantModule",
    "all_rule_names",
    "build_spec_variant",
    "campaign_bundle",
    "check_invariance",
    "diff_bundles",
    "grafted_variant",
    "make_recipes",
    "rule_by_name",
    "transform_source",
]
