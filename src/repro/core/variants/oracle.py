"""The detection-invariance oracle.

Detection verdicts are claims about program *semantics* — whether a
handler restores the receiver — while every analysis in the pipeline
reasons over *syntax and traces*.  The oracle closes that gap: run the
full campaign on a subject and on semantic-preserving variants of it,
and require the observable outputs to be identical.

What must match (:func:`campaign_bundle` collects it, all as canonical
JSON so divergences are byte-comparable and reportable):

* the detection **run log** modulo per-run provenance tags (variants
  legitimately differ in how many points static/trace passes decide);
* the **classification** (categories, calls, marks, pure evidence);
* the **masking fixpoint**: per strategy, each round's wrapped set and
  resulting classification until everything is failure atomic;
* optionally the statically **pruned** and trace-**derived** campaign
  outputs, again modulo provenance.

:func:`diff_bundles` compares two bundles field by field;
:func:`check_invariance` drives original-vs-variants for a list of
subjects produced by caller-supplied factories (fresh programs per
campaign — masking rounds need unwoven classes).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import WrapPolicy
from repro.core.classify import CATEGORY_ATOMIC
from repro.core.policy import select_methods_to_wrap
from repro.core.staticpass import log_json_without_provenance

__all__ = [
    "CampaignBundle",
    "Divergence",
    "InvarianceReport",
    "campaign_bundle",
    "check_invariance",
    "diff_bundles",
]

#: Safety valve for the masking fixpoint (same bound as the fuzz
#: harness: every productive round wraps at least one fresh method).
_EXTRA_ROUNDS = 2


@dataclass(frozen=True)
class Divergence:
    """One observable difference between a variant and its original."""

    subject: str
    variant: str
    aspect: str
    detail: str

    def to_dict(self) -> Dict[str, str]:
        return {
            "subject": self.subject,
            "variant": self.variant,
            "aspect": self.aspect,
            "detail": self.detail,
        }


@dataclass
class CampaignBundle:
    """Everything invariance compares, for one subject program."""

    log: str
    classification: str
    masking: Dict[str, str] = field(default_factory=dict)
    static: Optional[str] = None
    trace: Optional[str] = None

    def aspects(self) -> Dict[str, Optional[str]]:
        out: Dict[str, Optional[str]] = {
            "log": self.log,
            "classification": self.classification,
            "static": self.static,
            "trace": self.trace,
        }
        for strategy, rounds in self.masking.items():
            out[f"masking-{strategy}"] = rounds
        return out


def _masking_rounds(
    make_program: Callable[[], object],
    classification,
    strategy: str,
    state_backend: str,
) -> str:
    """Iterate mask → re-detect to the fixpoint; return the canonical
    JSON transcript of every round (wrapped set + classification)."""
    from repro.experiments.validation import mask_and_redetect

    wrapped = sorted(select_methods_to_wrap(classification, WrapPolicy()))
    max_rounds = len(classification.methods) + _EXTRA_ROUNDS
    rounds: List[Dict] = []
    while True:
        detection, masked = mask_and_redetect(
            make_program(),
            wrapped,
            strategy=strategy,
            state_backend=state_backend,
        )
        rounds.append(
            {
                "wrapped": list(wrapped),
                "log": json.loads(log_json_without_provenance(detection.log)),
                "classification": json.loads(masked.to_json()),
            }
        )
        still = sorted(
            key
            for key, mc in masked.methods.items()
            if mc.category != CATEGORY_ATOMIC
        )
        if not still:
            break
        fresh = [
            m
            for m in select_methods_to_wrap(masked, WrapPolicy())
            if m not in set(wrapped)
        ]
        if not fresh or len(rounds) >= max_rounds:
            rounds.append({"stuck": still})
            break
        wrapped = sorted(set(wrapped) | set(fresh))
    return json.dumps(rounds, sort_keys=True)


def campaign_bundle(
    make_program: Callable[[], object],
    *,
    state_backend: str = "graph",
    static_prune: bool = False,
    trace_derive: bool = False,
    masking: bool = True,
    strategies: Sequence[str] = ("snapshot", "undolog"),
) -> CampaignBundle:
    """Run the campaign(s) for one subject; collect comparable outputs.

    Args:
        make_program: zero-arg factory returning the subject
            :class:`~repro.experiments.programs.AppProgram`.  Called
            once per campaign — return a freshly built program when the
            subject is rebuilt from a spec, or the same (unwoven)
            program object for real applications.
        static_prune / trace_derive: additionally run the campaign
            under the respective pass and include its output (modulo
            provenance) in the bundle.
        masking: include the per-strategy masking fixpoint transcript.
    """
    from repro.experiments.campaign import run_app_campaign

    outcome = run_app_campaign(make_program(), state_backend=state_backend)
    bundle = CampaignBundle(
        log=log_json_without_provenance(outcome.detection.log),
        classification=outcome.classification.to_json(),
    )
    if masking:
        for strategy in strategies:
            bundle.masking[strategy] = _masking_rounds(
                make_program,
                outcome.classification,
                strategy,
                state_backend,
            )
    if static_prune:
        pruned = run_app_campaign(
            make_program(), state_backend=state_backend, static_prune=True
        )
        bundle.static = json.dumps(
            {
                "log": json.loads(
                    log_json_without_provenance(pruned.detection.log)
                ),
                "classification": json.loads(pruned.classification.to_json()),
            },
            sort_keys=True,
        )
    if trace_derive:
        derived = run_app_campaign(
            make_program(), state_backend=state_backend, trace_derive=True
        )
        bundle.trace = json.dumps(
            {
                "log": json.loads(
                    log_json_without_provenance(derived.detection.log)
                ),
                "classification": json.loads(derived.classification.to_json()),
            },
            sort_keys=True,
        )
    return bundle


def _first_difference(a: str, b: str, window: int = 80) -> str:
    """A short, position-anchored excerpt of where two strings diverge."""
    limit = min(len(a), len(b))
    at = next((i for i in range(limit) if a[i] != b[i]), limit)
    return (
        f"at byte {at}: original ...{a[max(0, at - 20):at + window]!r} "
        f"variant ...{b[max(0, at - 20):at + window]!r}"
    )


def diff_bundles(
    base: CampaignBundle,
    other: CampaignBundle,
    *,
    subject: str,
    variant: str,
) -> List[Divergence]:
    """Every aspect on which *other* differs from *base*."""
    out: List[Divergence] = []
    base_aspects = base.aspects()
    other_aspects = other.aspects()
    for aspect in sorted(set(base_aspects) | set(other_aspects)):
        a, b = base_aspects.get(aspect), other_aspects.get(aspect)
        if a == b:
            continue
        if a is None or b is None:
            detail = "present only on " + ("original" if b is None else "variant")
        else:
            detail = _first_difference(a, b)
        out.append(
            Divergence(
                subject=subject, variant=variant, aspect=aspect, detail=detail
            )
        )
    return out


@dataclass
class InvarianceReport:
    """Outcome of an original-vs-variants invariance check."""

    subject: str
    variants: int
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> Dict:
        return {
            "subject": self.subject,
            "variants": self.variants,
            "ok": self.ok,
            "divergences": [d.to_dict() for d in self.divergences],
        }


def check_invariance(
    subject: str,
    make_original: Callable[[], object],
    variant_factories: Sequence[Tuple[str, Callable[[], object]]],
    **bundle_kwargs,
) -> InvarianceReport:
    """Campaign the original and every variant; report all divergences.

    Args:
        subject: display name of the subject program.
        make_original: program factory for the untransformed subject.
        variant_factories: ``(label, factory)`` per variant.
        bundle_kwargs: forwarded to :func:`campaign_bundle`.
    """
    base = campaign_bundle(make_original, **bundle_kwargs)
    report = InvarianceReport(subject=subject, variants=len(variant_factories))
    for label, factory in variant_factories:
        bundle = campaign_bundle(factory, **bundle_kwargs)
        report.divergences.extend(
            diff_bundles(base, bundle, subject=subject, variant=label)
        )
    return report
