"""Exception declarations and the injected-exception protocol.

The paper's Analyzer derives, for every method ``m``, the set of exception
types to inject: the exceptions *declared* in the method's signature
(``throw(E1, ..., Ek)`` in C++, ``throws`` clauses in Java) plus generic
*runtime* exceptions that any method may raise (Section 4.1, Step 1).

Python has no exception specifications, so this module supplies the
declared/runtime split explicitly:

* :func:`throws` — a decorator recording the exceptions a method is
  declared to raise (the analog of a ``throws`` clause).
* :func:`exception_free` — marks a method the programmer asserts can never
  raise (the paper's web-interface annotation, Section 4.3 third case).
* :data:`DEFAULT_RUNTIME_EXCEPTIONS` — the generic runtime exceptions
  injected into every method, standing in for ``RuntimeException`` /
  unchecked C++ exceptions.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple, Type

__all__ = [
    "InjectedRuntimeError",
    "ResourceExhaustedError",
    "InjectionAbort",
    "throws",
    "exception_free",
    "declared_exceptions",
    "is_exception_free",
    "make_injected",
    "is_injected",
    "DEFAULT_RUNTIME_EXCEPTIONS",
    "THROWS_ATTR",
    "EXCEPTION_FREE_ATTR",
]

THROWS_ATTR = "_repro_throws"
EXCEPTION_FREE_ATTR = "_repro_exception_free"
INJECTED_ATTR = "_repro_injected"


class InjectedRuntimeError(RuntimeError):
    """Generic runtime exception injected into undeclared methods.

    Stands in for the unchecked exceptions (``RuntimeException``, C++
    runtime errors) that the paper injects into every method regardless of
    its declared signature.
    """


class ResourceExhaustedError(InjectedRuntimeError):
    """Models resource-depletion failures (memory, handles, buffers)."""


class InjectionAbort(BaseException):
    """Internal control-flow exception for aborting an injection run.

    Derives from :class:`BaseException` so that application-level
    ``except Exception`` handlers cannot swallow it.  Raised only by the
    detection driver, never by injection wrappers.
    """


def throws(*exception_types: Type[BaseException]) -> Callable:
    """Declare the exceptions a function may raise.

    This is the Python analog of a checked ``throws`` clause::

        @throws(KeyError, CapacityError)
        def insert(self, key, value): ...

    The Analyzer injects each declared type (plus the generic runtime
    types) at the corresponding injection point of the method's wrapper.
    """
    for exc in exception_types:
        if not (isinstance(exc, type) and issubclass(exc, BaseException)):
            raise TypeError(f"not an exception type: {exc!r}")

    def decorate(func: Callable) -> Callable:
        existing: Tuple[type, ...] = getattr(func, THROWS_ATTR, ())
        merged = list(existing)
        for exc in exception_types:
            if exc not in merged:
                merged.append(exc)
        setattr(func, THROWS_ATTR, tuple(merged))
        return func

    return decorate


def exception_free(func: Callable) -> Callable:
    """Assert that *func* can never raise an exception at runtime.

    The detection phase still instruments the method, but the policy layer
    (Section 4.3) discards runs whose injection occurred inside an
    exception-free method, re-classifying callers that were non-atomic
    solely because of such impossible injections.
    """
    setattr(func, EXCEPTION_FREE_ATTR, True)
    return func


def declared_exceptions(func: Callable) -> Tuple[Type[BaseException], ...]:
    """Return the exception types declared on *func* via :func:`throws`."""
    return tuple(getattr(func, THROWS_ATTR, ()))


def is_exception_free(func: Callable) -> bool:
    """True if *func* was marked with :func:`exception_free`."""
    return bool(getattr(func, EXCEPTION_FREE_ATTR, False))


#: Runtime exceptions injected into every method (undeclared failures).
DEFAULT_RUNTIME_EXCEPTIONS: Tuple[Type[BaseException], ...] = (
    InjectedRuntimeError,
)


def make_injected(
    exc_type: Type[BaseException],
    *,
    method: str,
    injection_point: int,
) -> BaseException:
    """Instantiate an exception of *exc_type* tagged as injected.

    The tag lets the detection driver distinguish an injected fault that
    propagated to the top of the program from a genuine application error.
    """
    message = f"[injected@{injection_point}] in {method}"
    try:
        exc = exc_type(message)
    except TypeError:
        exc = exc_type()
    try:
        setattr(exc, INJECTED_ATTR, (method, injection_point))
    except (AttributeError, TypeError):
        pass  # exceptions with __slots__: identification falls back to the log
    return exc


def is_injected(exc: BaseException) -> bool:
    """True if *exc* was created by :func:`make_injected`."""
    return getattr(exc, INJECTED_ATTR, None) is not None


def injected_origin(exc: BaseException) -> Optional[Tuple[str, int]]:
    """Return ``(method, injection_point)`` for an injected exception."""
    return getattr(exc, INJECTED_ATTR, None)
