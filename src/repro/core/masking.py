"""The masking phase: atomicity wrappers (Listing 2, Steps 4 and 5).

An atomicity wrapper checkpoints the receiver's object graph before
calling the wrapped method; if the method exits with an exception, the
wrapper restores the checkpointed state *in place* and re-throws.  Callers
therefore observe failure atomic behavior: either the method completed, or
the object graph is exactly what it was before the call.

:class:`Masker` drives Steps 4–5: given a classification and a policy, it
weaves atomicity wrappers for exactly the methods that need them (by
default the *pure* failure non-atomic ones — conditional methods become
atomic for free once their callees are masked, Section 4.3).

:func:`failure_atomic` is the standalone decorator form for programmers
who want the "checkpoint, execute, roll back on exception" idiom directly.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from .analyzer import Analyzer, MethodSpec
from .classify import ClassificationResult
from .policy import WrapPolicy, select_methods_to_wrap
from .runlog import MethodKey
from .state import StateBackend, checkpoint, get_backend
from .state.introspect import is_opaque, is_scalar
from .weaver import Weaver

__all__ = [
    "MaskingStats",
    "make_atomicity_wrapper",
    "Masker",
    "failure_atomic",
    "atomic_block",
]


@dataclass
class MaskingStats:
    """Counters kept by atomicity wrappers (used by the overhead benches)."""

    wrapped_calls: int = 0
    rollbacks: int = 0
    checkpointed_objects: int = 0
    per_method_calls: Dict[MethodKey, int] = field(default_factory=dict)
    per_method_rollbacks: Dict[MethodKey, int] = field(default_factory=dict)

    def note_call(self, method: MethodKey, recorded: int) -> None:
        self.wrapped_calls += 1
        self.checkpointed_objects += recorded
        self.per_method_calls[method] = self.per_method_calls.get(method, 0) + 1

    def note_rollback(self, method: MethodKey) -> None:
        self.rollbacks += 1
        self.per_method_rollbacks[method] = (
            self.per_method_rollbacks.get(method, 0) + 1
        )


def _mutable_roots(
    has_receiver: bool,
    args: Tuple[Any, ...],
    kwargs: Dict[str, Any],
    checkpoint_args: bool,
) -> List[Any]:
    roots: List[Any] = []
    positional = args
    if has_receiver and args:
        roots.append(args[0])
        positional = args[1:]
    if checkpoint_args:
        for value in positional:
            if not is_scalar(value) and not is_opaque(value):
                roots.append(value)
        for name in sorted(kwargs):
            value = kwargs[name]
            if not is_scalar(value) and not is_opaque(value):
                roots.append(value)
    return roots


def make_atomicity_wrapper(
    spec: MethodSpec,
    *,
    stats: Optional[MaskingStats] = None,
    checkpoint_args: bool = True,
    ignore_attrs: Optional[Callable[[str], bool]] = None,
    max_objects: Optional[int] = None,
    backend: Union[str, StateBackend, None] = None,
) -> Callable:
    """Build the atomicity wrapper of Listing 2 for one method.

    Args:
        max_objects: optional checkpoint budget; a receiver whose
            reachable state exceeds it fails the call with
            :class:`~repro.core.state.CheckpointError` *before* the
            method runs (an explicit bound on the paper's "no upper bound
            on the size of objects", §6.2).
        backend: how to checkpoint and restore — the default (graph)
            backend copies the reachable state eagerly; the ``undolog``
            backend records writes through the class's write barrier
            instead (cost ∝ writes, not object size).
    """
    original = spec.func
    has_receiver = spec.has_receiver
    state = get_backend(backend)

    @functools.wraps(original)
    def atomic_m(*args: Any, **kwargs: Any) -> Any:
        roots = _mutable_roots(has_receiver, args, kwargs, checkpoint_args)
        saved = state.checkpoint(
            *roots, ignore_attrs=ignore_attrs, max_objects=max_objects
        )
        if stats is not None:
            stats.note_call(spec.key, state.checkpoint_size(saved))
        try:
            result = original(*args, **kwargs)
        except BaseException:
            state.restore(saved)
            if stats is not None:
                stats.checkpointed_objects += state.rollback_size(saved)
                stats.note_rollback(spec.key)
            raise
        state.commit(saved)
        return result

    atomic_m._repro_wrapped = original  # type: ignore[attr-defined]
    atomic_m._repro_spec = spec  # type: ignore[attr-defined]
    atomic_m._repro_kind = state.wrapper_kind  # type: ignore[attr-defined]
    return atomic_m


class Masker:
    """Applies the masking phase to a set of classes.

    Args:
        methods: the methods to wrap, normally the output of
            :func:`repro.core.policy.select_methods_to_wrap`.
        stats: optional shared counters.
        analyzer: method discovery; defaults to a fresh :class:`Analyzer`.

    The masker is a context manager; on exit it unweaves every wrapper,
    restoring the original classes.
    """

    def __init__(
        self,
        methods: Iterable[MethodKey],
        *,
        stats: Optional[MaskingStats] = None,
        analyzer: Optional[Analyzer] = None,
        checkpoint_args: bool = True,
        ignore_attrs: Optional[Callable[[str], bool]] = None,
        state_backend: Union[str, StateBackend, None] = None,
    ) -> None:
        self.methods = set(methods)
        self.stats = stats if stats is not None else MaskingStats()
        self._checkpoint_args = checkpoint_args
        self._ignore_attrs = ignore_attrs
        self._backend = get_backend(state_backend)
        self._weaver = Weaver(self._factory, analyzer)
        self.wrapped: List[MethodKey] = []

    @classmethod
    def from_classification(
        cls,
        classification: ClassificationResult,
        policy: Optional[WrapPolicy] = None,
        **kwargs: Any,
    ) -> "Masker":
        """Masker for the methods a classification + policy selects."""
        policy = policy or WrapPolicy()
        return cls(select_methods_to_wrap(classification, policy), **kwargs)

    def _factory(self, spec: MethodSpec) -> Callable:
        return make_atomicity_wrapper(
            spec,
            stats=self.stats,
            checkpoint_args=self._checkpoint_args,
            ignore_attrs=self._ignore_attrs,
            backend=self._backend,
        )

    def mask_class(self, cls: type) -> List[MethodKey]:
        """Wrap the selected methods that *cls* defines; return their keys."""
        analyzer = self._weaver._analyzer
        wanted = [
            spec.name
            for spec in analyzer.analyze_class(cls)
            if spec.key in self.methods
        ]
        if not wanted:
            return []
        specs = self._weaver.weave_class(cls, methods=wanted)
        keys = [spec.key for spec in specs]
        self.wrapped.extend(keys)
        return keys

    def mask_module_functions(self, module) -> List[MethodKey]:
        """Wrap the selected module-level functions of *module*."""
        import inspect as _inspect

        prefix = f"{module.__name__}."
        wanted = [
            name
            for name, value in vars(module).items()
            if _inspect.isfunction(value) and prefix + name in self.methods
        ]
        if not wanted:
            return []
        specs = self._weaver.weave_module_functions(module, functions=wanted)
        keys = [spec.key for spec in specs]
        self.wrapped.extend(keys)
        return keys

    def mask_classes(self, classes: Iterable[type]) -> List[MethodKey]:
        keys: List[MethodKey] = []
        for cls in classes:
            keys.extend(self.mask_class(cls))
        return keys

    def unmask_all(self) -> None:
        self._weaver.unweave_all()
        self.wrapped.clear()

    def __enter__(self) -> "Masker":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.unmask_all()


class atomic_block:
    """Failure atomicity for an arbitrary code block.

    The block form of Listing 2: checkpoint the given objects on entry;
    if the block exits with an exception, restore them in place and let
    the exception propagate::

        with atomic_block(account, ledger):
            account.debit(amount)
            ledger.append(entry)     # a failure rolls BOTH back

    The checkpoint covers everything reachable from the listed objects,
    with the same aliasing-preserving in-place restore the method
    wrappers use.
    """

    def __init__(
        self,
        *objects: Any,
        ignore_attrs: Optional[Callable[[str], bool]] = None,
        max_objects: Optional[int] = None,
    ) -> None:
        if not objects:
            raise ValueError("atomic_block needs at least one object")
        self._objects = objects
        self._ignore_attrs = ignore_attrs
        self._max_objects = max_objects
        self._saved: Optional[Any] = None
        self.rolled_back = False

    def __enter__(self) -> "atomic_block":
        self._saved = checkpoint(
            *self._objects,
            ignore_attrs=self._ignore_attrs,
            max_objects=self._max_objects,
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None and self._saved is not None:
            self._saved.restore()
            self.rolled_back = True
        self._saved = None
        return False  # never swallow the exception


def failure_atomic(
    func: Optional[Callable] = None,
    *,
    checkpoint_args: bool = True,
    ignore_attrs: Optional[Callable[[str], bool]] = None,
    stats: Optional[MaskingStats] = None,
) -> Callable:
    """Decorator form of the atomicity wrapper.

    Makes a method (or any function mutating its arguments) failure
    atomic::

        class Account:
            @failure_atomic
            def transfer(self, other, amount): ...

    With no parentheses it decorates directly; with keyword arguments it
    returns a configured decorator.
    """

    def decorate(target: Callable) -> Callable:
        spec = MethodSpec(
            owner=None,
            name=target.__name__,
            func=target,
            key=getattr(target, "__qualname__", target.__name__),
            kind="method",  # first positional argument is the receiver
            exceptions=(),
        )
        return make_atomicity_wrapper(
            spec,
            stats=stats,
            checkpoint_args=checkpoint_args,
            ignore_attrs=ignore_attrs,
        )

    if func is not None:
        return decorate(func)
    return decorate
