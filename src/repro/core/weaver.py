"""Code weaving: route calls to wrappers instead of original methods.

The paper implements Step 2 (and Step 5) with two technologies:

* **Source code transformation** (C++): AspectC++ weaves wrapper aspects
  into the program source, so every call site reaches the wrapper.  The
  Python analog is weaving applied where the class is defined — the
  :func:`weave_with` class decorator.
* **Binary code transformation** (Java): the Java Wrapper Generator
  instruments class bytecode *at load time* using BCEL, requiring no
  source access.  The Python analog is :class:`LoadTimeWeaver`, an import
  hook that instruments every class of a module the moment the module is
  loaded.

Both flavors funnel into :class:`Weaver`, which replaces methods on
classes with wrapper functions and can undo the replacement.  Like the
JVM, CPython refuses attribute assignment on builtin/extension types; the
weaver surfaces this as :class:`WeavingError`, mirroring the paper's
core-class limitation (Section 5.2).
"""

from __future__ import annotations

import importlib
import importlib.abc
import importlib.machinery
import importlib.util
import sys
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from .analyzer import (
    KIND_CLASSMETHOD,
    KIND_STATIC,
    Analyzer,
    MethodSpec,
)

__all__ = [
    "WeavingError",
    "Weaver",
    "weave_with",
    "LoadTimeWeaver",
    "WrapperFactory",
]

#: A wrapper factory receives a :class:`MethodSpec` and returns the plain
#: function that should replace the original method.
WrapperFactory = Callable[[MethodSpec], Callable]


class WeavingError(RuntimeError):
    """Raised when a class cannot be instrumented (e.g. builtin types)."""


#: CPython marks classes created at runtime (from Python code) as "heap
#: types"; builtin and C-extension types lack the flag and reject method
#: replacement — the analog of the JVM's uninstrumentable core classes.
_Py_TPFLAGS_HEAPTYPE = 1 << 9


@dataclass
class _Replacement:
    cls: type
    name: str
    original: object


class Weaver:
    """Replaces methods on classes with wrappers, reversibly.

    Args:
        wrapper_factory: builds the replacement function for each method
            spec.  The detection phase passes an injection-wrapper
            factory, the masking phase an atomicity-wrapper factory.
        analyzer: discovers the methods of each class; a default
            :class:`Analyzer` is used if omitted.

    A weaver is also a context manager: on exit it restores every
    replaced method, which keeps instrumentation hermetic in test suites.
    """

    def __init__(
        self,
        wrapper_factory: WrapperFactory,
        analyzer: Optional[Analyzer] = None,
    ) -> None:
        self._factory = wrapper_factory
        self._analyzer = analyzer or Analyzer()
        self._replacements: List[_Replacement] = []
        self._woven_specs: List[MethodSpec] = []

    # -- weaving -------------------------------------------------------

    def weave_class(
        self, cls: type, *, methods: Optional[Sequence[str]] = None
    ) -> List[MethodSpec]:
        """Instrument *cls*; return the specs of the woven methods.

        Args:
            methods: restrict weaving to these method names (the masking
                phase weaves only the failure non-atomic methods selected
                by the policy).
        """
        if not (cls.__flags__ & _Py_TPFLAGS_HEAPTYPE):
            raise WeavingError(
                f"cannot instrument {cls.__name__!r}: core/builtin classes "
                "cannot be woven at runtime (the paper's Java flavor has "
                "the same limitation for core classes, Section 5.2)"
            )
        specs = self._analyzer.analyze_class(cls)
        if methods is not None:
            wanted = set(methods)
            specs = [s for s in specs if s.name in wanted]
            missing = wanted - {s.name for s in specs}
            if missing:
                raise WeavingError(
                    f"{cls.__name__} has no instrumentable methods "
                    f"{sorted(missing)}"
                )
        for spec in specs:
            self._replace(cls, spec)
        return specs

    def weave_classes(self, classes: Iterable[type]) -> List[MethodSpec]:
        specs: List[MethodSpec] = []
        for cls in classes:
            specs.extend(self.weave_class(cls))
        return specs

    def weave_module_functions(
        self, module, *, functions: Optional[Sequence[str]] = None
    ) -> List[MethodSpec]:
        """Instrument module-level functions (Python has them; Java not).

        Only functions *defined in* the module are woven; re-exported
        imports are skipped.  Callers that bound the function earlier
        (``from mod import f``) bypass the wrapper — the usual
        monkey-patching caveat, same as for the paper's call-site
        rewriting when a function pointer escaped.
        """
        import inspect as _inspect

        specs: List[MethodSpec] = []
        names = (
            functions
            if functions is not None
            else [
                name
                for name, value in vars(module).items()
                if _inspect.isfunction(value)
                and value.__module__ == module.__name__
                and not name.startswith("__")
            ]
        )
        for name in names:
            func = getattr(module, name)
            if not _inspect.isfunction(func):
                raise WeavingError(
                    f"{module.__name__}.{name} is not a plain function"
                )
            spec = self._analyzer.analyze_function(
                func, name=f"{module.__name__}.{name}"
            )
            wrapper = self._factory(spec)
            self._replacements.append(_Replacement(module, name, func))
            setattr(module, name, wrapper)
            self._woven_specs.append(spec)
            specs.append(spec)
        return specs

    def _replace(self, cls: type, spec: MethodSpec) -> None:
        wrapper = self._factory(spec)
        replacement: object = wrapper
        if spec.kind == KIND_STATIC:
            replacement = staticmethod(wrapper)
        elif spec.kind == KIND_CLASSMETHOD:
            replacement = classmethod(wrapper)
        original = vars(cls)[spec.name]
        try:
            setattr(cls, spec.name, replacement)
        except TypeError as exc:
            raise WeavingError(
                f"cannot instrument {cls!r}: core/builtin classes cannot "
                "be woven at runtime (the paper's Java flavor has the same "
                "limitation for core classes, Section 5.2)"
            ) from exc
        self._replacements.append(_Replacement(cls, spec.name, original))
        self._woven_specs.append(spec)

    # -- unweaving -----------------------------------------------------

    def unweave_all(self) -> None:
        """Restore every method this weaver replaced (LIFO order)."""
        while self._replacements:
            repl = self._replacements.pop()
            setattr(repl.cls, repl.name, repl.original)
        self._woven_specs.clear()

    @property
    def woven_specs(self) -> List[MethodSpec]:
        return list(self._woven_specs)

    def __enter__(self) -> "Weaver":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.unweave_all()


def weave_with(
    wrapper_factory: WrapperFactory, analyzer: Optional[Analyzer] = None
) -> Callable[[type], type]:
    """Class decorator applying weaving where the class is defined.

    This is the "source code transformation" flavor: the instrumentation
    is visible in the source, next to the class, and is applied exactly
    once at definition time::

        @weave_with(lambda spec: make_injection_wrapper(spec, campaign))
        class Account: ...
    """

    def decorate(cls: type) -> type:
        Weaver(wrapper_factory, analyzer).weave_class(cls)
        return cls

    return decorate


class _WeavingLoader(importlib.abc.Loader):
    """Wraps a module loader; weaves the module's classes after exec."""

    def __init__(self, inner: importlib.abc.Loader, hook: "LoadTimeWeaver") -> None:
        self._inner = inner
        self._hook = hook

    def create_module(self, spec):  # noqa: D102 - delegating loader
        create = getattr(self._inner, "create_module", None)
        return create(spec) if create is not None else None

    def exec_module(self, module) -> None:  # noqa: D102 - delegating loader
        self._inner.exec_module(module)
        self._hook._weave_module(module)


class LoadTimeWeaver(importlib.abc.MetaPathFinder):
    """Instrument classes at module load time, without source access.

    The Python analog of the paper's Java Wrapper Generator: a meta-path
    import hook that intercepts the loading of selected modules and weaves
    every class they define.  Modules already imported are untouched —
    exactly like JVM load-time instrumentation.

    Usage::

        hook = LoadTimeWeaver(factory, module_filter=lambda n: n == "bank")
        hook.install()
        import bank          # classes in bank are woven transparently
        ...
        hook.uninstall()     # future imports are untouched
        hook.unweave_all()   # undo instrumentation of loaded classes
    """

    def __init__(
        self,
        wrapper_factory: WrapperFactory,
        *,
        module_filter: Callable[[str], bool],
        analyzer: Optional[Analyzer] = None,
    ) -> None:
        self._weaver = Weaver(wrapper_factory, analyzer)
        self._module_filter = module_filter
        self._resolving = False
        self.woven_modules: List[str] = []

    # -- MetaPathFinder ------------------------------------------------

    def find_spec(self, fullname: str, path=None, target=None):
        if self._resolving or not self._module_filter(fullname):
            return None
        self._resolving = True
        try:
            spec = importlib.machinery.PathFinder.find_spec(fullname, path)
        finally:
            self._resolving = False
        if spec is None or spec.loader is None:
            return None
        spec.loader = _WeavingLoader(spec.loader, self)
        return spec

    # -- lifecycle -------------------------------------------------------

    def install(self) -> None:
        if self not in sys.meta_path:
            sys.meta_path.insert(0, self)

    def uninstall(self) -> None:
        if self in sys.meta_path:
            sys.meta_path.remove(self)

    def unweave_all(self) -> None:
        self._weaver.unweave_all()

    def __enter__(self) -> "LoadTimeWeaver":
        self.install()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()
        self.unweave_all()

    # -- internals -------------------------------------------------------

    def _weave_module(self, module) -> None:
        woven_any = False
        for value in list(vars(module).values()):
            if isinstance(value, type) and value.__module__ == module.__name__:
                self._weaver.weave_class(value)
                woven_any = True
        if woven_any:
            self.woven_modules.append(module.__name__)
