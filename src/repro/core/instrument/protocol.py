"""The ``Instrumentor`` protocol: one seam for Step-2/Step-5 plumbing.

The paper instruments the subject twice over: Step 2 replaces every
method with an injection wrapper (BCEL load-time weaving in the
original), and the analysis passes bolt side channels onto that wrapper
— the campaign's entry/escape observer slots, the trace recorder's
write barrier, the static pass's stack probes.  Those channels were
hard-wired to the method-replacement weaver.  This module extracts the
*observation* half behind a small protocol so that a different
substrate (``sys.monitoring``, PEP 669) can deliver the same events:

===============  ====================================================
event            fired when (profiling run only)
===============  ====================================================
``call-enter``   an instrumented method is entered, before its
                 injection repertoire is walked; carries the method
                 spec, the campaign's base point counter, and the
                 live wrapper frame
``call-exit``    the original method returned normally
``escape``       an exception escaped the original method and is
                 about to propagate past the wrapper
``line``         a line of an instrumented method's body executed
                 (only backends with ``exact_lines`` deliver these,
                 and only to observers that ask)
===============  ====================================================

Observers receive the *wrapper frame* explicitly rather than counting
stack depths themselves — the dispatch hop between wrapper and
observer would otherwise shift every ``sys._getframe`` offset.

Injection *delivery* (raising at point ``i``) stays method-replacement
weaving in every backend: the repertoire walk needs to run inside the
subject call, and replacing the bound method is the only way to do
that without rewriting bytecode.  What backends differ in is how the
events above are observed, and at what overhead.
"""

from __future__ import annotations

from types import CodeType, FrameType
from typing import TYPE_CHECKING, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analyzer import Analyzer, MethodSpec
    from ..injection import InjectionCampaign
    from ..tracepass.recorder import TraceRecorder

__all__ = [
    "EventObserver",
    "Instrumentor",
    "InstrumentorError",
    "InstrumentorUnavailable",
]


class InstrumentorError(RuntimeError):
    """Raised when an instrumentor cannot operate."""


class InstrumentorUnavailable(InstrumentorError):
    """Raised when a backend is not supported on this interpreter."""


class EventObserver:
    """Base class for instrumentation-event consumers.

    Every hook is a no-op; subclasses override what they need.  The
    ``frame`` argument is always the *wrapper* frame of the
    instrumented call (its ``f_back`` is the caller, its ``f_locals``
    hold ``spec``/``args``/``kwargs``), never the dispatcher's.
    """

    #: Set True to receive :meth:`on_line` events from backends that
    #: support them (``Instrumentor.exact_lines``).
    wants_line_events: bool = False

    def on_call_enter(
        self, spec: "MethodSpec", base_point: int, frame: FrameType
    ) -> None:
        """An instrumented method was entered during profiling."""

    def on_call_exit(self, spec: "MethodSpec", frame: FrameType) -> None:
        """The original method returned normally during profiling."""

    def on_escape(self, spec: "MethodSpec", frame: FrameType) -> None:
        """An exception escaped the original method during profiling."""

    def on_line(self, code: CodeType, lineno: int) -> None:
        """A line of an instrumented method executed (exact backends)."""


class Instrumentor:
    """Instrument a class set and emit events to registered observers.

    Lifecycle::

        inst = get_instrumentor("weave", campaign, analyzer=analyzer)
        with inst:                      # uninstruments on exit
            specs = inst.instrument(program.classes)
            inst.subscribe(observer)
            inst.attach()               # arm event delivery
            ...profiling run...
            inst.detach()

    ``attach``/``detach`` are separate from ``instrument`` because the
    detection sweep reuses the instrumented classes with event
    delivery disarmed.
    """

    #: Registry name ("weave", "monitoring", ...).
    name: str = "abstract"
    #: True when the backend delivers exact per-line events.
    exact_lines: bool = False

    def __init__(
        self,
        campaign: "InjectionCampaign",
        *,
        analyzer: Optional["Analyzer"] = None,
    ) -> None:
        self.campaign = campaign
        self.analyzer = analyzer
        self._observers: List[EventObserver] = []
        self._attached = False

    # -- class-set instrumentation ------------------------------------

    def instrument(self, classes: Iterable[type]) -> List["MethodSpec"]:
        """Instrument every method of *classes*; return their specs."""
        raise NotImplementedError

    def instrument_class(
        self, cls: type, *, methods: Optional[Iterable[str]] = None
    ) -> List["MethodSpec"]:
        """Instrument one class (optionally a subset of its methods)."""
        raise NotImplementedError

    def uninstrument(self) -> None:
        """Undo all instrumentation, most recent first."""
        raise NotImplementedError

    @property
    def woven_specs(self) -> List["MethodSpec"]:
        """Specs of every currently instrumented method."""
        raise NotImplementedError

    # -- observers -----------------------------------------------------

    def subscribe(self, observer: EventObserver) -> None:
        if observer not in self._observers:
            self._observers.append(observer)

    def unsubscribe(self, observer: EventObserver) -> None:
        if observer in self._observers:
            self._observers.remove(observer)

    # -- event delivery ------------------------------------------------

    @property
    def attached(self) -> bool:
        return self._attached

    def attach(self) -> None:
        """Arm event delivery for the profiling run."""
        raise NotImplementedError

    def detach(self) -> None:
        """Disarm event delivery."""
        raise NotImplementedError

    # -- write-trace riding --------------------------------------------
    #
    # The trace pass needs attribute-write events; those come from the
    # §6.2 copy-on-write barrier regardless of backend (sys.monitoring
    # has no attribute-write event), so the protocol owns the riding.

    def start_write_trace(
        self, recorder: "TraceRecorder", classes: Iterable[type]
    ) -> None:
        """Point the write barrier of *classes* at *recorder*."""
        recorder.start(set(classes))

    def stop_write_trace(self, recorder: "TraceRecorder") -> None:
        """Stop the write trace and remove barriers it installed."""
        recorder.stop()

    # -- context management --------------------------------------------

    def __enter__(self) -> "Instrumentor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._attached:
            self.detach()
        self.uninstrument()
