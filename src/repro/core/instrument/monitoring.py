"""PEP 669 instrumentor: observation through ``sys.monitoring``.

Python 3.12's ``sys.monitoring`` delivers per-code-object events from
inside the interpreter: we arm *local* events on the shared injection
wrapper code object (``INJ_WRAPPER_CODE``), so wrapper entries,
returns, and unwinds reach us without the campaign's observer slots
ever being set — the wrapper's profiling fast path stays the bare
``return original(*args, **kwargs)``, and uninstrumented code runs at
full speed because no global events are armed at all.

The callbacks replicate the wrapper's own guards (campaign enabled,
not suspended, profiling i.e. ``injection_point == 0``) so observers
see exactly the event stream the weaving backend produces; the
conformance suite asserts the resulting campaign outputs are
bit-identical.  On top of that, this backend delivers *exact* line
events (``exact_lines``) for the instrumented method bodies — the
events the transparency index otherwise approximates from suspended
``f_lineno`` probes — to any observer with ``wants_line_events``.

Below 3.12 the class is importable but refuses construction with
:class:`~repro.core.instrument.protocol.InstrumentorUnavailable`.
"""

from __future__ import annotations

import sys
from types import CodeType
from typing import TYPE_CHECKING, List, Optional

from ..injection import INJ_WRAPPER_CODE
from .protocol import InstrumentorUnavailable
from .weaving import WeaverBacked

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analyzer import Analyzer
    from ..injection import InjectionCampaign

__all__ = ["MONITORING_AVAILABLE", "MonitoringInstrumentor"]

#: True when this interpreter implements PEP 669.
MONITORING_AVAILABLE = hasattr(sys, "monitoring")

#: Identifier registered with ``sys.monitoring.use_tool_id``.
_TOOL_NAME = "repro-instrument"


class MonitoringInstrumentor(WeaverBacked):
    """Observation via ``sys.monitoring`` local events (Python 3.12+)."""

    name = "monitoring"
    exact_lines = True

    def __init__(
        self,
        campaign: "InjectionCampaign",
        *,
        analyzer: Optional["Analyzer"] = None,
    ) -> None:
        if not MONITORING_AVAILABLE:
            raise InstrumentorUnavailable(
                "the 'monitoring' instrumentor requires sys.monitoring "
                "(PEP 669, Python 3.12+) and this is Python "
                "%d.%d — use the 'weave' instrumentor here"
                % sys.version_info[:2]
            )
        super().__init__(campaign, analyzer=analyzer)
        self._tool_id: Optional[int] = None
        self._line_codes: List[CodeType] = []

    # -- event delivery ------------------------------------------------

    def _acquire_tool_id(self) -> int:
        monitoring = sys.monitoring
        for tool_id in range(6):
            try:
                monitoring.use_tool_id(tool_id, _TOOL_NAME)
            except ValueError:
                continue
            return tool_id
        raise InstrumentorUnavailable(
            "all sys.monitoring tool ids are in use"
        )

    def attach(self) -> None:
        if self._attached:
            return
        monitoring = sys.monitoring
        events = monitoring.events
        tool_id = self._acquire_tool_id()
        self._tool_id = tool_id
        monitoring.register_callback(
            tool_id, events.PY_START, self._on_py_start
        )
        monitoring.register_callback(
            tool_id, events.PY_RETURN, self._on_py_return
        )
        monitoring.register_callback(
            tool_id, events.PY_UNWIND, self._on_py_unwind
        )
        monitoring.set_local_events(
            tool_id,
            INJ_WRAPPER_CODE,
            events.PY_START | events.PY_RETURN | events.PY_UNWIND,
        )
        if any(
            observer.wants_line_events for observer in self._observers
        ):
            monitoring.register_callback(
                tool_id, events.LINE, self._on_line
            )
            for spec in self.woven_specs:
                code = spec.func.__code__
                monitoring.set_local_events(tool_id, code, events.LINE)
                self._line_codes.append(code)
        self._attached = True

    def detach(self) -> None:
        if not self._attached:
            return
        monitoring = sys.monitoring
        events = monitoring.events
        tool_id = self._tool_id
        monitoring.set_local_events(
            tool_id, INJ_WRAPPER_CODE, events.NO_EVENTS
        )
        for code in self._line_codes:
            monitoring.set_local_events(tool_id, code, events.NO_EVENTS)
        self._line_codes = []
        for event in (
            events.PY_START,
            events.PY_RETURN,
            events.PY_UNWIND,
            events.LINE,
        ):
            monitoring.register_callback(tool_id, event, None)
        monitoring.free_tool_id(tool_id)
        self._tool_id = None
        self._attached = False

    # -- callbacks -----------------------------------------------------
    #
    # Each callback runs synchronously in the monitored thread with the
    # wrapper frame as its caller; sys._getframe(1) recovers it and
    # f_locals carry the closure-visible spec/args/kwargs the observers
    # read — the same frame the weaving dispatchers hand over.

    def _profiling(self) -> bool:
        campaign = self.campaign
        return (
            campaign.enabled
            and not campaign.suspended
            and campaign.injection_point == 0
        )

    def _on_py_start(self, code: CodeType, instruction_offset: int):
        if not self._profiling():
            return None
        frame = sys._getframe(1)
        try:
            spec = frame.f_locals.get("spec")
            if spec is None:
                return None
            base_point = self.campaign.point
            for observer in self._observers:
                observer.on_call_enter(spec, base_point, frame)
        finally:
            del frame
        return None

    def _on_py_return(
        self, code: CodeType, instruction_offset: int, retval: object
    ):
        if not self._profiling():
            return None
        frame = sys._getframe(1)
        try:
            spec = frame.f_locals.get("spec")
            if spec is None:
                return None
            for observer in self._observers:
                observer.on_call_exit(spec, frame)
        finally:
            del frame
        return None

    def _on_py_unwind(
        self, code: CodeType, instruction_offset: int, exception: BaseException
    ):
        if not self._profiling():
            return None
        frame = sys._getframe(1)
        try:
            spec = frame.f_locals.get("spec")
            if spec is None:
                return None
            for observer in self._observers:
                observer.on_escape(spec, frame)
        finally:
            del frame
        return None

    def _on_line(self, code: CodeType, lineno: int):
        if not self._profiling():
            return None
        for observer in self._observers:
            if observer.wants_line_events:
                observer.on_line(code, lineno)
        return None
