"""Weaving-backed instrumentor: the paper's method-replacement path.

``WeavingInstrumentor`` adapts the existing :class:`~repro.core.weaver.
Weaver` and the campaign's observer slots to the
:class:`~repro.core.instrument.protocol.Instrumentor` protocol with
exactly the current semantics: the injection wrapper's entry hook
becomes ``call-enter``, its profiling try/except becomes ``escape``,
and the (new) normal-return hook becomes ``call-exit``.  Events exist
only while :meth:`attach`\\ ed, so the wrapper fast paths (``None``
slot checks) are untouched during the detection sweep.
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional

from ..injection import make_injection_wrapper
from ..weaver import LoadTimeWeaver, Weaver
from .protocol import Instrumentor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analyzer import Analyzer, MethodSpec
    from ..injection import InjectionCampaign

__all__ = ["WeavingInstrumentor"]


class WeaverBacked(Instrumentor):
    """Shared injection delivery: both backends weave the wrappers.

    Raising at injection point *i* requires running the repertoire
    walk inside the subject call; method replacement is the delivery
    vehicle in every backend.  Subclasses differ only in how the
    profiling events are *observed*.
    """

    def __init__(
        self,
        campaign: "InjectionCampaign",
        *,
        analyzer: Optional["Analyzer"] = None,
    ) -> None:
        super().__init__(campaign, analyzer=analyzer)
        self._wrapper_factory: Callable = (
            lambda spec: make_injection_wrapper(spec, campaign)
        )
        self._weaver = Weaver(self._wrapper_factory, analyzer)

    def instrument(self, classes: Iterable[type]) -> List["MethodSpec"]:
        return self._weaver.weave_classes(classes)

    def instrument_class(
        self, cls: type, *, methods: Optional[Iterable[str]] = None
    ) -> List["MethodSpec"]:
        return self._weaver.weave_class(cls, methods=methods)

    def loadtime_weaver(
        self, *, module_filter: Callable[[str], bool]
    ) -> LoadTimeWeaver:
        """An import hook delivering this instrumentor's wrappers."""
        return LoadTimeWeaver(
            self._wrapper_factory,
            module_filter=module_filter,
            analyzer=self.analyzer,
        )

    def uninstrument(self) -> None:
        self._weaver.unweave_all()

    @property
    def woven_specs(self) -> List["MethodSpec"]:
        return self._weaver.woven_specs


class WeavingInstrumentor(WeaverBacked):
    """Observation through the campaign's wrapper slots (any Python)."""

    name = "weave"
    exact_lines = False

    def attach(self) -> None:
        if self._attached:
            return
        campaign = self.campaign
        self._saved = (
            campaign.point_observer,
            campaign.escape_observer,
            campaign.exit_observer,
        )
        campaign.point_observer = self._dispatch_enter
        campaign.escape_observer = self._dispatch_escape
        campaign.exit_observer = self._dispatch_exit
        self._attached = True

    def detach(self) -> None:
        if not self._attached:
            return
        campaign = self.campaign
        (
            campaign.point_observer,
            campaign.escape_observer,
            campaign.exit_observer,
        ) = self._saved
        self._attached = False

    # The campaign slots are called directly from the wrapper frame, so
    # sys._getframe(1) here is the wrapper; observers get it explicitly.

    def _dispatch_enter(self, spec: "MethodSpec", base_point: int) -> None:
        frame = sys._getframe(1)
        try:
            for observer in self._observers:
                observer.on_call_enter(spec, base_point, frame)
        finally:
            del frame

    def _dispatch_exit(self, spec: "MethodSpec") -> None:
        frame = sys._getframe(1)
        try:
            for observer in self._observers:
                observer.on_call_exit(spec, frame)
        finally:
            del frame

    def _dispatch_escape(self, spec: "MethodSpec") -> None:
        frame = sys._getframe(1)
        try:
            for observer in self._observers:
                observer.on_escape(spec, frame)
        finally:
            del frame
