"""Instrumentation backends behind one protocol (ROADMAP item 5).

* :mod:`.protocol` — the :class:`Instrumentor` protocol and the
  :class:`EventObserver` base every analysis pass implements.
* :mod:`.weaving` — :class:`WeavingInstrumentor`, adapting the
  method-replacement :mod:`~repro.core.weaver` (the paper's BCEL
  analog); works on every supported Python.
* :mod:`.monitoring` — :class:`MonitoringInstrumentor`, the PEP 669
  ``sys.monitoring`` backend (Python 3.12+, exact line events, zero
  overhead on uninstrumented paths).

The registry mirrors the state-backend registry of
:mod:`repro.core.state.backend`: campaigns name an instrumentor
("weave" by default), engines resolve it with :func:`get_instrumentor`,
and the parallel journal records the name so ``--resume`` refuses to
mix event substrates within one campaign.
"""

from typing import Dict, List, Optional, Type, Union

from .monitoring import MONITORING_AVAILABLE, MonitoringInstrumentor
from .protocol import (
    EventObserver,
    Instrumentor,
    InstrumentorError,
    InstrumentorUnavailable,
)
from .weaving import WeavingInstrumentor

__all__ = [
    "DEFAULT_INSTRUMENTOR",
    "EventObserver",
    "INSTRUMENTORS",
    "INSTRUMENTOR_NAMES",
    "Instrumentor",
    "InstrumentorError",
    "InstrumentorUnavailable",
    "MONITORING_AVAILABLE",
    "MonitoringInstrumentor",
    "WeavingInstrumentor",
    "available_instrumentors",
    "get_instrumentor",
    "resolve_instrumentor_name",
]

#: Name used when a campaign does not ask for a specific backend.
DEFAULT_INSTRUMENTOR = "weave"

#: Every registered backend, available on this interpreter or not —
#: the CLI offers all of them and construction reports availability.
INSTRUMENTORS: Dict[str, Type[Instrumentor]] = {
    "weave": WeavingInstrumentor,
    "monitoring": MonitoringInstrumentor,
}

#: Stable choice tuple for CLI flags.
INSTRUMENTOR_NAMES = tuple(INSTRUMENTORS)


def resolve_instrumentor_name(
    which: Union[str, Instrumentor, None]
) -> str:
    """Validate an instrumentor name without constructing the backend."""
    if which is None:
        return DEFAULT_INSTRUMENTOR
    if isinstance(which, Instrumentor):
        return which.name
    if which not in INSTRUMENTORS:
        known = ", ".join(sorted(INSTRUMENTORS))
        raise ValueError(
            f"unknown instrumentor {which!r} (known: {known})"
        )
    return which


def get_instrumentor(
    which: Union[str, Instrumentor, None],
    campaign,
    *,
    analyzer=None,
) -> Instrumentor:
    """Resolve a name (or pass an instance through) to an instrumentor.

    Raises :class:`InstrumentorUnavailable` when the named backend
    cannot run on this interpreter (e.g. "monitoring" below 3.12) and
    ``ValueError`` for names not in the registry.
    """
    if isinstance(which, Instrumentor):
        return which
    name = resolve_instrumentor_name(which)
    return INSTRUMENTORS[name](campaign, analyzer=analyzer)


def available_instrumentors() -> List[str]:
    """Names of the backends that can run on this interpreter."""
    names = ["weave"]
    if MONITORING_AVAILABLE:
        names.append("monitoring")
    return names
