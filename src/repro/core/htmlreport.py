"""Static HTML reports of detection campaigns.

The paper's system ships "an easy-to-use web interface that allows the
programmer to indicate which methods ... should not be transformed"
(Section 4.3).  This module renders the read side of that interface: a
self-contained HTML page per campaign with the application summary, the
per-method classification (with call counts and first-difference
evidence), the class rollup, and a pre-filled JSON policy template the
programmer edits and feeds back through
:func:`repro.cli.load_policy`.
"""

from __future__ import annotations

import html
import json
from typing import Dict, List, Optional

from .classify import CATEGORIES, CATEGORY_PURE, ClassificationResult
from .report import AppReport
from .runlog import RunLog

__all__ = ["render_campaign_html", "policy_template"]

_STYLE = """
body { font-family: sans-serif; margin: 2em; color: #222; }
h1, h2 { color: #333; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #bbb; padding: 0.3em 0.8em; text-align: left; }
th { background: #eee; }
tr.atomic td.category { color: #2c7a2c; }
tr.conditional td.category { color: #b8860b; }
tr.pure td.category { color: #b03030; font-weight: bold; }
pre { background: #f6f6f6; padding: 1em; overflow-x: auto; }
.bar { display: inline-block; height: 0.8em; }
.bar.atomic { background: #7dbb7d; }
.bar.conditional { background: #e0c36a; }
.bar.pure { background: #d98080; }
"""


def policy_template(classification: ClassificationResult) -> Dict:
    """A policy skeleton listing every non-atomic method for review."""
    return {
        "never_wrap": [],
        "manual_fix": [],
        "exception_free": [],
        "wrap_conditional": False,
        "_candidates": {
            category: classification.methods_in(category)
            for category in CATEGORIES
            if category != "atomic"
        },
    }


def _fraction_bar(fractions: Dict[str, float]) -> str:
    spans = []
    for category in CATEGORIES:
        width = round(300 * fractions.get(category, 0.0))
        spans.append(
            f'<span class="bar {category}" style="width:{width}px" '
            f'title="{category}: {100 * fractions.get(category, 0.0):.1f}%">'
            "</span>"
        )
    return "".join(spans)


def render_campaign_html(
    report: AppReport,
    *,
    log: Optional[RunLog] = None,
    title: Optional[str] = None,
) -> str:
    """Render one campaign as a self-contained HTML page."""
    classification = report.classification
    title = title or f"Failure atomicity report — {report.name}"
    # Evidence provenance of the log's runs, when a log is provided:
    # how many run records the static pruning pass synthesized, how many
    # the trace pass derived from the reference execution, and how many
    # crashed runs were excluded.
    statically_decided = 0
    trace_derived = 0
    crashed = 0
    if log is not None:
        statically_decided = sum(
            1 for run in log.runs if run.provenance == "static"
        )
        trace_derived = sum(
            1 for run in log.runs if run.provenance == "trace"
        )
        crashed = sum(1 for run in log.runs if run.crashed)
    parts: List[str] = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_STYLE}</style>",
        "</head><body>",
        f"<h1>{html.escape(title)}</h1>",
        "<h2>Summary</h2>",
        "<table><tr><th>classes</th><th>methods</th><th>injections</th>"
        "<th>pure non-atomic calls</th>"
        "<th>statically decided runs</th><th>trace-derived runs</th>"
        "<th>crashed runs</th></tr>",
        f"<tr><td>{report.class_count}</td><td>{report.method_count}</td>"
        f"<td>{report.injection_count}</td>"
        f"<td>{100 * report.pure_call_fraction():.2f}%</td>"
        f"<td>{statically_decided}</td>"
        f"<td>{trace_derived}</td>"
        f"<td>{crashed}</td></tr></table>",
        "<p>By methods: "
        + _fraction_bar(report.fractions_by_methods())
        + "</p>",
        "<p>By calls: " + _fraction_bar(report.fractions_by_calls()) + "</p>",
        "<h2>Methods</h2>",
        "<table><tr><th>method</th><th>category</th><th>calls</th>"
        "<th>non-atomic marks</th><th>first difference observed</th></tr>",
    ]
    for key in sorted(classification.methods):
        mc = classification.methods[key]
        difference = ""
        if log is not None and mc.category != "atomic":
            for mark in log.marks_for(key):
                if mark.is_nonatomic and mark.difference:
                    difference = mark.difference
                    break
        parts.append(
            f'<tr class="{mc.category}"><td>{html.escape(key)}</td>'
            f'<td class="category">{mc.category}</td>'
            f"<td>{mc.calls}</td><td>{mc.nonatomic_marks}</td>"
            f"<td>{html.escape(difference)}</td></tr>"
        )
    parts.append("</table>")

    parts.append("<h2>Classes</h2><table><tr><th>class</th><th>category</th></tr>")
    for cls, category in sorted(classification.class_categories().items()):
        parts.append(
            f'<tr class="{category}"><td>{html.escape(cls)}</td>'
            f'<td class="category">{category}</td></tr>'
        )
    parts.append("</table>")

    pure = classification.methods_in(CATEGORY_PURE)
    parts.append("<h2>Masking candidates</h2>")
    if pure:
        parts.append(
            "<p>The masking phase wraps these pure failure non-atomic "
            "methods:</p><ul>"
            + "".join(f"<li><code>{html.escape(m)}</code></li>" for m in pure)
            + "</ul>"
        )
    else:
        parts.append("<p>No pure failure non-atomic methods found.</p>")

    parts.append(
        "<h2>Policy template</h2>"
        "<p>Edit and pass via <code>--policy</code> "
        "(see <code>python -m repro detect --help</code>):</p>"
    )
    parts.append(
        "<pre>"
        + html.escape(json.dumps(policy_template(classification), indent=2))
        + "</pre>"
    )
    parts.append("</body></html>")
    return "\n".join(parts)
