"""Checkpoint and in-place rollback of object state (paper Listing 2).

This module implements the ``deep_copy`` / ``replace`` pair used by the
paper's atomicity wrapper (Listing 2):

.. code-block:: none

    objgraph = deep_copy(this);
    try { return m(...); }
    catch (...) { replace(this, objgraph); throw; }

A :class:`Checkpoint` records, for every mutable object reachable from its
roots, both a reference to the original object and a *shallow* copy of its
state whose references still point at the original children.  Restoring
then rewrites each recorded object's state in place.  This design has two
properties the paper's ``replace`` needs:

* The identity of the receiver — and of every interior object that existed
  at checkpoint time — survives the rollback, so references held by
  callers and by sibling objects remain valid.
* Aliasing is preserved exactly: restored containers point back at the
  original (also restored) child objects, never at copies.

Objects created after the checkpoint become unreachable after restore and
are reclaimed by Python's garbage collector; this subsumes the reference
counting / GC discussion in Section 5.1 of the paper.

Historically this module was ``repro.core.snapshot``; that import path
remains as a re-export shim.  Type introspection is shared with the other
state backends via :mod:`repro.core.state.introspect`.
"""

from __future__ import annotations

import collections as _collections
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .introspect import default_ignore, is_opaque, is_scalar, slot_names

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "RestoreError",
    "checkpoint",
    "restore",
]


class CheckpointError(RuntimeError):
    """Raised when an object's state cannot be checkpointed."""


class RestoreError(RuntimeError):
    """Raised when a checkpoint cannot be restored in place."""


_UNSET = object()


class _ObjectRecord:
    """Saved shallow state of one mutable object."""

    __slots__ = ("obj", "kind", "state")

    def __init__(self, obj: Any, kind: str, state: Any) -> None:
        self.obj = obj
        self.kind = kind
        self.state = state


_KIND_LIST = "list"
_KIND_DICT = "dict"
_KIND_SET = "set"
_KIND_DEQUE = "deque"
_KIND_BYTEARRAY = "bytearray"
_KIND_OBJECT = "object"
_KIND_IMMUTABLE = "immutable"  # tuples/frozensets: traversed, not restored


class Checkpoint:
    """A restorable snapshot of the state reachable from one or more roots.

    Use :func:`checkpoint` to create one and :meth:`restore` to roll the
    recorded objects back to their checkpointed state.  A checkpoint may be
    restored any number of times (each restore rewinds to the same state).
    """

    def __init__(
        self,
        roots: Iterable[Any],
        ignore_attrs: Callable[[str], bool],
        max_objects: Optional[int] = None,
    ) -> None:
        self._records: List[_ObjectRecord] = []
        self._seen: Dict[int, Optional[_ObjectRecord]] = {}
        self._ignore_attrs = ignore_attrs
        self._max_objects = max_objects
        self._roots = list(roots)
        # Pin originals so ids stay unique while the checkpoint lives.
        self._pins: List[Any] = []
        for root in self._roots:
            self._record(root)

    # -- capture -----------------------------------------------------

    def _record(self, value: Any) -> None:
        stack = [value]
        while stack:
            current = stack.pop()
            if is_scalar(current) or is_opaque(current):
                continue
            oid = id(current)
            if oid in self._seen:
                continue
            if (
                self._max_objects is not None
                and len(self._seen) >= self._max_objects
            ):
                raise CheckpointError(
                    f"reachable state exceeds {self._max_objects} objects"
                )
            record = self._make_record(current)
            self._seen[oid] = record
            self._pins.append(current)
            if record is not None:
                self._records.append(record)
            stack.extend(self._children(current))

    def _make_record(self, obj: Any) -> Optional[_ObjectRecord]:
        """Build the restore record for one object.

        Container *subclasses* are recorded as (items, attribute state)
        pairs so both their contents and any extra instance attributes
        are rolled back.
        """
        if isinstance(obj, (tuple, frozenset)):
            return None  # immutable: traversed for children, never restored
        if isinstance(obj, list):
            return _ObjectRecord(
                obj, _KIND_LIST, (list(obj), self._subclass_state(obj))
            )
        if isinstance(obj, dict):
            return _ObjectRecord(
                obj, _KIND_DICT, (dict(obj), self._subclass_state(obj))
            )
        if isinstance(obj, set):
            return _ObjectRecord(
                obj, _KIND_SET, (set(obj), self._subclass_state(obj))
            )
        if isinstance(obj, _collections.deque):
            return _ObjectRecord(
                obj, _KIND_DEQUE, (list(obj), self._subclass_state(obj))
            )
        if isinstance(obj, bytearray):
            return _ObjectRecord(obj, _KIND_BYTEARRAY, bytes(obj))
        return _ObjectRecord(obj, _KIND_OBJECT, self._object_state(obj))

    def _subclass_state(self, obj: Any):
        """Attribute state of a container subclass (None for builtins)."""
        if type(obj).__module__ == "builtins" and not hasattr(obj, "__dict__"):
            return None
        return self._object_state(obj)

    def _object_state(self, obj: Any) -> Tuple[Optional[dict], List[Tuple[str, Any]]]:
        obj_dict = getattr(obj, "__dict__", None)
        dict_copy = None
        if isinstance(obj_dict, dict):
            dict_copy = {
                k: v for k, v in obj_dict.items() if not self._ignore_attrs(k)
            }
        slot_values: List[Tuple[str, Any]] = []
        for name in slot_names(type(obj)):
            if self._ignore_attrs(name):
                continue
            slot_values.append((name, getattr(obj, name, _UNSET)))
        return (dict_copy, slot_values)

    def _children(self, obj: Any) -> List[Any]:
        children: List[Any] = []
        if isinstance(obj, (list, tuple, set, frozenset, _collections.deque)):
            children.extend(obj)
        elif isinstance(obj, dict):
            children.extend(obj.keys())
            children.extend(obj.values())
        elif isinstance(obj, bytearray):
            return []
        obj_dict = getattr(obj, "__dict__", None)
        if isinstance(obj_dict, dict):
            children.extend(
                v for k, v in obj_dict.items() if not self._ignore_attrs(k)
            )
        for name in slot_names(type(obj)):
            if self._ignore_attrs(name):
                continue
            value = getattr(obj, name, _UNSET)
            if value is not _UNSET:
                children.append(value)
        return children

    # -- restore -----------------------------------------------------

    def restore(self) -> None:
        """Rewrite every recorded object's state back to checkpoint time.

        Restoration is in place: object identities are preserved, so every
        reference that existed at checkpoint time remains valid afterwards.
        """
        for record in self._records:
            self._restore_one(record)

    def _restore_one(self, record: _ObjectRecord) -> None:
        obj, kind, state = record.obj, record.kind, record.state
        if kind == _KIND_LIST:
            items, attrs = state
            obj[:] = items
        elif kind == _KIND_DICT:
            items, attrs = state
            obj.clear()
            obj.update(items)
        elif kind == _KIND_SET:
            items, attrs = state
            obj.clear()
            obj.update(items)
        elif kind == _KIND_DEQUE:
            items, attrs = state
            obj.clear()
            obj.extend(items)
        elif kind == _KIND_BYTEARRAY:
            obj[:] = state
            return
        else:
            self._restore_object(obj, state)
            return
        if attrs is not None:
            self._restore_object(obj, attrs)

    def _restore_object(
        self, obj: Any, state: Tuple[Optional[dict], List[Tuple[str, Any]]]
    ) -> None:
        dict_copy, slot_values = state
        obj_dict = getattr(obj, "__dict__", None)
        if dict_copy is not None and isinstance(obj_dict, dict):
            preserved = {
                k: v for k, v in obj_dict.items() if self._ignore_attrs(k)
            }
            obj_dict.clear()
            obj_dict.update(dict_copy)
            obj_dict.update(preserved)
        for name, value in slot_values:
            try:
                if value is _UNSET:
                    if hasattr(obj, name):
                        delattr(obj, name)
                else:
                    setattr(obj, name, value)
            except (AttributeError, TypeError) as exc:
                raise RestoreError(
                    f"cannot restore slot {name!r} of {type(obj).__name__}"
                ) from exc

    # -- introspection -----------------------------------------------

    @property
    def recorded_count(self) -> int:
        """Number of mutable objects whose state was saved."""
        return len(self._records)

    @property
    def roots(self) -> List[Any]:
        return list(self._roots)


def checkpoint(
    *roots: Any,
    ignore_attrs: Optional[Callable[[str], bool]] = None,
    max_objects: Optional[int] = None,
) -> Checkpoint:
    """Checkpoint the state reachable from *roots* (paper's ``deep_copy``).

    Args:
        max_objects: optional budget on the number of mutable objects to
            record; exceeding it raises :class:`CheckpointError` ("there
            is no upper bound on the size of objects", paper §6.2 — this
            makes the bound explicit when one is required).
    """
    return Checkpoint(roots, ignore_attrs or default_ignore, max_objects)


def restore(saved: Checkpoint) -> None:
    """Restore a checkpoint in place (paper's ``replace``)."""
    saved.restore()
