"""The :class:`StateBackend` protocol and its three implementations.

Everything the pipeline ever does with reachable state fits five verbs —
*fingerprint*, *capture*, *diff*, *checkpoint*, *restore* — plus *commit*
for strategies (the undo log) whose checkpoints must be explicitly
retired.  A backend packages one coherent strategy for those verbs:

``GraphBackend``
    Today's semantics: full materialized :class:`ObjectGraph` snapshots
    compared by rooted isomorphism, eager :class:`Checkpoint` rollback.
    The reference implementation every other backend must agree with.

``FingerprintBackend``
    The fast path: state summaries are 128-bit structural digests
    computed in one traversal, so "did the state change?" is a 16-byte
    compare.  Its :meth:`~StateBackend.diff` is *lossy* — it knows the
    state changed but not where; callers wanting diagnostics fall back
    to a graph-backend re-run (see
    :func:`repro.core.detector.run_injection_point`).  Checkpointing
    delegates to the eager checkpoint: digests cannot restore state.

``UndoLogBackend``
    Checkpoints are write-barrier undo logs (cost ∝ writes, not object
    size); capture/diff delegate to graph semantics since the undo log
    has no summary representation of its own.

Backends are selected *by name* everywhere user-facing (CLI flags,
journal headers, multiprocessing initargs) so the choice is picklable
and survives ``--resume``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Optional, Tuple, Union

from . import checkpoint as _checkpoint
from . import fingerprint as _fingerprint
from . import graph as _graph
from ..cow import UndoLog

__all__ = [
    "StateBackend",
    "GraphBackend",
    "FingerprintBackend",
    "UndoLogBackend",
    "StateStats",
    "BACKENDS",
    "DETECTION_BACKENDS",
    "get_backend",
]


@dataclass
class StateStats:
    """Counters for where a campaign's state-machinery time goes.

    Accumulated by every consumer that holds a backend (campaigns,
    maskers) and surfaced through
    :class:`~repro.core.telemetry.CampaignTelemetry` so ``repro detect``
    can show the capture/compare split before and after a backend swap.
    """

    captures: int = 0  #: full graph captures (and checkpoint captures)
    fingerprints: int = 0  #: one-pass digest computations
    compares: int = 0  #: state comparisons (graph diff or digest equality)
    seconds: float = 0.0  #: cumulative wall time inside the state layer

    def merge(self, other: "StateStats") -> None:
        self.captures += other.captures
        self.fingerprints += other.fingerprints
        self.compares += other.compares
        self.seconds += other.seconds

    def to_dict(self) -> Dict[str, Any]:
        return {
            "captures": self.captures,
            "fingerprints": self.fingerprints,
            "compares": self.compares,
            "seconds": self.seconds,
        }


class StateBackend:
    """One strategy for materializing, comparing, and restoring state.

    Subclasses override the capture/diff quartet; the checkpoint trio
    defaults to the eager in-place checkpoint, which every strategy can
    fall back on.  All methods accept/return the backend's *own* summary
    type — callers treat summaries as opaque values and only ever hand
    them back to the same backend.
    """

    #: registry name; also what journals and CLI flags carry.
    name: str = "abstract"
    #: True when :meth:`diff` cannot localize a difference (digest-only).
    lossy_diff: bool = False
    #: ``_repro_kind`` tag stamped on atomicity wrappers using this backend.
    wrapper_kind: str = "atomicity"

    # -- summaries ----------------------------------------------------

    def capture(
        self,
        value: Any,
        *,
        ignore_attrs: Optional[Callable[[str], bool]] = None,
        max_nodes: Optional[int] = None,
        stats: Optional[StateStats] = None,
    ) -> Any:
        """Summarize the state reachable from *value*."""
        raise NotImplementedError

    def capture_frame(
        self,
        label_values: Iterable[Tuple[Any, Any]],
        *,
        ignore_attrs: Optional[Callable[[str], bool]] = None,
        max_nodes: Optional[int] = None,
        stats: Optional[StateStats] = None,
    ) -> Any:
        """Summarize several labeled roots under one synthetic frame."""
        raise NotImplementedError

    def fingerprint(
        self,
        value: Any,
        *,
        ignore_attrs: Optional[Callable[[str], bool]] = None,
        max_nodes: Optional[int] = None,
        stats: Optional[StateStats] = None,
    ) -> _fingerprint.StateFingerprint:
        """128-bit structural digest of the state reachable from *value*.

        Available on every backend (digests are universally useful for
        logs and cross-run comparison); only the fingerprint backend uses
        them as its primary summary.
        """
        started = time.perf_counter()
        try:
            return _fingerprint.fingerprint(
                value, ignore_attrs=ignore_attrs, max_nodes=max_nodes
            )
        finally:
            if stats is not None:
                stats.fingerprints += 1
                stats.seconds += time.perf_counter() - started

    def diff(
        self, a: Any, b: Any, *, stats: Optional[StateStats] = None
    ) -> Optional[_graph.GraphDifference]:
        """First difference between two summaries, or None when equal."""
        raise NotImplementedError

    def equal(
        self, a: Any, b: Any, *, stats: Optional[StateStats] = None
    ) -> bool:
        return self.diff(a, b, stats=stats) is None

    # -- checkpoints --------------------------------------------------

    def checkpoint(
        self,
        *roots: Any,
        ignore_attrs: Optional[Callable[[str], bool]] = None,
        max_objects: Optional[int] = None,
        stats: Optional[StateStats] = None,
    ) -> Any:
        """Checkpoint *roots* for in-place rollback (paper's ``deep_copy``)."""
        started = time.perf_counter()
        try:
            return _checkpoint.checkpoint(
                *roots, ignore_attrs=ignore_attrs, max_objects=max_objects
            )
        finally:
            if stats is not None:
                stats.captures += 1
                stats.seconds += time.perf_counter() - started

    def restore(self, cp: Any) -> None:
        """Roll the checkpointed objects back (paper's ``replace``)."""
        cp.restore()

    def commit(self, cp: Any) -> None:
        """Retire a checkpoint after a successful region (default no-op)."""

    def checkpoint_size(self, cp: Any) -> int:
        """Objects recorded *at checkpoint time* (for MaskingStats)."""
        return cp.recorded_count

    def rollback_size(self, cp: Any) -> int:
        """Extra objects counted *at rollback time* (for MaskingStats)."""
        return 0

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class GraphBackend(StateBackend):
    """Full object-graph snapshots compared by rooted isomorphism."""

    name = "graph"

    def capture(self, value, *, ignore_attrs=None, max_nodes=None, stats=None):
        started = time.perf_counter()
        try:
            return _graph.capture(
                value, ignore_attrs=ignore_attrs, max_nodes=max_nodes
            )
        finally:
            if stats is not None:
                stats.captures += 1
                stats.seconds += time.perf_counter() - started

    def capture_frame(
        self, label_values, *, ignore_attrs=None, max_nodes=None, stats=None
    ):
        started = time.perf_counter()
        try:
            return _graph.capture_frame(
                label_values, ignore_attrs=ignore_attrs, max_nodes=max_nodes
            )
        finally:
            if stats is not None:
                stats.captures += 1
                stats.seconds += time.perf_counter() - started

    def diff(self, a, b, *, stats=None):
        started = time.perf_counter()
        try:
            return _graph.graph_diff(a, b)
        finally:
            if stats is not None:
                stats.compares += 1
                stats.seconds += time.perf_counter() - started


class FingerprintBackend(StateBackend):
    """Digest summaries: equality is a 16-byte compare, diffs are lossy."""

    name = "fingerprint"
    lossy_diff = True
    #: Digest summaries are value-free tokens, so a per-campaign cache
    #: (:class:`repro.core.state.FingerprintCache`) may replay them
    #: between mutations; graph backends must not be cached this way.
    supports_digest_cache = True

    def capture(self, value, *, ignore_attrs=None, max_nodes=None, stats=None):
        started = time.perf_counter()
        try:
            return _fingerprint.fingerprint(
                value, ignore_attrs=ignore_attrs, max_nodes=max_nodes
            )
        finally:
            if stats is not None:
                stats.fingerprints += 1
                stats.seconds += time.perf_counter() - started

    def capture_frame(
        self, label_values, *, ignore_attrs=None, max_nodes=None, stats=None
    ):
        started = time.perf_counter()
        try:
            return _fingerprint.fingerprint_frame(
                label_values, ignore_attrs=ignore_attrs, max_nodes=max_nodes
            )
        finally:
            if stats is not None:
                stats.fingerprints += 1
                stats.seconds += time.perf_counter() - started

    def capture_frame_covered(
        self,
        label_values,
        *,
        ignore_attrs=None,
        max_nodes=None,
        stats=None,
        barriered=None,
    ):
        """Frame digest plus write-barrier coverage, one traversal.

        The digest is bit-identical to :meth:`capture_frame`'s; the
        second element reports whether every reachable object is
        barrier-covered (see
        :func:`~repro.core.state.fingerprint.fingerprint_frame_covered`).
        """
        started = time.perf_counter()
        try:
            return _fingerprint.fingerprint_frame_covered(
                label_values,
                ignore_attrs=ignore_attrs,
                max_nodes=max_nodes,
                barriered=barriered,
            )
        finally:
            if stats is not None:
                stats.fingerprints += 1
                stats.seconds += time.perf_counter() - started

    def diff(self, a, b, *, stats=None):
        started = time.perf_counter()
        try:
            if a == b:
                return None
            # A digest can witness that the state changed but not where.
            # Callers that need localization re-run the point under the
            # graph backend (run_injection_point's refinement pass).
            return _graph.GraphDifference(
                path="",
                reason=f"state fingerprint changed ({a} != {b})",
            )
        finally:
            if stats is not None:
                stats.compares += 1
                stats.seconds += time.perf_counter() - started


class UndoLogBackend(StateBackend):
    """Write-barrier undo logs for checkpointing; graph semantics otherwise.

    Requires :func:`repro.core.cow.install_write_barrier` on every class
    whose attribute writes must be undoable — the backend cannot verify
    that precondition, it is the caller's contract (documented limitation
    of the §6.2 copy-on-write strategy).
    """

    name = "undolog"
    wrapper_kind = "atomicity-undolog"

    _graph_delegate = GraphBackend()

    def capture(self, value, *, ignore_attrs=None, max_nodes=None, stats=None):
        return self._graph_delegate.capture(
            value, ignore_attrs=ignore_attrs, max_nodes=max_nodes, stats=stats
        )

    def capture_frame(
        self, label_values, *, ignore_attrs=None, max_nodes=None, stats=None
    ):
        return self._graph_delegate.capture_frame(
            label_values,
            ignore_attrs=ignore_attrs,
            max_nodes=max_nodes,
            stats=stats,
        )

    def diff(self, a, b, *, stats=None):
        return self._graph_delegate.diff(a, b, stats=stats)

    def checkpoint(
        self, *roots, ignore_attrs=None, max_objects=None, stats=None
    ):
        # Roots are implicit: the write barrier routes every attribute
        # write on barriered classes into the active log, whatever object
        # it lands on.  Cost at checkpoint time is therefore zero.
        if stats is not None:
            stats.captures += 1
        log = UndoLog()
        log.__enter__()
        return log

    def restore(self, cp: UndoLog) -> None:
        try:
            cp.rollback()
        finally:
            cp.__exit__(None, None, None)

    def commit(self, cp: UndoLog) -> None:
        # Exiting absorbs the log into any enclosing active log, keeping
        # nested-region rollback sound (see UndoLog.__exit__).
        cp.__exit__(None, None, None)

    def checkpoint_size(self, cp: UndoLog) -> int:
        return 0  # nothing is copied up front — that is the point

    def rollback_size(self, cp: UndoLog) -> int:
        return cp.recorded_writes


#: Singleton registry; backends are stateless so sharing instances is safe.
BACKENDS: Dict[str, StateBackend] = {
    backend.name: backend
    for backend in (GraphBackend(), FingerprintBackend(), UndoLogBackend())
}

#: The backends a detection campaign may use for before/after comparison.
#: (The undo-log backend is a *masking* strategy: it has no cheap summary
#: representation, so offering it on ``detect`` would silently run graph.)
DETECTION_BACKENDS: Tuple[str, ...] = ("graph", "fingerprint")


def get_backend(which: Union[str, StateBackend, None]) -> StateBackend:
    """Resolve a backend name (or pass an instance through).

    ``None`` resolves to the graph backend — the reference semantics.
    """
    if which is None:
        return BACKENDS["graph"]
    if isinstance(which, StateBackend):
        return which
    try:
        return BACKENDS[which]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise ValueError(
            f"unknown state backend {which!r} (known: {known})"
        ) from None
