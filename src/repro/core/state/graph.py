"""Object graphs and structural graph comparison (paper Definitions 1–2).

This module implements Definition 1 of the paper: an *object graph* is a
graph whose nodes are objects or instances of basic data types, where the
values of instance variables appear as labeled children, and where aliasing
is preserved — two references to the same object share a single node.

An :class:`ObjectGraph` is a fully materialized snapshot: it holds no
references to the live objects it was captured from, so it doubles as the
``deep_copy`` used by the paper's injection wrappers (Listing 1).  Failure
atomicity of a method is judged by comparing the graph captured before the
call with the graph captured when an exception propagates out
(Definition 2); :func:`graphs_equal` implements that comparison as a rooted
isomorphism check that respects edge labels, node types, scalar values, and
sharing structure.

Type introspection and the canonical child ordering live in
:mod:`repro.core.state.introspect`, shared with the fingerprint and
checkpoint backends so that all three agree on what "the reachable state"
is.  Historically this module was ``repro.core.objgraph``; that import
path remains as a re-export shim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .introspect import (
    KIND_BYTEARRAY,
    KIND_DEQUE,
    KIND_DICT,
    KIND_FRAME,
    KIND_FROZENSET,
    KIND_LIST,
    KIND_OBJECT,
    KIND_OPAQUE,
    KIND_SCALAR,
    KIND_SET,
    KIND_TUPLE,
    SCALAR_TYPES,
    CaptureLimitError,
    default_ignore,
    is_opaque,
    is_scalar,
    iter_children,
    kind_of,
    opaque_token,
    safe_repr,
    type_name,
)

__all__ = [
    "GraphNode",
    "ObjectGraph",
    "CaptureLimitError",
    "capture",
    "capture_frame",
    "graphs_equal",
    "graph_diff",
    "graph_diff_all",
    "GraphDifference",
    "SCALAR_TYPES",
    "is_scalar",
    "is_opaque",
]


@dataclass
class GraphNode:
    """A single node of an :class:`ObjectGraph`.

    Attributes:
        kind: one of the ``KIND_*`` tags (scalar, object, list, ...).
        type_name: qualified name of the runtime type of the value.
        value: the scalar value for ``scalar`` nodes, an identity token for
            ``opaque`` nodes, and ``None`` otherwise.
        edges: labeled edges to child node ids.  Labels are small tuples
            such as ``("attr", name)``, ``("index", i)``, ``("key", k)``.
    """

    kind: str
    type_name: str
    value: Any = None
    edges: List[Tuple[Tuple[str, Any], int]] = field(default_factory=list)


class ObjectGraph:
    """A materialized snapshot of the state reachable from a root object.

    The graph owns its nodes; it never references the live objects it was
    captured from.  Node 0 is always the root.
    """

    __slots__ = ("nodes", "root")

    def __init__(self) -> None:
        self.nodes: List[GraphNode] = []
        self.root: int = 0

    def add_node(self, node: GraphNode) -> int:
        self.nodes.append(node)
        return len(self.nodes) - 1

    def node(self, node_id: int) -> GraphNode:
        return self.nodes[node_id]

    def __len__(self) -> int:
        return len(self.nodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ObjectGraph):
            return NotImplemented
        return graphs_equal(self, other)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    # ObjectGraphs are mutable snapshots; keep them unhashable like lists.
    __hash__ = None  # type: ignore[assignment]

    def size(self) -> int:
        """Number of nodes in the graph."""
        return len(self.nodes)

    def describe(self, node_id: Optional[int] = None, depth: int = 2) -> str:
        """Human-readable sketch of the graph (for diagnostics)."""
        node_id = self.root if node_id is None else node_id
        lines: List[str] = []
        self._describe(node_id, depth, "", lines, set())
        return "\n".join(lines)

    def _describe(
        self,
        node_id: int,
        depth: int,
        indent: str,
        lines: List[str],
        seen: set,
    ) -> None:
        node = self.nodes[node_id]
        tag = f"{indent}#{node_id} {node.kind}:{node.type_name}"
        if node.kind == KIND_SCALAR:
            tag += f" = {node.value!r}"
        lines.append(tag)
        if node_id in seen or depth <= 0:
            return
        seen.add(node_id)
        for label, child in node.edges:
            lines.append(f"{indent}  [{label[0]}={safe_repr(label[1])}] ->")
            self._describe(child, depth - 1, indent + "    ", lines, seen)


class _Capturer:
    """Iterative, aliasing-preserving graph capture.

    The traversal is explicit-stack based so that deep structures such as
    long linked lists do not exhaust the interpreter recursion limit.
    """

    def __init__(
        self,
        ignore_attrs: Callable[[str], bool],
        max_nodes: Optional[int] = None,
    ) -> None:
        self._graph = ObjectGraph()
        self._seen: Dict[int, int] = {}  # id(obj) -> node id
        self._ignore_attrs = ignore_attrs
        self._max_nodes = max_nodes
        # Keep captured objects alive for the duration of the capture so
        # id() values stay unique.
        self._pins: List[Any] = []

    def capture(self, value: Any) -> ObjectGraph:
        self._graph.root = self._visit(value)
        return self._graph

    def capture_many(self, label_values: Iterable[Tuple[Any, Any]]) -> ObjectGraph:
        """Capture several roots under a synthetic frame node.

        *label_values* yields ``(label_key, value)`` pairs; each becomes a
        labeled edge from the frame root.  Used for capturing a receiver
        together with its mutable arguments.
        """
        frame = GraphNode(kind=KIND_FRAME, type_name="<frame>")
        root_id = self._graph.add_node(frame)
        self._graph.root = root_id
        for key, value in label_values:
            child = self._visit(value)
            frame.edges.append((("slot", key), child))
        return self._graph

    # -- traversal ---------------------------------------------------

    def _visit(self, value: Any) -> int:
        """Capture *value*, returning its node id (two-phase, iterative)."""
        pending: List[Tuple[Any, int]] = []
        node_id = self._enter(value, pending)
        while pending:
            obj, nid = pending.pop()
            self._expand(obj, nid, pending)
        return node_id

    def _enter(self, value: Any, pending: List[Tuple[Any, int]]) -> int:
        """Create (or reuse) a node for *value*; queue expansion if needed."""
        if self._max_nodes is not None and len(self._graph) >= self._max_nodes:
            raise CaptureLimitError(
                f"object graph exceeds {self._max_nodes} nodes"
            )
        if is_scalar(value):
            # Scalars are compared by value; interning makes identity
            # meaningless, so each occurrence gets its own leaf node.
            node = GraphNode(
                kind=KIND_SCALAR, type_name=type(value).__name__, value=value
            )
            return self._graph.add_node(node)
        oid = id(value)
        if oid in self._seen:
            return self._seen[oid]
        if is_opaque(value):
            node = GraphNode(
                kind=KIND_OPAQUE,
                type_name=type(value).__name__,
                value=opaque_token(value),
            )
            nid = self._graph.add_node(node)
            self._seen[oid] = nid
            self._pins.append(value)
            return nid
        kind = kind_of(value)
        node = GraphNode(kind=kind, type_name=type_name(value))
        nid = self._graph.add_node(node)
        self._seen[oid] = nid
        self._pins.append(value)
        pending.append((value, nid))
        return nid

    def _expand(self, obj: Any, nid: int, pending: List[Tuple[Any, int]]) -> None:
        node = self._graph.nodes[nid]
        if node.kind == KIND_BYTEARRAY:
            node.value = bytes(obj)
            return
        for label, child_value in iter_children(
            obj, node.kind, self._ignore_attrs
        ):
            child = self._enter(child_value, pending)
            node.edges.append((label, child))


def capture(
    value: Any,
    *,
    ignore_attrs: Optional[Callable[[str], bool]] = None,
    max_nodes: Optional[int] = None,
) -> ObjectGraph:
    """Capture the object graph rooted at *value* (paper Definition 1).

    The returned graph is a fully materialized snapshot: mutating *value*
    afterwards does not affect it, which is what lets the injection wrapper
    use it as the ``deep_copy`` of Listing 1.

    Args:
        max_nodes: optional node budget; exceeding it raises
            :class:`CaptureLimitError` instead of stalling on a huge graph.
    """
    return _Capturer(ignore_attrs or default_ignore, max_nodes).capture(value)


def capture_frame(
    label_values: Iterable[Tuple[Any, Any]],
    *,
    ignore_attrs: Optional[Callable[[str], bool]] = None,
    max_nodes: Optional[int] = None,
) -> ObjectGraph:
    """Capture several labeled roots under one synthetic frame node.

    Used to snapshot a receiver together with its mutable arguments (the
    paper includes "arguments passed in as non-constant references" in the
    injection wrapper's copy).
    """
    return _Capturer(ignore_attrs or default_ignore, max_nodes).capture_many(
        label_values
    )


@dataclass
class GraphDifference:
    """First structural difference found between two graphs."""

    path: str
    reason: str

    def __str__(self) -> str:
        return f"at {self.path or '<root>'}: {self.reason}"


def graphs_equal(a: ObjectGraph, b: ObjectGraph) -> bool:
    """True if the two graphs are structurally identical.

    Equality is rooted isomorphism: same node kinds, types, scalar values,
    edge labels, and — crucially — the same *sharing* structure.  A method
    that replaces a shared child with an equal-valued private copy changes
    the graph and is therefore failure non-atomic under Definition 2.
    """
    return graph_diff(a, b) is None


def graph_diff(a: ObjectGraph, b: ObjectGraph) -> Optional[GraphDifference]:
    """Return the first difference between graphs, or None if equal."""
    differences = graph_diff_all(a, b, limit=1)
    return differences[0] if differences else None


def graph_diff_all(
    a: ObjectGraph, b: ObjectGraph, *, limit: int = 10
) -> List[GraphDifference]:
    """Collect up to *limit* structural differences between two graphs.

    Unlike :func:`graph_diff`, traversal continues past a mismatching
    subtree (the mismatching pair is simply not descended into), so the
    report shows every independently corrupted region — useful when
    deciding whether a non-atomic method has one defect or several.
    """
    differences: List[GraphDifference] = []
    # Parallel BFS maintaining a bijection between mutable node ids.
    a_to_b: Dict[int, int] = {}
    b_to_a: Dict[int, int] = {}
    queue: List[Tuple[int, int, str]] = [(a.root, b.root, "")]

    def note(path: str, reason: str) -> bool:
        """Record a difference; return True when the limit is reached."""
        differences.append(GraphDifference(path, reason))
        return len(differences) >= limit

    while queue:
        na_id, nb_id, path = queue.pop()
        na = a.nodes[na_id]
        nb = b.nodes[nb_id]
        if na.kind == KIND_SCALAR or nb.kind == KIND_SCALAR:
            diff = _compare_scalars(na, nb, path)
            if diff is not None and note(diff.path, diff.reason):
                return differences
            continue
        mapped = a_to_b.get(na_id)
        if mapped is not None:
            if mapped != nb_id and note(path, "sharing structure differs"):
                return differences
            continue  # already compared through another path
        if nb_id in b_to_a:
            if note(path, "sharing structure differs"):
                return differences
            continue
        a_to_b[na_id] = nb_id
        b_to_a[nb_id] = na_id
        if na.kind != nb.kind:
            if note(path, f"kind {na.kind} != {nb.kind}"):
                return differences
            continue
        if na.type_name != nb.type_name:
            if note(path, f"type {na.type_name} != {nb.type_name}"):
                return differences
            continue
        if na.kind in (KIND_OPAQUE, KIND_BYTEARRAY) and na.value != nb.value:
            if note(path, f"value {na.value!r} != {nb.value!r}"):
                return differences
            continue
        if len(na.edges) != len(nb.edges):
            if note(
                path, f"child count {len(na.edges)} != {len(nb.edges)}"
            ):
                return differences
            continue
        labels_match = True
        for (label_a, _), (label_b, _) in zip(na.edges, nb.edges):
            if label_a != label_b:
                labels_match = False
                # safe_repr: a dict-key label embeds the raw key object,
                # whose __repr__ may raise — the diff must not.
                if note(
                    path,
                    f"edge label {safe_repr(label_a)} != {safe_repr(label_b)}",
                ):
                    return differences
                break
        if not labels_match:
            continue
        for (label_a, child_a), (_, child_b) in zip(na.edges, nb.edges):
            queue.append(
                (child_a, child_b, f"{path}/{label_a[0]}={safe_repr(label_a[1])}")
            )
    return differences


def _compare_scalars(
    na: GraphNode, nb: GraphNode, path: str
) -> Optional[GraphDifference]:
    if na.kind != nb.kind:
        return GraphDifference(path, f"kind {na.kind} != {nb.kind}")
    if na.type_name != nb.type_name:
        return GraphDifference(path, f"type {na.type_name} != {nb.type_name}")
    va, vb = na.value, nb.value
    # bool is an int subclass; type_name already separated them.  NaN is
    # deliberately equal to itself here: the *state* did not change.
    if va != vb and not (va != va and vb != vb):
        return GraphDifference(path, f"value {va!r} != {vb!r}")
    return None
