"""Structural state fingerprints — graph equality in one digest compare.

:func:`fingerprint` reduces the object graph reachable from a root to a
128-bit digest in a **single traversal**, such that

    ``fingerprint(a) == fingerprint(b)``  ⇔  ``graphs_equal(capture(a),
    capture(b))``

The right-hand side is the paper's Definition-2 comparison — rooted
isomorphism over kinds, types, scalar values, edge labels, and sharing
structure.  The equivalence holds because the digest is a hash of a
*canonical serialization* of exactly the structure that comparison
inspects:

* the traversal visits children in the canonical order of
  :func:`repro.core.state.introspect.iter_children` — the same code the
  graph capturer uses, so both sides agree on edge order byte for byte;
* aliasing is captured by canonical node numbering: every non-scalar
  object gets an id in first-visit order, and later references serialize
  as a back-reference to that id instead of re-serializing the subtree
  (this is what makes two graphs with different *sharing* hash
  differently even when their unfolded trees agree — and what keeps the
  traversal linear on DAGs and terminating on cycles);
* scalar values serialize under the comparison's value semantics, not
  ``repr``: NaN equals NaN, ``-0.0`` equals ``0.0``, and ``bool``/``int``
  stay separated by their type tag.

Detection campaigns use the digest as a fast path: "did the state
change?" becomes a 16-byte comparison instead of materializing and
walking two full graphs.  The digest cannot *explain* a difference — the
:class:`~repro.core.state.backend.FingerprintBackend` falls back to a
full graph capture + diff when digests disagree and diagnostics are
wanted.

Within one digest size the hash is Merkle-style, not injective: distinct
graphs could in principle collide.  With a 128-bit BLAKE2 digest the
collision probability is ~2⁻⁶⁴ per pair — far below the noise floor of a
fault-injection experiment (the test suite includes a seeded
collision-resistance smoke over thousands of distinct graphs).
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .introspect import (
    KIND_BYTEARRAY,
    KIND_FROZENSET,
    KIND_OBJECT,
    KIND_TUPLE,
    CaptureLimitError,
    default_ignore,
    is_opaque,
    is_scalar,
    iter_children,
    kind_of,
    opaque_token,
    slot_names,
    type_name,
)

__all__ = [
    "StateFingerprint",
    "fingerprint",
    "fingerprint_frame",
    "fingerprint_frame_covered",
    "DIGEST_BITS",
]

#: Digest width: 128 bits (16 bytes), rendered as 32 hex characters.
DIGEST_BITS = 128

#: Serialization format version, mixed into every digest.  Bump whenever
#: the encoding changes so stale digests can never compare equal to new
#: ones by accident.
_FORMAT_TAG = b"repro-state-fp:1\x00"


class StateFingerprint(str):
    """A 128-bit structural state digest (hex-rendered).

    A plain ``str`` subclass: digests compare, hash, sort, and serialize
    like strings (journals and JSON reports need no special casing), but
    the distinct type documents what the value *is* in signatures.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # diagnostics show the short prefix
        return f"<fp {self[:12]}…>" if len(self) > 12 else f"<fp {str(self)}>"


def _encode_str(text: str) -> bytes:
    data = text.encode("utf-8", "surrogatepass")
    return b"%d:" % len(data) + data


def _encode_bytes(data: bytes) -> bytes:
    return b"%d;" % len(data) + data


def _encode_scalar_value(value: Any) -> bytes:
    """Encode a scalar *value* under graph-comparison equality semantics.

    Two scalars of the same type name must encode equal iff the graph
    comparison would find them equal: NaN == NaN (the state did not
    change), -0.0 == 0.0, and numeric subclasses compare by value.
    """
    if value is None:
        return b"z"
    if isinstance(value, bool):
        return b"b1" if value else b"b0"
    if isinstance(value, int):
        return b"i" + str(int(value)).encode("ascii")
    if isinstance(value, float):
        v = float(value)
        if v != v:
            return b"fnan"
        if v == 0.0:
            v = 0.0  # collapse -0.0 onto 0.0: they compare equal
        return b"f" + repr(v).encode("ascii")
    if isinstance(value, complex):
        c = complex(value)
        if c != c:
            return b"cnan"  # any NaN component: equal to every NaN complex
        re = 0.0 if c.real == 0.0 else c.real
        im = 0.0 if c.imag == 0.0 else c.imag
        return b"c" + repr(re).encode("ascii") + b"," + repr(im).encode("ascii")
    if isinstance(value, str):
        return b"s" + _encode_str(value)
    if isinstance(value, bytes):
        return b"y" + _encode_bytes(value)
    raise TypeError(f"not a scalar: {type(value).__name__}")  # pragma: no cover


def _encode_label_part(part: Any) -> bytes:
    """Encode one component of an edge label under tuple-``==`` semantics.

    Graph comparison matches labels with plain tuple equality, where
    ``True == 1`` and ``-0.0 == 0.0``; the encoding collapses exactly the
    values tuple equality collapses.
    """
    if isinstance(part, tuple):
        return b"(" + b"".join(_encode_label_part(p) for p in part) + b")"
    if isinstance(part, str):
        return b"s" + _encode_str(part)
    if isinstance(part, bool) or isinstance(part, int):
        # bool collapses onto int deliberately: ("index", True) == ("index", 1)
        return b"i" + str(int(part)).encode("ascii")
    if part is None:
        return b"z"
    if isinstance(part, float):
        if part != part:
            return b"fnan"
        if part == 0.0:
            return b"f0.0"
        if part == int(part):
            # 2.0 == 2 under tuple equality; collapse onto the int encoding
            return b"i" + str(int(part)).encode("ascii")
        return b"f" + repr(part).encode("ascii")
    if isinstance(part, bytes):
        return b"y" + _encode_bytes(part)
    if isinstance(part, complex):
        return b"c" + repr(part).encode("ascii")
    # Labels are generated by the capture machinery; anything else would
    # be a new label scheme. Fall back to repr rather than failing a run.
    return b"r" + _encode_str(repr(part))


#: Encoded-label memo.  Labels repeat enormously across a campaign
#: (``("attr", "next")`` once per list node per capture), and label
#: equality under dict lookup is tuple ``==`` — exactly the equivalence
#: the encoding collapses (``True``/``1``, ``2.0``/``2``), so a cache hit
#: can never return a wrong encoding.  Bounded so fuzz campaigns with
#: unbounded label vocabularies cannot grow it without limit.
_LABEL_CACHE: Dict[Any, bytes] = {}
_LABEL_CACHE_MAX = 8192


def _encode_label(label: Tuple[str, Any]) -> bytes:
    try:
        cached = _LABEL_CACHE.get(label)
    except TypeError:  # unhashable component; encode directly
        return b"L" + _encode_label_part(label)
    if cached is None:
        cached = b"L" + _encode_label_part(label)
        if len(cached) <= 128 and len(_LABEL_CACHE) < _LABEL_CACHE_MAX:
            _LABEL_CACHE[label] = cached
    return cached


#: Fused header+payload encoders for the seven *exact* scalar types —
#: the single hottest node shape.  Each returns exactly the bytes the
#: generic path (``S`` + type name + payload) would produce.
_SCALAR_FAST: Dict[type, Callable[[Any], bytes]] = {
    type(None): lambda value: b"S8:NoneTypez",
    bool: lambda value: b"S4:boolb1" if value else b"S4:boolb0",
    int: lambda value: b"S3:inti%d" % value,
    float: lambda value: b"S5:float" + _encode_scalar_value(value),
    complex: lambda value: b"S7:complex" + _encode_scalar_value(value),
    str: lambda value: b"S3:strs" + _encode_str(value),
    bytes: lambda value: b"S5:bytesy" + _encode_bytes(value),
}

#: Attribute- and index-label encodings, keyed directly by name/position
#: so the hot paths skip the label-tuple allocation entirely.
_ATTR_LABELS: Dict[str, bytes] = {}


def _attr_label(name: str) -> bytes:
    cached = _ATTR_LABELS.get(name)
    if cached is None:
        cached = _encode_label(("attr", name))
        if len(cached) <= 128 and len(_ATTR_LABELS) < _LABEL_CACHE_MAX:
            _ATTR_LABELS[name] = cached
    return cached


_INDEX_LABELS: List[bytes] = []


def _index_label(index: int) -> bytes:
    try:
        return _INDEX_LABELS[index]
    except IndexError:
        pass
    if index < 4096:
        while len(_INDEX_LABELS) <= index:
            _INDEX_LABELS.append(
                _encode_label(("index", len(_INDEX_LABELS)))
            )
        return _INDEX_LABELS[index]
    return _encode_label(("index", index))


_CAT_SCALAR, _CAT_OPAQUE, _CAT_NODE = 0, 1, 2

#: Per-type dispatch memo: ``type -> (category, preencoded header, kind)``.
#: Scalar-ness, opaqueness, kind, and type name are all functions of the
#: exact runtime type, so the isinstance chains and string encodings run
#: once per distinct type instead of once per node.  Bounded because fuzz
#: runs synthesize classes without limit.
_TYPE_INFO: Dict[type, Tuple[int, bytes, Optional[str]]] = {}
_TYPE_INFO_MAX = 4096


def _type_info(tp: type, sample: Any) -> Tuple[int, bytes, Optional[str]]:
    info = _TYPE_INFO.get(tp)
    if info is None:
        if is_scalar(sample):
            info = (_CAT_SCALAR, b"S" + _encode_str(tp.__name__), None)
        elif is_opaque(sample):
            info = (_CAT_OPAQUE, b"O" + _encode_str(tp.__name__), None)
        else:
            kind = kind_of(sample)
            header = b"N" + _encode_str(kind) + _encode_str(type_name(sample))
            info = (_CAT_NODE, header, kind)
        if len(_TYPE_INFO) < _TYPE_INFO_MAX:
            _TYPE_INFO[tp] = info
    return info


#: Flush the serialization buffer to the hasher once it crosses this
#: size: the buffer stays cache-resident and never reallocates toward
#: graph-sized peaks, while the hasher still sees few, large updates.
_FLUSH_BYTES = 1 << 16


class _Fingerprinter:
    """One-pass canonical-serialization hasher (iterative, cycle-safe)."""

    def __init__(
        self,
        ignore_attrs: Callable[[str], bool],
        max_nodes: Optional[int] = None,
        barriered: Optional[Iterable[type]] = None,
    ) -> None:
        self._hasher = hashlib.blake2b(digest_size=DIGEST_BITS // 8)
        self._hasher.update(_FORMAT_TAG)
        self._seen: Dict[int, int] = {}  # id(obj) -> canonical node number
        self._ignore_attrs = ignore_attrs
        self._max_nodes = max_nodes
        self._count = 0  # nodes serialized, mirrors ObjectGraph node count
        # Pin visited objects so id() values stay unique mid-traversal.
        self._pins: List[Any] = []
        # Serialization accumulates here and drains to the hasher in
        # large zero-copy (memoryview) batches: thousands of tiny
        # hasher.update calls cost more than the buffering.
        self._buffer = bytearray()
        # Optional write-barrier coverage tracking, fused into the same
        # traversal (same rules as tracepass.recorder.barrier_covered):
        # when a type set is supplied, ``covered`` ends True iff every
        # reachable object is scalar, opaque, an exact tuple/frozenset,
        # or an instance of a barriered class — i.e. iff any later
        # mutation of the serialized state must pass a write barrier.
        self._barriered = set(barriered) if barriered is not None else None
        self.covered = barriered is not None

    def _flush(self) -> None:
        buffer = self._buffer
        if buffer:
            with memoryview(buffer) as view:
                self._hasher.update(view)
            del buffer[:]

    def digest(self) -> StateFingerprint:
        self._flush()
        return StateFingerprint(self._hasher.hexdigest())

    def add_frame(self, label_values: Iterable[Tuple[Any, Any]]) -> None:
        """Serialize a synthetic frame node over several labeled roots."""
        self._budget_check()
        self._count += 1
        self._buffer += b"F<frame>"
        for key, value in label_values:
            self._buffer += _encode_label(("slot", key))
            self.add_value(value)

    def add_value(self, value: Any) -> None:
        """Serialize the subgraph rooted at *value* (explicit stack DFS)."""
        buffer = self._buffer
        feed = buffer.extend
        hasher_update = self._hasher.update
        seen = self._seen
        pin = self._pins.append
        ignore_attrs = self._ignore_attrs
        max_nodes = self._max_nodes
        barriered = self._barriered
        covered = self.covered
        count = self._count
        stack: List[Tuple[bool, Any]] = [(False, value)]
        pop = stack.pop
        push = stack.append
        scalar_fast = _SCALAR_FAST
        try:
            while stack:
                if len(buffer) >= _FLUSH_BYTES:
                    with memoryview(buffer) as view:
                        hasher_update(view)
                    del buffer[:]
                is_token, item = pop()
                if is_token:
                    feed(item)
                    continue
                # Budget semantics mirror the graph capturer: the check
                # runs once per visited edge target, scalars and
                # back-references included, against the running count.
                if max_nodes is not None and count >= max_nodes:
                    raise CaptureLimitError(
                        f"object graph exceeds {max_nodes} nodes"
                    )
                tp = type(item)
                encoder = scalar_fast.get(tp)
                if encoder is not None:
                    count += 1
                    feed(encoder(item))
                    continue
                category, header, kind = _type_info(tp, item)
                if category == _CAT_SCALAR:  # scalar subclass (enums, ...)
                    count += 1
                    feed(header)
                    feed(_encode_scalar_value(item))
                    continue
                oid = id(item)
                canonical = seen.get(oid)
                if canonical is not None:
                    feed(b"R%d" % canonical)
                    continue
                count += 1
                seen[oid] = len(seen)
                pin(item)
                feed(header)
                if category == _CAT_OPAQUE:
                    feed(_encode_str(opaque_token(item)))
                    continue
                if barriered is not None:
                    # barrier_covered's rules, fused into the traversal:
                    # mutable nodes must be instances of barriered
                    # classes; immutable shells (tuple/frozenset) pass.
                    if kind == KIND_OBJECT:
                        if tp not in barriered:
                            covered = False
                    elif kind != KIND_TUPLE and kind != KIND_FROZENSET:
                        covered = False
                if tp is list or tp is tuple:
                    # Exact builtin sequences: index-labeled items, no
                    # instance attributes — the generic path would yield
                    # exactly these children.  Leading runs of exact
                    # scalars are emitted inline (no stack round-trip).
                    size = len(item)
                    feed(b"E%d" % size)
                    position = 0
                    while position < size:
                        child = item[position]
                        encoder = scalar_fast.get(type(child))
                        if encoder is None:
                            break
                        if max_nodes is not None and count >= max_nodes:
                            raise CaptureLimitError(
                                f"object graph exceeds {max_nodes} nodes"
                            )
                        count += 1
                        feed(_index_label(position))
                        feed(encoder(child))
                        position += 1
                    for rest in range(size - 1, position - 1, -1):
                        push((False, item[rest]))
                        push((True, _index_label(rest)))
                    continue
                if kind == KIND_OBJECT:
                    obj_dict = getattr(item, "__dict__", None)
                    if type(obj_dict) is dict and not slot_names(tp):
                        # Plain-__dict__ instances: attr-labeled values
                        # in sorted name order, same as the generic path.
                        names = [
                            name
                            for name in obj_dict
                            if not ignore_attrs(name)
                        ]
                        names.sort()
                        total = len(names)
                        feed(b"E%d" % total)
                        position = 0
                        while position < total:
                            child = obj_dict[names[position]]
                            encoder = scalar_fast.get(type(child))
                            if encoder is None:
                                break
                            if max_nodes is not None and count >= max_nodes:
                                raise CaptureLimitError(
                                    f"object graph exceeds {max_nodes} nodes"
                                )
                            count += 1
                            feed(_attr_label(names[position]))
                            feed(encoder(child))
                            position += 1
                        for rest in range(total - 1, position - 1, -1):
                            push((False, obj_dict[names[rest]]))
                            push((True, _attr_label(names[rest])))
                        continue
                elif kind == KIND_BYTEARRAY:
                    feed(_encode_bytes(bytes(item)))
                    continue
                children = list(iter_children(item, kind, ignore_attrs))
                feed(b"E%d" % len(children))
                for label, child in reversed(children):
                    push((False, child))
                    push((True, _encode_label(label)))
        finally:
            self._count = count
            self.covered = covered

    def _budget_check(self) -> None:
        if self._max_nodes is not None and self._count >= self._max_nodes:
            raise CaptureLimitError(
                f"object graph exceeds {self._max_nodes} nodes"
            )


def fingerprint(
    value: Any,
    *,
    ignore_attrs: Optional[Callable[[str], bool]] = None,
    max_nodes: Optional[int] = None,
) -> StateFingerprint:
    """Digest the object graph rooted at *value* in one traversal.

    Args:
        ignore_attrs: attribute filter, identical semantics to
            :func:`repro.core.state.graph.capture`.
        max_nodes: optional node budget; exceeding it raises
            :class:`~repro.core.state.introspect.CaptureLimitError`, never
            returns a digest of partial state.
    """
    hasher = _Fingerprinter(ignore_attrs or default_ignore, max_nodes)
    hasher.add_value(value)
    return hasher.digest()


def fingerprint_frame(
    label_values: Iterable[Tuple[Any, Any]],
    *,
    ignore_attrs: Optional[Callable[[str], bool]] = None,
    max_nodes: Optional[int] = None,
) -> StateFingerprint:
    """Digest several labeled roots under one synthetic frame node.

    The frame-node shape matches
    :func:`repro.core.state.graph.capture_frame`, so a frame fingerprint
    equals another frame fingerprint iff the corresponding frame captures
    are :func:`~repro.core.state.graph.graphs_equal`.
    """
    hasher = _Fingerprinter(ignore_attrs or default_ignore, max_nodes)
    hasher.add_frame(label_values)
    return hasher.digest()


def fingerprint_frame_covered(
    label_values: Iterable[Tuple[Any, Any]],
    *,
    ignore_attrs: Optional[Callable[[str], bool]] = None,
    max_nodes: Optional[int] = None,
    barriered: Optional[Iterable[type]] = None,
) -> Tuple[StateFingerprint, bool]:
    """Digest labeled roots and report write-barrier coverage.

    Identical digest to :func:`fingerprint_frame` (the coverage check is
    fused into the same traversal and feeds no bytes to the hasher).
    The second element is True iff every reachable object is immutable,
    opaque, or an instance of one of the *barriered* classes — the
    precondition for the digest cache to trust its version counter
    (every later mutation of this state must cross a write barrier).
    """
    hasher = _Fingerprinter(
        ignore_attrs or default_ignore, max_nodes, barriered=barriered
    )
    hasher.add_frame(label_values)
    return hasher.digest(), hasher.covered
