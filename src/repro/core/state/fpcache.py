"""Per-campaign fingerprint digest cache (ROADMAP item 5 hot path).

A detection sweep fingerprints the same receiver graph over and over:
every wrapped entry takes a before-capture, and most runs visit the
same handful of objects hundreds of times while mutating them rarely.
This module memoizes frame digests between mutations, with the §6.2
write barrier as the invalidation oracle:

* a :class:`_VersionSink` sits at the *bottom* of the copy-on-write
  active-log stack for the whole sweep; every barriered attribute
  write (or absorbed undo-log region) bumps one version counter;
* an entry is stored only when the fingerprint traversal proved the
  captured state *barrier-covered* (every reachable object immutable,
  opaque, or an instance of a barriered class — the same rule the
  trace pass uses in :func:`~repro.core.tracepass.recorder.
  barrier_covered`), so any later mutation of that state must cross a
  barrier and bump the version;
* a hit additionally requires that the sink is still the innermost
  barrier sink (an open undo-log region diverts events, so the cache
  stands down inside one) and that every cached root is the *same
  live object* — entries hold weakrefs and compare ``ref() is root``,
  which rules out stale hits through ``id()`` reuse after collection.

Every guard failure degrades to a plain recompute; the cache can be
wrong in no direction, only useless.  The state-backend benchmark
asserts bit-identical campaign output cached vs uncached, and the
conformance/fuzz oracles sweep with the cache enabled.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..cow import (
    _BARRIER_ATTR,
    active_log_top,
    install_write_barrier,
    pop_active_log,
    push_active_log,
    remove_write_barrier,
)

__all__ = ["FingerprintCache"]

#: Entry-count bound; crossing it drops the whole table (epoch reset) —
#: cheap, and unbounded fuzz campaigns cannot grow the cache forever.
_MAX_ENTRIES = 4096


class _VersionSink:
    """Write-barrier sink that counts mutations (no undo data).

    Duck-types the active-log protocol: ``record`` receives direct
    barrier events while the sink is innermost, ``absorb`` receives the
    commit of any undo-log region opened above it.  Both only bump the
    campaign-wide version counter — over-counting is harmless (a spare
    miss), under-counting would be unsound, and absorb counts even
    rolled-back regions for exactly that reason.
    """

    __slots__ = ("_cache",)

    def __init__(self, cache: "FingerprintCache") -> None:
        self._cache = cache

    def record(self, obj: Any, name: str) -> None:
        self._cache.version += 1

    def absorb(self, child: Any) -> None:
        self._cache.version += 1


class FingerprintCache:
    """Frame-digest memo keyed on root identity, versioned by writes."""

    def __init__(self) -> None:
        self.version = 0
        self.hits = 0
        self.misses = 0
        #: Captures that could not even consult the cache because the
        #: sink was not the innermost barrier sink (open undo-log
        #: region); they recompute without storing.
        self.bypasses = 0
        self.barriered: set = set()
        self._sink = _VersionSink(self)
        # key -> (version, digest, weakrefs-to-roots)
        self._entries: Dict[Tuple, Tuple[int, Any, Tuple]] = {}
        self._installed: List[type] = []
        self._active = False

    # -- lifecycle -----------------------------------------------------

    def start(self, classes: Iterable[type]) -> None:
        """Install barriers on *classes* and arm the version sink."""
        if self._active:
            raise RuntimeError("FingerprintCache already started")
        for cls in set(classes):
            if _BARRIER_ATTR not in vars(cls):
                install_write_barrier(cls)
                self._installed.append(cls)
            self.barriered.add(cls)
        push_active_log(self._sink)
        self._active = True

    def stop(self) -> None:
        """Disarm the sink and remove the barriers this cache added."""
        if not self._active:
            return
        pop_active_log(self._sink)
        for cls in self._installed:
            remove_write_barrier(cls)
        self._installed = []
        self._active = False

    def __enter__(self) -> "FingerprintCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- capture -------------------------------------------------------

    def capture(
        self,
        backend: Any,
        roots: List[Tuple[Any, Any]],
        *,
        ignore_attrs: Optional[Callable[[str], bool]],
        max_nodes: Optional[int],
        stats: Any,
    ) -> Any:
        """Frame capture through the cache; falls back to *backend*.

        Returns exactly what ``backend.capture_frame`` would return for
        the same roots: a hit replays a digest stored for the identical
        live objects with zero barrier events in between.
        """
        if active_log_top() is not self._sink:
            self.bypasses += 1
            return backend.capture_frame(
                roots,
                ignore_attrs=ignore_attrs,
                max_nodes=max_nodes,
                stats=stats,
            )
        key = tuple((label, id(value)) for label, value in roots)
        entry = self._entries.get(key)
        if entry is not None:
            version, digest, refs = entry
            if version == self.version and all(
                ref() is value
                for ref, (_, value) in zip(refs, roots)
            ):
                self.hits += 1
                return digest
        self.misses += 1
        digest, covered = backend.capture_frame_covered(
            roots,
            ignore_attrs=ignore_attrs,
            max_nodes=max_nodes,
            stats=stats,
            barriered=self.barriered,
        )
        if covered:
            try:
                refs = tuple(
                    weakref.ref(value) for _, value in roots
                )
            except TypeError:
                pass  # non-weakrefable root: stays uncacheable
            else:
                if len(self._entries) >= _MAX_ENTRIES:
                    self._entries.clear()
                self._entries[key] = (self.version, digest, refs)
        return digest

    def to_dict(self) -> Dict[str, int]:
        """Telemetry counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
        }
