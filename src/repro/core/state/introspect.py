"""Shared type introspection for every state backend.

The state layer has three ways of materializing "the state reachable from
an object" — the full :mod:`graph <repro.core.state.graph>` snapshot, the
in-place :mod:`checkpoint <repro.core.state.checkpoint>`, and the
:mod:`fingerprint <repro.core.state.fingerprint>` digest.  All three must
agree *exactly* on the questions answered here:

* which values are scalars (leaf nodes compared by value),
* which values are opaque (classes, functions, modules — identity leaves),
* which ``__slots__`` an instance carries,
* what kind a container is, and
* in what canonical order a value's children are visited.

Before this module existed those answers were private helpers inside
``objgraph.py`` that ``snapshot.py`` reached into (``_slot_names``); they
are now public API so no backend needs an underscore import.  The child
iteration order in :func:`iter_children` is the single source of truth:
the fingerprint of a value equals the fingerprint of another value if and
only if their captured object graphs are equal, *because* both traversals
share this code.
"""

from __future__ import annotations

import collections as _collections
import types as _types
from typing import Any, Callable, Iterator, List, Tuple

__all__ = [
    "SCALAR_TYPES",
    "KIND_SCALAR",
    "KIND_OBJECT",
    "KIND_LIST",
    "KIND_TUPLE",
    "KIND_DICT",
    "KIND_SET",
    "KIND_FROZENSET",
    "KIND_BYTEARRAY",
    "KIND_DEQUE",
    "KIND_OPAQUE",
    "KIND_FRAME",
    "CaptureLimitError",
    "is_scalar",
    "is_opaque",
    "slot_names",
    "type_name",
    "opaque_token",
    "safe_repr",
    "scalar_sort_key",
    "default_ignore",
    "kind_of",
    "iter_children",
]


class CaptureLimitError(RuntimeError):
    """The reachable state exceeded the configured node budget.

    Capturing an unexpectedly huge reachable state (the paper notes
    "there is no upper bound on the size of objects", Section 6.2) is
    usually a sign the wrong class was instrumented; the optional
    ``max_nodes`` budget turns a silent multi-second stall into an
    explicit error.  Raised by graph captures and fingerprints alike, so
    the campaign's no-partial-state guarantee holds under every backend.
    """


#: Types treated as *basic data types* (leaf nodes compared by value).
SCALAR_TYPES = (
    type(None),
    bool,
    int,
    float,
    complex,
    str,
    bytes,
)

#: Kind tags shared by graph nodes and fingerprint records.
KIND_SCALAR = "scalar"
KIND_OBJECT = "object"
KIND_LIST = "list"
KIND_TUPLE = "tuple"
KIND_DICT = "dict"
KIND_SET = "set"
KIND_FROZENSET = "frozenset"
KIND_BYTEARRAY = "bytearray"
KIND_DEQUE = "deque"
KIND_OPAQUE = "opaque"
KIND_FRAME = "frame"

#: isinstance-ordered container dispatch: subclasses of the builtin
#: containers (OrderedDict, defaultdict, user list subclasses, ...) are
#: captured as their container kind *plus* any instance attributes they
#: carry.  bool-before-int style pitfalls do not arise here because the
#: builtin container types are disjoint.
_CONTAINER_DISPATCH = (
    (list, KIND_LIST),
    (tuple, KIND_TUPLE),
    (dict, KIND_DICT),
    (set, KIND_SET),
    (frozenset, KIND_FROZENSET),
    (_collections.deque, KIND_DEQUE),
)

_FunctionTypes = (
    _types.FunctionType,
    _types.BuiltinFunctionType,
    _types.MethodType,
    _types.BuiltinMethodType,
    staticmethod,
    classmethod,
    property,
)


def is_scalar(value: Any) -> bool:
    """Return True if *value* is an instance of a basic data type."""
    return isinstance(value, SCALAR_TYPES)


def is_opaque(value: Any) -> bool:
    """Return True if *value* should be treated as an opaque leaf.

    Opaque values are runtime entities that are not part of an object's
    logical state: classes, functions, modules, and the like.  They are
    compared by identity and never traversed.  This mirrors the paper's
    scoping of object graphs to instance state (Section 3) and its
    external-side-effect limitation (Section 4.4).
    """
    return isinstance(value, (type, _FunctionTypes)) or isinstance(
        value, _types.ModuleType
    )


#: ``__slots__`` are fixed at class creation, so the MRO walk caches per
#: class.  Bounded because fuzz campaigns synthesize classes freely.
_SLOT_CACHE: dict = {}
_SLOT_CACHE_MAX = 2048


def slot_names(cls: type) -> Tuple[str, ...]:
    """Collect slot names across the MRO of *cls* (cached per class)."""
    cached = _SLOT_CACHE.get(cls)
    if cached is not None:
        return cached
    names: List[str] = []
    for klass in cls.__mro__:
        slots = klass.__dict__.get("__slots__")
        if slots is None:
            continue
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if name in ("__dict__", "__weakref__"):
                continue
            names.append(name)
    result = tuple(names)
    if len(_SLOT_CACHE) < _SLOT_CACHE_MAX:
        _SLOT_CACHE[cls] = result
    return result


def type_name(value: Any) -> str:
    """Qualified name of the runtime type of *value*."""
    cls = type(value)
    module = getattr(cls, "__module__", "")
    qualname = getattr(cls, "__qualname__", cls.__name__)
    if module in ("builtins", ""):
        return qualname
    return f"{module}.{qualname}"


def opaque_token(value: Any) -> str:
    """A stable identity token for opaque leaves.

    Functions and classes are identified by qualified name rather than by
    ``id()`` so that two captures of the same program state compare equal.
    """
    name = getattr(value, "__qualname__", None) or getattr(value, "__name__", None)
    module = getattr(value, "__module__", "")
    if name is not None:
        return f"{module}:{name}"
    return f"{type(value).__name__}@?"


def safe_repr(value: Any) -> str:
    """``repr`` that never raises.

    A repr that raises must not abort a capture (the observer cannot be
    allowed to fail the experiment), so it falls back to a type tag.
    """
    try:
        return repr(value)
    except Exception:
        return f"<unreprable {type(value).__name__}>"


def scalar_sort_key(value: Any) -> Tuple[str, str]:
    """Canonical ordering key for scalar dict keys and set members.

    The repr is computed by the *base* scalar type, not the value's own
    ``__repr__``: a scalar subclass may override ``__repr__`` with one
    that raises, and ``safe_repr``'s ``<unreprable T>`` fallback would
    then collapse every instance of that type onto one key.  Colliding
    keys make the canonical sort fall back to insertion order, so two
    captures of the same set could disagree.  ``int.__repr__(value)``
    etc. read the underlying value directly and never raise.
    """
    for base in SCALAR_TYPES:
        if isinstance(value, base):
            return (type(value).__name__, base.__repr__(value))
    return (type(value).__name__, safe_repr(value))


def default_ignore(name: str) -> bool:
    """Default attribute filter: skip instrumentation-internal attributes."""
    return name.startswith("_repro_")


def kind_of(value: Any) -> str:
    """Kind tag for a non-scalar, non-opaque value."""
    if isinstance(value, bytearray):
        return KIND_BYTEARRAY
    for container_type, container_kind in _CONTAINER_DISPATCH:
        if isinstance(value, container_type):
            return container_kind
    return KIND_OBJECT


def _iter_object_attrs(
    obj: Any, ignore_attrs: Callable[[str], bool]
) -> Iterator[Tuple[Tuple[str, Any], Any]]:
    attrs = {}
    obj_dict = getattr(obj, "__dict__", None)
    if isinstance(obj_dict, dict):
        attrs.update(obj_dict)
    for name in slot_names(type(obj)):
        try:
            attrs[name] = getattr(obj, name)
        except AttributeError:
            continue  # unset slot
    for name in sorted(attrs):
        if ignore_attrs(name):
            continue
        yield ("attr", name), attrs[name]


def _iter_dict_items(obj: dict) -> Iterator[Tuple[Tuple[str, Any], Any]]:
    scalar_items = []
    other_items = []
    for key, val in obj.items():
        if is_scalar(key):
            scalar_items.append((key, val))
        else:
            other_items.append((key, val))
    # Scalar-keyed entries are labeled by key value and sorted so that
    # insertion order does not affect state equality: the *mapping* is
    # the state, not the ordering bookkeeping.
    scalar_items.sort(key=lambda kv: scalar_sort_key(kv[0]))
    for key, val in scalar_items:
        yield ("key", (type(key).__name__, key)), val
    for position, (key, val) in enumerate(other_items):
        yield ("objkey", position), key
        yield ("objval", position), val


def _iter_set_members(obj: Any) -> Iterator[Tuple[Tuple[str, Any], Any]]:
    scalars = []
    others = []
    for item in obj:
        if is_scalar(item):
            scalars.append(item)
        else:
            others.append(item)
    scalars.sort(key=scalar_sort_key)
    for index, item in enumerate(scalars):
        yield ("member", index), item
    # Non-scalar set members are canonicalized by repr: set elements must
    # be hashable, which in practice means they expose a stable textual
    # identity.  This is a documented approximation.
    others.sort(key=lambda item: (type(item).__name__, safe_repr(item)))
    for index, item in enumerate(others):
        yield ("objmember", index), item


def iter_children(
    obj: Any, kind: str, ignore_attrs: Callable[[str], bool]
) -> Iterator[Tuple[Tuple[str, Any], Any]]:
    """Yield ``(label, child)`` pairs of *obj* in canonical order.

    This is the one ordering every backend shares: labeled edges exactly
    as an :class:`~repro.core.state.graph.ObjectGraph` node would carry
    them.  ``KIND_BYTEARRAY`` values have no children (their payload is
    ``bytes(obj)``); container *subclasses* additionally yield their
    instance attributes; ``defaultdict`` yields its ``default_factory``.
    """
    if kind in (KIND_LIST, KIND_TUPLE, KIND_DEQUE):
        for index, item in enumerate(obj):
            yield ("index", index), item
    elif kind == KIND_BYTEARRAY:
        return
    elif kind == KIND_DICT:
        for label, child in _iter_dict_items(obj):
            yield label, child
    elif kind in (KIND_SET, KIND_FROZENSET):
        for label, child in _iter_set_members(obj):
            yield label, child
    else:
        for label, child in _iter_object_attrs(obj, ignore_attrs):
            yield label, child
        return
    # container *subclasses* may carry instance attributes too
    if type(obj).__module__ != "builtins" or hasattr(obj, "__dict__"):
        for label, child in _iter_object_attrs(obj, ignore_attrs):
            yield label, child
    if isinstance(obj, _collections.defaultdict):
        yield ("attr", "default_factory"), obj.default_factory
