"""The state layer: one subsystem for all reachable-state concerns.

Everything the pipeline does with object state — materialize it
(Definition 1), compare it (Definition 2), summarize it, checkpoint it,
and roll it back (Listing 2's ``deep_copy``/``replace``) — lives behind
the :class:`StateBackend` protocol defined here.  Consumers select a
backend by name (``graph``, ``fingerprint``, ``undolog``) and never touch
the underlying machinery directly.

Submodules:

* :mod:`~repro.core.state.introspect` — shared type introspection and the
  canonical child-ordering every backend agrees on.
* :mod:`~repro.core.state.graph` — materialized object graphs and
  rooted-isomorphism comparison (formerly ``repro.core.objgraph``).
* :mod:`~repro.core.state.checkpoint` — eager in-place checkpoints
  (formerly ``repro.core.snapshot``).
* :mod:`~repro.core.state.fingerprint` — one-pass 128-bit structural
  digests, the fast path for "did the state change?".
* :mod:`~repro.core.state.backend` — the protocol and its three
  implementations.

The old import paths (``repro.core.objgraph``, ``repro.core.snapshot``)
remain available as deprecated re-export shims.
"""

from __future__ import annotations

from .backend import (
    BACKENDS,
    DETECTION_BACKENDS,
    FingerprintBackend,
    GraphBackend,
    StateBackend,
    StateStats,
    UndoLogBackend,
    get_backend,
)
from .checkpoint import (
    Checkpoint,
    CheckpointError,
    RestoreError,
    checkpoint,
    restore,
)
from .fingerprint import (
    DIGEST_BITS,
    StateFingerprint,
    fingerprint,
    fingerprint_frame,
    fingerprint_frame_covered,
)
from .fpcache import FingerprintCache
from .graph import (
    CaptureLimitError,
    GraphDifference,
    GraphNode,
    ObjectGraph,
    capture,
    capture_frame,
    graph_diff,
    graph_diff_all,
    graphs_equal,
)
from .introspect import (
    SCALAR_TYPES,
    default_ignore,
    is_opaque,
    is_scalar,
    iter_children,
    kind_of,
    slot_names,
)

__all__ = [
    # backend protocol
    "StateBackend",
    "GraphBackend",
    "FingerprintBackend",
    "UndoLogBackend",
    "StateStats",
    "BACKENDS",
    "DETECTION_BACKENDS",
    "get_backend",
    # graph
    "GraphNode",
    "ObjectGraph",
    "CaptureLimitError",
    "capture",
    "capture_frame",
    "graphs_equal",
    "graph_diff",
    "graph_diff_all",
    "GraphDifference",
    # fingerprint
    "StateFingerprint",
    "fingerprint",
    "fingerprint_frame",
    "fingerprint_frame_covered",
    "FingerprintCache",
    "DIGEST_BITS",
    # checkpoint
    "Checkpoint",
    "CheckpointError",
    "RestoreError",
    "checkpoint",
    "restore",
    # introspection
    "SCALAR_TYPES",
    "is_scalar",
    "is_opaque",
    "slot_names",
    "iter_children",
    "kind_of",
    "default_ignore",
]
