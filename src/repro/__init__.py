"""repro — automatic detection and masking of non-atomic exception handling.

A Python reproduction of C. Fetzer, K. Hogstedt, P. Felber, "Automatic
Detection and Masking of Non-Atomic Exception Handling" (DSN 2003).

Subpackages:

* :mod:`repro.core` — the paper's contribution: object graphs, exception
  injection, atomicity classification, checkpoint/rollback masking.
* :mod:`repro.collections` — Doug Lea-style container library (the
  paper's Java test subjects), re-implemented from scratch.
* :mod:`repro.regexp` — a regular-expression engine (the paper's Jakarta
  Regexp test subject).
* :mod:`repro.xmlmini` — minimal XML lexer/parser/DOM/writer substrate.
* :mod:`repro.net` — in-memory transport with fault injection (the TCP
  substrate used by the Self* applications).
* :mod:`repro.selfstar` — component-based dataflow framework and the six
  C++ evaluation applications rebuilt on it.
* :mod:`repro.experiments` — test programs, campaign driver, and the
  generators for every table and figure of the paper.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
