"""Resilience toolkit: seeded chaos/fault injection for the campaign
infrastructure itself.

The detection pipeline studies *subject* programs' recovery code; this
package points the same skepticism at our own distributed campaign
layer.  :mod:`chaos <repro.resilience.chaos>` defines the fault-site
protocol (production seams call :func:`~repro.resilience.chaos.fire`,
a no-op unless a plan is armed) and the seeded
:class:`~repro.resilience.chaos.FaultPlan` schedule; the supervised
retry machinery that survives those faults lives in
:mod:`repro.experiments.supervise`, and ``repro chaos`` drives the
whole convergence experiment from the CLI.

This package deliberately imports nothing from the rest of ``repro``,
so the journal layer, the shard runner, and the service can all declare
fault sites without import cycles.
"""

from .chaos import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    ShardHung,
    WorkerKilled,
    active_injector,
    arm,
    fire,
    standard_plan,
)

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "ShardHung",
    "WorkerKilled",
    "active_injector",
    "arm",
    "fire",
    "standard_plan",
]
