"""Seeded fault injection for the campaign infrastructure itself.

The paper's whole premise is that recovery code is the least-tested
part of a system — and our own distributed campaign layer (shard
fragments, crash-safe journals, per-run watchdogs, the service queue)
is exactly that kind of code.  This module turns the recovery paths
into *tested* paths: production code declares named **fault sites** at
its seams (one :func:`fire` call each), and a test or the ``repro
chaos`` harness arms a seeded :class:`FaultPlan` that makes chosen
invocations of those seams fail deterministically.

Design constraints:

* **zero cost unarmed** — :func:`fire` is a module-global ``None``
  check when no plan is armed; production code pays one attribute load
  per seam;
* **deterministic** — a plan is a literal schedule (site, kind, skip
  count, repeat count).  :func:`standard_plan` derives one from a seed
  via ``random.Random``, so ``repro chaos --seed N`` reproduces the
  exact same fault sequence every run, on every machine;
* **dependency-free** — nothing here imports the rest of ``repro``, so
  the journal layer (:mod:`repro.experiments.parallel`), the shard
  runner and the service can all declare sites without import cycles.

Fault kinds and the seams they are meant for:

========== ===================== =======================================
kind       typical site          effect
========== ===================== =======================================
ioerror    ``journal.append``,   raise ``OSError`` (EIO/ENOSPC) before
           ``cache.persist``     the write happens
kill       ``journal.appended``  raise :class:`WorkerKilled` after a
                                 complete line — worker dies at a line
                                 boundary, mid-fragment
torn       ``journal.appended``  truncate the file mid-line, then raise
                                 :class:`WorkerKilled` — worker died
                                 inside ``write(2)``
hang       ``run.exec``,         sleep in short slices (so an async
           ``journal.appended``  exception can interrupt it) past the
                                 watchdog budget
disconnect ``stream.write``      raise ``ConnectionResetError`` — the
                                 subscriber vanished mid-stream
========== ===================== =======================================
"""

from __future__ import annotations

import errno
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "FAULT_KINDS",
    "WorkerKilled",
    "ShardHung",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "arm",
    "fire",
    "active_injector",
    "standard_plan",
]

#: Every fault kind a plan may schedule.
FAULT_KINDS = ("ioerror", "kill", "torn", "hang", "disconnect")


class WorkerKilled(BaseException):
    """A simulated worker death (SIGKILL mid-fragment).

    Derives from ``BaseException`` so application-level ``except
    Exception`` blocks — the very handlers this project studies —
    cannot swallow it: it unwinds out of ``run_shard`` exactly like a
    real process death leaves a partial fragment behind.
    """


class ShardHung(BaseException):
    """Posted by the supervisor into a worker whose heartbeat went
    stale; ``BaseException`` for the same no-swallowing reason."""


@dataclass
class FaultSpec:
    """One scheduled fault: fire at a chosen invocation of one site.

    Attributes:
        site: fault-site name the spec matches (e.g. ``journal.append``).
        kind: one of :data:`FAULT_KINDS`.
        after: matching invocations to let pass unharmed first.
        count: consecutive invocations to fail once triggered (1 =
            one-shot; the fault is exhausted afterwards, so a bounded
            retry always converges).
        seconds: total sleep for ``hang`` faults.
        errno_code: the ``errno`` for ``ioerror`` faults (EIO default).
        torn_bytes: bytes to cut from the file tail for ``torn`` faults.
    """

    site: str
    kind: str
    after: int = 0
    count: int = 1
    seconds: float = 1.0
    errno_code: int = errno.EIO
    torn_bytes: int = 7

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (known: {FAULT_KINDS})"
            )
        if self.after < 0 or self.count < 1:
            raise ValueError("after must be >= 0 and count >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "kind": self.kind,
            "after": self.after,
            "count": self.count,
            "seconds": self.seconds,
            "errno": self.errno_code,
            "torn_bytes": self.torn_bytes,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        return cls(
            site=str(data["site"]),
            kind=str(data["kind"]),
            after=int(data.get("after", 0)),
            count=int(data.get("count", 1)),
            seconds=float(data.get("seconds", 1.0)),
            errno_code=int(data.get("errno", errno.EIO)),
            torn_bytes=int(data.get("torn_bytes", 7)),
        )


@dataclass
class FaultPlan:
    """A deterministic schedule of faults (the reproducer artifact)."""

    seed: Optional[int] = None
    faults: List[FaultSpec] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(
            seed=data.get("seed"),
            faults=[FaultSpec.from_dict(f) for f in data.get("faults", ())],
        )

    def kinds(self) -> List[str]:
        return sorted({spec.kind for spec in self.faults})


class FaultInjector:
    """The armed runtime state of one :class:`FaultPlan`.

    Thread-safe: shard workers, the service worker thread and the
    event loop all hit :meth:`fire` concurrently.  Counters survive the
    arming window, so the harness can assert coverage (every scheduled
    kind actually fired) after disarming.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.faults_injected = 0
        self.injected_by_kind: Dict[str, int] = {}
        self.site_invocations: Dict[str, int] = {}
        self.log: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._fired: Dict[int, int] = {}  # spec index -> times fired

    # -- bookkeeping -------------------------------------------------

    def _claim(self, site: str) -> Optional[FaultSpec]:
        """Record one invocation of *site*; return the spec to execute,
        if any.  The claim is atomic so concurrent callers never fire
        the same one-shot fault twice."""
        with self._lock:
            seen = self.site_invocations.get(site, 0)
            self.site_invocations[site] = seen + 1
            for index, spec in enumerate(self.plan.faults):
                if spec.site != site:
                    continue
                fired = self._fired.get(index, 0)
                if fired >= spec.count:
                    continue  # exhausted: retries run clean
                if seen < spec.after:
                    continue
                self._fired[index] = fired + 1
                self.faults_injected += 1
                self.injected_by_kind[spec.kind] = (
                    self.injected_by_kind.get(spec.kind, 0) + 1
                )
                self.log.append(
                    {"site": site, "kind": spec.kind, "invocation": seen}
                )
                return spec
            return None

    # -- effects -----------------------------------------------------

    def fire(self, site: str, path: Optional[str] = None) -> None:
        """Fail this invocation of *site* if the plan schedules it."""
        spec = self._claim(site)
        if spec is None:
            return
        if spec.kind == "ioerror":
            raise OSError(
                spec.errno_code,
                f"injected fault at {site}"
                + (f" ({path})" if path else ""),
            )
        if spec.kind == "torn":
            if path is not None:
                self._tear_tail(path, spec.torn_bytes)
            raise WorkerKilled(f"injected torn write at {site}")
        if spec.kind == "kill":
            raise WorkerKilled(f"injected worker kill at {site}")
        if spec.kind == "hang":
            # Short slices, not one long sleep: an async exception
            # (the run watchdog's _RunTimeout or the supervisor's
            # ShardHung) is delivered at a bytecode boundary, so a
            # single time.sleep(seconds) could not be interrupted.
            deadline = time.monotonic() + spec.seconds
            while time.monotonic() < deadline:
                time.sleep(0.02)
            return
        if spec.kind == "disconnect":
            raise ConnectionResetError(f"injected disconnect at {site}")

    @staticmethod
    def _tear_tail(path: str, torn_bytes: int) -> None:
        """Cut the last *torn_bytes* bytes off *path* — the on-disk
        state a worker killed inside ``write(2)`` leaves behind."""
        try:
            with open(path, "rb+") as handle:
                handle.seek(0, 2)
                size = handle.tell()
                handle.truncate(max(0, size - torn_bytes))
        except OSError:
            pass  # nothing durable to tear

    def coverage(self) -> Dict[str, int]:
        """Faults that actually fired, by kind (for convergence reports)."""
        with self._lock:
            return dict(self.injected_by_kind)


#: The armed injector; ``None`` means every fault site is a no-op.
_INJECTOR: Optional[FaultInjector] = None
_ARM_LOCK = threading.Lock()


def fire(site: str, path: Optional[str] = None) -> None:
    """Production-side fault site: no-op unless a plan is armed."""
    injector = _INJECTOR
    if injector is not None:
        injector.fire(site, path)


def active_injector() -> Optional[FaultInjector]:
    return _INJECTOR


class _Arming:
    """Context manager returned by :func:`arm`."""

    def __init__(self, injector: FaultInjector) -> None:
        self.injector = injector

    def __enter__(self) -> FaultInjector:
        global _INJECTOR
        with _ARM_LOCK:
            if _INJECTOR is not None:
                raise RuntimeError("a fault plan is already armed")
            _INJECTOR = self.injector
        return self.injector

    def __exit__(self, exc_type, exc, tb) -> None:
        global _INJECTOR
        with _ARM_LOCK:
            _INJECTOR = None


def arm(plan: FaultPlan) -> _Arming:
    """Arm *plan* for the duration of a ``with`` block::

        with arm(plan) as injector:
            ... run the campaign under faults ...
        assert injector.faults_injected > 0
    """
    return _Arming(FaultInjector(plan))


def standard_plan(
    seed: int,
    *,
    hang_seconds: float = 1.0,
    run_hangs: int = 2,
) -> FaultPlan:
    """The seeded plan ``repro chaos`` arms: one of each required kind.

    Covers the acceptance envelope — ≥1 worker kill mid-fragment, ≥1
    torn append, ≥1 injected IO error, ≥1 hung run — with offsets drawn
    from ``random.Random(seed)`` so different seeds kill different
    points but the same seed always kills the same ones.  ``run_hangs``
    defaults to 2 consecutive hangs so a single-retry budget marks the
    point crashed (exercising the crashed-record resume path), not just
    retried.
    """
    rng = random.Random(seed)
    return FaultPlan(
        seed=seed,
        faults=[
            FaultSpec("journal.appended", "kill", after=rng.randint(0, 2)),
            FaultSpec(
                "journal.appended",
                "torn",
                after=rng.randint(4, 6),
                torn_bytes=rng.randint(3, 24),
            ),
            FaultSpec(
                "journal.append",
                "ioerror",
                after=rng.randint(8, 10),
                errno_code=rng.choice((errno.EIO, errno.ENOSPC)),
            ),
            FaultSpec(
                "run.exec",
                "hang",
                after=rng.randint(0, 3),
                count=run_hangs,
                seconds=hang_seconds,
            ),
        ],
    )
