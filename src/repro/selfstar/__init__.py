"""Self\\* component framework: dataflow components, adaptors, queues.

A re-creation of the component-based, dataflow-oriented C++ framework the
paper evaluates (Fetzer & Högstedt, WORDS 2003): components exchange
messages through connected ports, adaptors transform streams, and bounded
queues decouple producers from consumers.  The six evaluation
applications live in :mod:`repro.selfstar.apps`.
"""

from .adaptors import (
    BatchAdaptor,
    FilterAdaptor,
    MapAdaptor,
    RouterAdaptor,
    Sink,
    Source,
    SplitAdaptor,
    TagAdaptor,
)
from .component import CREATED, STARTED, STOPPED, Component
from .errors import (
    ComponentStateError,
    PortError,
    ProcessingError,
    QueueEmptyError,
    QueueFullError,
    SelfStarError,
)
from .pipeline import Pipeline
from .stdq import StdQueue
from .supervision import (
    RetryPolicy,
    SupervisedComponent,
    Supervisor,
    SupervisionError,
    TransientFault,
)
from .xml2c import XmlToCConverter

__all__ = [
    "Component",
    "CREATED",
    "STARTED",
    "STOPPED",
    "Source",
    "Sink",
    "MapAdaptor",
    "FilterAdaptor",
    "BatchAdaptor",
    "SplitAdaptor",
    "RouterAdaptor",
    "TagAdaptor",
    "StdQueue",
    "Pipeline",
    "XmlToCConverter",
    "SelfStarError",
    "ComponentStateError",
    "PortError",
    "ProcessingError",
    "QueueFullError",
    "QueueEmptyError",
    "Supervisor",
    "SupervisedComponent",
    "RetryPolicy",
    "SupervisionError",
    "TransientFault",
]
