"""XML-to-C conversion: the transform behind the ``xml2C*`` applications.

Turns an XML document into C source: one struct definition per distinct
element shape plus a static initializer tree.  The converter keeps a
symbol table and an output buffer across elements — multi-step mutable
state whose consistency under exceptions the campaign checks.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.exceptions import throws

from repro.xmlmini import Document, Element

from .errors import ProcessingError

__all__ = ["XmlToCConverter"]

_C_KEYWORDS = frozenset(
    "auto break case char const continue default do double else enum extern "
    "float for goto if int long register return short signed sizeof static "
    "struct switch typedef union unsigned void volatile while".split()
)


class XmlToCConverter:
    """Converts documents to C declarations, one document at a time."""

    def __init__(self) -> None:
        self.symbols: Dict[str, int] = {}
        self.lines: List[str] = []
        self.documents_converted = 0

    # -- naming ----------------------------------------------------------

    @throws(ProcessingError)
    def mangle(self, name: str) -> str:
        """Turn an XML name into a unique, valid C identifier.

        Legacy ordering: the symbol table is updated before the keyword
        check, so a rejected name still consumes a symbol slot.
        """
        base = "".join(c if (c.isalnum() or c == "_") else "_" for c in name)
        if not base or base[0].isdigit():
            base = "_" + base
        occurrence = self.symbols.get(base, 0)
        self.symbols[base] = occurrence + 1  # legacy: reserved before check
        if base in _C_KEYWORDS:
            raise ProcessingError(f"element name {name!r} is a C keyword")
        if occurrence == 0:
            return base
        return f"{base}_{occurrence}"

    # -- conversion -----------------------------------------------------------

    @throws(ProcessingError)
    def convert(self, document: Document) -> str:
        """Convert one document; return the generated C source."""
        start = len(self.lines)
        self.lines.append(f"/* generated from <{document.root.tag}> */")
        struct_name = self._emit_struct(document.root)
        self._emit_initializer(document.root, struct_name)
        self.documents_converted += 1
        return "\n".join(self.lines[start:])

    def _emit_struct(self, element: Element) -> str:
        """Emit the struct definition for *element*'s subtree."""
        child_types = [self._emit_struct(child) for child in element.children]
        name = self.mangle(element.tag)
        fields = [f"    const char *{self.mangle(attr)};"
                  for attr in element.attributes]
        fields.append("    const char *text;")
        for child, child_type in zip(element.children, child_types):
            fields.append(f"    struct {child_type} {self.mangle(child.tag)};")
        body = "\n".join(fields)
        self.lines.append(f"struct {name} {{\n{body}\n}};")
        return name

    def _emit_initializer(self, element: Element, struct_name: str) -> None:
        literal = self._initializer_literal(element)
        self.lines.append(
            f"static const struct {struct_name} {struct_name}_value = {literal};"
        )

    def _initializer_literal(self, element: Element) -> str:
        parts = [_c_string(value) for value in element.attributes.values()]
        parts.append(_c_string(element.text))
        for child in element.children:
            parts.append(self._initializer_literal(child))
        return "{ " + ", ".join(parts) + " }"

    # -- maintenance --------------------------------------------------------------

    def reset(self) -> None:
        """Forget all symbols and output (start a fresh translation unit)."""
        self.symbols.clear()
        self.lines.clear()

    def output(self) -> str:
        """Everything generated since the last reset."""
        return "\n".join(self.lines)


def _c_string(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    return f'"{escaped}"'
