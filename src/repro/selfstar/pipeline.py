"""Pipelines: linear composition and lifecycle management of components."""

from __future__ import annotations

from typing import Any, Iterable, List

from repro.core.exceptions import throws

from .component import STARTED, Component
from .errors import ComponentStateError, PortError

__all__ = ["Pipeline"]


class Pipeline:
    """A linear chain of components with collective lifecycle control."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.stages: List[Component] = []

    @throws(PortError)
    def add_stage(self, component: Component) -> Component:
        """Append a stage, connecting it to the previous one.

        Careful ordering: the connection is made first, so a failed
        connect leaves the stage list untouched.
        """
        if self.stages:
            self.stages[-1].connect(component)
        self.stages.append(component)
        return component

    def head(self) -> Component:
        if not self.stages:
            raise PortError(f"{self.name}: pipeline is empty")
        return self.stages[0]

    def tail(self) -> Component:
        if not self.stages:
            raise PortError(f"{self.name}: pipeline is empty")
        return self.stages[-1]

    @throws(ComponentStateError)
    def start(self) -> None:
        """Start every stage, downstream first (consumers before producers)."""
        for component in reversed(self.stages):
            if component.state != STARTED:
                component.start()

    @throws(ComponentStateError)
    def stop(self) -> None:
        """Stop every stage, upstream first (producers before consumers)."""
        for component in self.stages:
            if component.state == STARTED:
                component.stop()

    def feed(self, message: Any) -> None:
        """Deliver one message to the head stage."""
        self.head().accept(message)

    def feed_all(self, messages: Iterable[Any]) -> int:
        """Deliver a sequence of messages; return how many were fed."""
        fed = 0
        for message in messages:
            self.feed(message)
            fed += 1
        return fed

    def statistics(self) -> List[dict]:
        return [component.statistics() for component in self.stages]
