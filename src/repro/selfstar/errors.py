"""Errors of the Self\\* component framework."""

from __future__ import annotations

__all__ = [
    "SelfStarError",
    "ComponentStateError",
    "PortError",
    "ProcessingError",
    "QueueFullError",
    "QueueEmptyError",
]


class SelfStarError(Exception):
    """Base class of all framework errors."""


class ComponentStateError(SelfStarError):
    """A lifecycle operation was invalid in the component's state."""


class PortError(SelfStarError):
    """A connection operation was invalid."""


class ProcessingError(SelfStarError):
    """A component failed while processing a message."""


class QueueFullError(SelfStarError):
    """A bounded queue cannot accept another message."""


class QueueEmptyError(SelfStarError):
    """A dequeue was attempted on an empty queue."""
