"""Adaptors: stateless and stateful message transformers.

Adaptors are the workhorse components of Self\\* dataflow graphs: they
map, filter, batch, split, and collect messages.  ``BatchAdaptor`` is the
interesting detection subject — it buffers messages across calls, so a
failure during a flush loses or duplicates part of a batch.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.core.exceptions import throws

from .component import Component
from .errors import ProcessingError

__all__ = [
    "Source",
    "Sink",
    "MapAdaptor",
    "FilterAdaptor",
    "BatchAdaptor",
    "SplitAdaptor",
    "RouterAdaptor",
    "TagAdaptor",
]


class Source(Component):
    """Entry point: pushes externally supplied messages into the graph."""

    def __init__(self, name: str = "source") -> None:
        super().__init__(name)
        self.pushed_count = 0

    def push(self, message: Any) -> None:
        """Inject one message into the graph (counted after delivery)."""
        self.emit(message)
        self.pushed_count += 1

    def push_all(self, messages) -> None:
        """Inject a sequence (partial progress on failure: pure)."""
        for message in messages:
            self.push(message)

    def process(self, message: Any) -> None:
        self.emit(message)  # sources pass through if used mid-graph


class Sink(Component):
    """Exit point: collects every received message."""

    def __init__(self, name: str = "sink") -> None:
        super().__init__(name)
        self.collected: List[Any] = []

    def process(self, message: Any) -> None:
        self.collected.append(message)

    def drain(self) -> List[Any]:
        """Return and clear the collected messages."""
        messages = self.collected
        self.collected = []
        return messages


class MapAdaptor(Component):
    """Applies a function to every message."""

    def __init__(self, name: str, transform: Callable[[Any], Any]) -> None:
        super().__init__(name)
        self._transform = transform

    @throws(ProcessingError)
    def process(self, message: Any) -> None:
        try:
            result = self._transform(message)
        except Exception as exc:
            raise ProcessingError(f"{self.name}: transform failed: {exc}") from exc
        self.emit(result)


class FilterAdaptor(Component):
    """Forwards only messages satisfying a predicate."""

    def __init__(self, name: str, predicate: Callable[[Any], bool]) -> None:
        super().__init__(name)
        self._predicate = predicate
        self.dropped_count = 0

    def process(self, message: Any) -> None:
        if self._predicate(message):
            self.emit(message)
        else:
            self.dropped_count += 1


class BatchAdaptor(Component):
    """Groups messages into fixed-size batches.

    Written with failure atomicity in mind (the "temporary variable"
    idiom of the paper, Section 6.1): the batch to emit is assembled in a
    local first, so a failing downstream delivery leaves the buffer — and
    therefore the batch — intact and retryable.
    """

    def __init__(self, name: str, batch_size: int) -> None:
        super().__init__(name)
        if batch_size < 1:
            raise ProcessingError(f"{name}: batch size must be >= 1")
        self.batch_size = batch_size
        self.buffer: List[Any] = []

    def process(self, message: Any) -> None:
        if len(self.buffer) + 1 >= self.batch_size:
            batch = self.buffer + [message]  # temporary: emit before mutate
            self.emit(batch)
            self.buffer.clear()
        else:
            self.buffer.append(message)

    def flush(self) -> None:
        """Emit the buffered messages as one batch (emit before clear)."""
        if not self.buffer:
            return
        self.emit(list(self.buffer))
        self.buffer.clear()

    def on_stop(self) -> None:
        self.flush()


class SplitAdaptor(Component):
    """Splits list messages back into individual messages."""

    @throws(ProcessingError)
    def process(self, message: Any) -> None:
        if not isinstance(message, (list, tuple)):
            raise ProcessingError(f"{self.name}: expected a batch, got "
                                  f"{type(message).__name__}")
        for item in message:
            self.emit(item)


class RouterAdaptor(Component):
    """Routes each message to one named route by predicate.

    Routes are tried in registration order; the first matching predicate
    receives the message.  Messages matching no route go to the fallback
    (if any) or raise — an unroutable message is a configuration error,
    not something to drop silently.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._routes: List[Any] = []  # (route name, predicate, consumer)
        self._fallback: Optional[Component] = None
        self.routed_counts: dict = {}

    @throws(ProcessingError)
    def add_route(self, route_name: str, predicate: Callable[[Any], bool],
                  consumer: Component) -> "RouterAdaptor":
        """Register a route; returns self for chaining."""
        if any(existing == route_name for existing, _, _ in self._routes):
            raise ProcessingError(f"{self.name}: duplicate route {route_name!r}")
        self.connect(consumer)
        self._routes.append((route_name, predicate, consumer))
        self.routed_counts[route_name] = 0
        return self

    def set_fallback(self, consumer: Component) -> "RouterAdaptor":
        self.connect(consumer)
        self._fallback = consumer
        return self

    @throws(ProcessingError)
    def process(self, message: Any) -> None:
        for route_name, predicate, consumer in self._routes:
            if predicate(message):
                consumer.accept(message)
                self.routed_counts[route_name] += 1
                return
        if self._fallback is not None:
            self._fallback.accept(message)
            return
        raise ProcessingError(f"{self.name}: no route for {message!r}")


class TagAdaptor(Component):
    """Annotates dict messages with a constant key/value tag.

    Emits a tagged *copy* of the message: the incoming message is never
    mutated, so a failure anywhere downstream cannot leave a half-tagged
    record behind (the paper's "temporary variable" fix).
    """

    def __init__(self, name: str, key: str, value: Any,
                 required_field: Optional[str] = None) -> None:
        super().__init__(name)
        self.key = key
        self.value = value
        self.required_field = required_field

    @throws(ProcessingError)
    def process(self, message: Any) -> None:
        if not isinstance(message, dict):
            raise ProcessingError(f"{self.name}: expected a dict message")
        if self.required_field is not None and self.required_field not in message:
            raise ProcessingError(
                f"{self.name}: message lacks {self.required_field!r}"
            )
        tagged = dict(message)
        tagged[self.key] = self.value
        self.emit(tagged)
