"""Retry-based recovery: why failure atomicity matters.

The paper's motivation (Section 1): "Recovery is often based on retrying
failed methods ... However, for a retry to succeed, a failed method also
has to leave changed objects in a consistent state."  This module is that
recovery layer for the Self\\* framework: a :class:`Supervisor` retries
failed operations under a :class:`RetryPolicy`, and a
:class:`SupervisedComponent` applies the same discipline to message
processing.

The pairing with the masking phase is the point: retrying a failure
*atomic* operation is safe by construction, while retrying a failure
non-atomic one compounds the corruption — the tests demonstrate both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple, Type

from repro.core.exceptions import throws

from .component import Component
from .errors import SelfStarError

__all__ = [
    "SupervisionError",
    "RetryPolicy",
    "Supervisor",
    "SupervisedComponent",
    "TransientFault",
]


class SupervisionError(SelfStarError):
    """An operation kept failing after every permitted retry."""

    def __init__(self, message: str, attempts: int, last: BaseException):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last


@dataclass(frozen=True)
class RetryPolicy:
    """How often and on which exceptions to retry.

    Attributes:
        max_attempts: total attempts including the first one.
        retry_on: exception types that trigger a retry; anything else
            propagates immediately.
    """

    max_attempts: int = 3
    retry_on: Tuple[Type[BaseException], ...] = (Exception,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        return attempt < self.max_attempts and isinstance(exc, self.retry_on)


@dataclass
class Supervisor:
    """Executes operations with retries and records the outcomes."""

    policy: RetryPolicy = field(default_factory=RetryPolicy)
    operations: int = 0
    retries: int = 0
    failures: int = 0

    @throws(SupervisionError)
    def supervise(self, operation: Callable, *args: Any, **kwargs: Any) -> Any:
        """Run *operation* until it succeeds or the policy gives up."""
        self.operations += 1
        attempt = 0
        while True:
            attempt += 1
            try:
                return operation(*args, **kwargs)
            except BaseException as exc:
                if not self.policy.should_retry(exc, attempt):
                    self.failures += 1
                    if isinstance(exc, self.policy.retry_on):
                        raise SupervisionError(
                            f"operation failed after {attempt} attempt(s): "
                            f"{type(exc).__name__}: {exc}",
                            attempts=attempt,
                            last=exc,
                        ) from exc
                    raise
                self.retries += 1


class SupervisedComponent(Component):
    """Wraps an inner component, retrying its failing deliveries.

    The inner component's ``accept`` is the retried unit.  Whether the
    retry is *safe* depends entirely on the inner component's failure
    atomicity — mask it first.
    """

    def __init__(
        self,
        inner: Component,
        policy: Optional[RetryPolicy] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name or f"supervised({inner.name})")
        self.inner = inner
        self.supervisor = Supervisor(policy or RetryPolicy())
        self.dead_letters: List[Any] = []

    def on_start(self) -> None:
        if self.inner.state != "started":
            self.inner.start()

    def on_stop(self) -> None:
        if self.inner.state == "started":
            self.inner.stop()

    def process(self, message: Any) -> None:
        try:
            self.supervisor.supervise(self.inner.accept, message)
        except SupervisionError:
            # exhausted: keep the message for offline handling instead of
            # poisoning the stream
            self.dead_letters.append(message)
        else:
            self.emit(message)


class TransientFault:
    """A callable wrapper that fails the first *fail_times* invocations.

    Deterministic stand-in for transient runtime error conditions (the
    paper's retry scenario: "the program might first try to correct the
    runtime error condition to increase the probability of success").
    """

    def __init__(
        self,
        operation: Callable,
        fail_times: int,
        exc_factory: Callable[[], BaseException] = lambda: SelfStarError(
            "transient fault"
        ),
    ) -> None:
        self.operation = operation
        self.fail_times = fail_times
        self.exc_factory = exc_factory
        self.invocations = 0

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        self.invocations += 1
        if self.invocations <= self.fail_times:
            raise self.exc_factory()
        return self.operation(*args, **kwargs)
