"""Components: the unit of composition of the Self\\* framework.

A component receives messages on its input, processes them, and emits
results to the components connected downstream.  Components carry
lifecycle state (created → started → stopped) and processing statistics,
exactly the kind of multi-field mutable state whose consistency the
paper's detection phase checks.
"""

from __future__ import annotations

from typing import Any, List

from repro.core.exceptions import throws

from .errors import ComponentStateError, PortError, ProcessingError

__all__ = ["Component", "CREATED", "STARTED", "STOPPED"]

CREATED = "created"
STARTED = "started"
STOPPED = "stopped"


class Component:
    """Base class of every Self\\* component.

    Subclasses override :meth:`process`; they receive each message and
    call :meth:`emit` zero or more times to forward results downstream.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.state = CREATED
        self.downstream: List["Component"] = []
        self.processed_count = 0
        self.emitted_count = 0

    # -- wiring ----------------------------------------------------------

    @throws(PortError)
    def connect(self, consumer: "Component") -> "Component":
        """Connect this component's output to *consumer*; returns consumer."""
        if consumer is self:
            raise PortError(f"{self.name}: cannot connect to itself")
        if consumer in self.downstream:
            raise PortError(f"{self.name}: already connected to {consumer.name}")
        self.downstream.append(consumer)
        return consumer

    @throws(PortError)
    def disconnect(self, consumer: "Component") -> None:
        if consumer not in self.downstream:
            raise PortError(f"{self.name}: not connected to {consumer.name}")
        self.downstream.remove(consumer)

    # -- lifecycle -----------------------------------------------------------

    @throws(ComponentStateError)
    def start(self) -> None:
        """Move to STARTED (only valid from CREATED or STOPPED)."""
        if self.state == STARTED:
            raise ComponentStateError(f"{self.name}: already started")
        self.on_start()  # a failing hook leaves the component unstarted
        self.state = STARTED

    @throws(ComponentStateError)
    def stop(self) -> None:
        """Move to STOPPED; flushes any buffered work first.

        Careful ordering: the flush runs while the component is still
        started, so a failing flush leaves the component running and
        retryable.
        """
        if self.state != STARTED:
            raise ComponentStateError(f"{self.name}: not started")
        self.on_stop()
        self.state = STOPPED

    def on_start(self) -> None:
        """Hook for subclasses (default: nothing)."""

    def on_stop(self) -> None:
        """Hook for subclasses (default: nothing)."""

    # -- dataflow ---------------------------------------------------------------

    @throws(ComponentStateError, ProcessingError)
    def accept(self, message: Any) -> None:
        """Receive one message.

        Careful ordering: the counter reflects only completed work, so a
        failing :meth:`process` leaves the statistics consistent.
        """
        if self.state != STARTED:
            raise ComponentStateError(
                f"{self.name}: accept() while {self.state}"
            )
        self.process(message)
        self.processed_count += 1

    def process(self, message: Any) -> None:
        """Handle one message (override in subclasses)."""
        raise ProcessingError(f"{self.name}: process() not implemented")

    def emit(self, message: Any) -> None:
        """Forward *message* to every connected downstream component."""
        for consumer in self.downstream:
            consumer.accept(message)
        self.emitted_count += 1

    def statistics(self) -> dict:
        return {
            "name": self.name,
            "state": self.state,
            "processed": self.processed_count,
            "emitted": self.emitted_count,
        }

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} [{self.state}]>"
