"""The six Self\\* evaluation applications (paper Table 1, C++ side)."""

from .adaptor_chain import AdaptorChainApp
from .std_q import StdQApp
from .xml2c_tcp import Xml2CTcpApp
from .xml2c_viasc import Xml2CViaSc1App, Xml2CViaSc2App
from .xml2xml import Xml2XmlApp, XmlTransformer

__all__ = [
    "AdaptorChainApp",
    "StdQApp",
    "Xml2CTcpApp",
    "Xml2CViaSc1App",
    "Xml2CViaSc2App",
    "Xml2XmlApp",
    "XmlTransformer",
]
