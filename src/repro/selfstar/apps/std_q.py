"""``stdQ``: producer/consumer decoupling through a bounded queue.

A producer bursts records into a :class:`StdQueue`; a consumer pumps them
out in smaller batches.  Overflow and underflow error paths are exercised
deliberately — they are the queue's interesting exception behavior.
"""

from __future__ import annotations

from typing import Dict, List

from ..adaptors import MapAdaptor, Sink, Source
from ..component import Component
from ..errors import QueueEmptyError, QueueFullError
from ..pipeline import Pipeline
from ..stdq import StdQueue
from .samples import make_records

__all__ = ["StdQApp"]


class StdQApp:
    """Runs a burst/drain workload over a bounded queue."""

    def __init__(self, capacity: int = 4, burst: int = 3) -> None:
        self.capacity = capacity
        self.burst = burst
        self.pipeline = Pipeline("stdQ")
        self.source = Source("producer")
        self.queue = StdQueue("buffer", capacity)
        self.sink = Sink("consumer")
        self._build()

    def _build(self) -> None:
        self.pipeline.add_stage(self.source)
        self.pipeline.add_stage(self.queue)
        # the queue does not auto-forward: its downstream is fed by pump()
        self.queue.connect(
            MapAdaptor("stamper", lambda r: {**r, "consumed": True})
        )
        self.queue.downstream[0].connect(self.sink)

    def run(self, record_count: int = 10) -> List[Dict[str, object]]:
        """Burst records in, drain in batches; return consumed records."""
        records = make_records(record_count)
        self.pipeline.start()
        self.queue.downstream[0].start()
        self.sink.start()
        pending = list(records)
        while pending or self.queue.depth():
            # fill until the burst is in or the queue is full
            while pending and not self.queue.is_full():
                self.source.push(pending.pop(0))
            if pending:
                # demonstrate the overflow error path once per fill cycle
                try:
                    self.queue.enqueue({"overflow": True})
                except QueueFullError:
                    pass
            # drain a burst
            for _ in range(self.burst):
                if self.queue.depth() == 0:
                    break
                self.queue.pump()
        # underflow error path
        try:
            self.queue.dequeue()
        except QueueEmptyError:
            pass
        self.pipeline.stop()
        return self.sink.collected

    @staticmethod
    def involved_classes() -> List[type]:
        return [Component, Source, Sink, MapAdaptor, StdQueue, Pipeline]
