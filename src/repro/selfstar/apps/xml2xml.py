"""``xml2xml1``: XML → transformed XML, round-tripped through the writer.

Parses documents, applies a structural transformation (tag renaming,
attribute normalization, metadata stamping), serializes the result, and
re-parses it to verify the round trip — the classic transform pipeline of
the Self\\* evaluation.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.exceptions import throws

from repro.xmlmini import Document, Element, XmlParser, XmlWriter

from ..errors import ProcessingError
from .samples import XML_DOCUMENTS

__all__ = ["XmlTransformer", "Xml2XmlApp"]


class XmlTransformer:
    """Applies an in-place tag-rename + attribute normalization."""

    def __init__(self, renames: Dict[str, str]) -> None:
        self.renames = dict(renames)
        self.elements_touched = 0

    @throws(ProcessingError)
    def transform(self, document: Document) -> Document:
        """Rewrite *document* in place and stamp the root.

        The walk mutates the tree element by element, so a failure mid
        walk leaves a half-transformed document — the transformation as a
        whole is pure failure non-atomic.
        """
        for element in document.root.iter():
            self.transform_element(element)
        document.root.set_attribute("transformed", "yes")
        return document

    def transform_element(self, element: Element) -> None:
        """Rename the tag and lowercase the attribute names of one element."""
        element.tag = self.renames.get(element.tag, element.tag)
        if any(name != name.lower() for name in element.attributes):
            normalized = {
                name.lower(): value for name, value in element.attributes.items()
            }
            if len(normalized) != len(element.attributes):
                raise ProcessingError(
                    "attribute names collide after normalization"
                )
            element.attributes.clear()
            element.attributes.update(normalized)
        self.elements_touched += 1


class Xml2XmlApp:
    """Transform documents and verify the serialize/parse round trip."""

    def __init__(self, indent: int = 0) -> None:
        self.transformer = XmlTransformer(
            {"server": "node", "item": "entry", "note": "memo"}
        )
        self.writer = XmlWriter(indent)
        self.round_trips = 0

    def run(self, documents=None) -> List[str]:
        """Process *documents*; return the serialized transformed texts."""
        documents = XML_DOCUMENTS if documents is None else documents
        outputs: List[str] = []
        for text in documents:
            document = XmlParser(text).parse()
            before_count = document.element_count()
            transformed = self.transformer.transform(document)
            serialized = self.writer.write(transformed)
            reparsed = XmlParser(serialized).parse()
            if reparsed.element_count() != before_count:
                raise ProcessingError("round trip changed the element count")
            if reparsed.root.get_attribute("transformed") != "yes":
                raise ProcessingError("transformation stamp lost in round trip")
            outputs.append(serialized)
            self.round_trips += 1
        return outputs

    @staticmethod
    def involved_classes() -> List[type]:
        return [
            Xml2XmlApp,
            XmlTransformer,
            XmlWriter,
            XmlParser,
            Element,
            Document,
        ]
