"""Deterministic sample inputs shared by the Self\\* applications."""

from __future__ import annotations

from typing import Dict, List

__all__ = ["XML_DOCUMENTS", "RECORDS", "make_records"]

#: Small, well-formed documents exercising attributes, nesting, entities,
#: self-closing tags, and comments.
XML_DOCUMENTS: List[str] = [
    '<?xml version="1.0"?><config><server port="80" host="alpha">web'
    "</server><server port="
    '"443" host="beta">tls</server></config>',
    "<note><to>ops</to><from>dev</from><body>deploy &amp; verify</body></note>",
    '<inventory count="3"><item id="a1"/><item id="a2"/><item id="a3">last'
    "</item></inventory>",
    "<!-- prologue --><root attr='single'>text <child>nested</child> tail</root>",
]

#: Record messages flowing through the adaptor-chain and queue apps.
RECORDS: List[Dict[str, object]] = [
    {"id": 1, "kind": "reading", "value": 17},
    {"id": 2, "kind": "reading", "value": 4},
    {"id": 3, "kind": "control", "value": 0},
    {"id": 4, "kind": "reading", "value": 25},
    {"id": 5, "kind": "reading", "value": 9},
    {"id": 6, "kind": "control", "value": 1},
    {"id": 7, "kind": "reading", "value": 12},
]


def make_records(count: int) -> List[Dict[str, object]]:
    """Deterministic record stream of arbitrary length."""
    return [
        {
            "id": index,
            "kind": "reading" if index % 3 else "control",
            "value": (index * 7) % 29,
        }
        for index in range(1, count + 1)
    ]
