"""``adaptorChain``: a linear graph of adaptors over record messages.

The workload tags, normalizes, filters, batches, and re-splits a stream
of record dicts, exercising both stateless and stateful adaptors plus the
framework lifecycle — the first C++ application of Table 1.
"""

from __future__ import annotations

from typing import Dict, List

from ..adaptors import (
    BatchAdaptor,
    FilterAdaptor,
    MapAdaptor,
    Sink,
    Source,
    SplitAdaptor,
    TagAdaptor,
)
from ..component import Component
from ..errors import ProcessingError
from ..pipeline import Pipeline
from .samples import RECORDS

__all__ = ["AdaptorChainApp"]


def _normalize(record: Dict[str, object]) -> Dict[str, object]:
    normalized = dict(record)
    normalized["value"] = int(normalized.get("value", 0)) * 2
    return normalized


class AdaptorChainApp:
    """Builds and runs the adaptor chain on a record stream."""

    def __init__(self, batch_size: int = 3) -> None:
        self.batch_size = batch_size
        self.pipeline = Pipeline("adaptorChain")
        self.source = Source("records")
        self.sink = Sink("collector")
        self._build()

    def _build(self) -> None:
        self.pipeline.add_stage(self.source)
        self.pipeline.add_stage(TagAdaptor("tagger", "origin", "chain"))
        self.pipeline.add_stage(MapAdaptor("normalizer", _normalize))
        self.pipeline.add_stage(
            FilterAdaptor("readings", lambda r: r.get("kind") == "reading")
        )
        self.pipeline.add_stage(BatchAdaptor("batcher", self.batch_size))
        self.pipeline.add_stage(SplitAdaptor("splitter"))
        self.pipeline.add_stage(self.sink)

    def run(self, records=None) -> List[Dict[str, object]]:
        """Process *records* (defaults to the sample stream); return output."""
        records = RECORDS if records is None else records
        self.pipeline.start()
        for record in records:
            self.source.push(dict(record))
        # a malformed message exercises the error path; the framework
        # reports it and the workload continues
        try:
            self.source.push("not a record")
        except ProcessingError:
            pass
        self.pipeline.stop()  # flushes the final partial batch
        return self.sink.collected

    @staticmethod
    def involved_classes() -> List[type]:
        return [
            Component,
            Source,
            Sink,
            TagAdaptor,
            MapAdaptor,
            FilterAdaptor,
            BatchAdaptor,
            SplitAdaptor,
            Pipeline,
        ]
