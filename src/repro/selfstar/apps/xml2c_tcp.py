"""``xml2Ctcp``: XML → C conversion shipped over a (faulty) TCP stand-in.

Documents are parsed, converted to C source, framed, and sent across an
in-memory link whose a→b direction injects deterministic delivery
failures; the sender retries.  The receiver reassembles frames from
fragmented chunks and verifies the generated code arrived intact.
"""

from __future__ import annotations

from typing import List

from repro.net import (
    DeliveryError,
    FaultPolicy,
    FaultyLink,
    FrameDecoder,
    encode_frame,
)
from repro.xmlmini import XmlParser

from ..errors import ProcessingError
from ..xml2c import XmlToCConverter
from .samples import XML_DOCUMENTS

__all__ = ["Xml2CTcpApp"]

_MAX_RETRIES = 5


class Xml2CTcpApp:
    """Converts documents and ships them over the faulty link."""

    def __init__(self, error_rate: float = 0.25, seed: int = 11) -> None:
        self.converter = XmlToCConverter()
        self.link = FaultyLink(FaultPolicy(seed, error_rate=error_rate), "xml2c")
        self.decoder = FrameDecoder()
        self.retries = 0

    def send_with_retry(self, payload: bytes) -> None:
        """Send one frame, retrying transient delivery failures."""
        for attempt in range(_MAX_RETRIES):
            try:
                self.link.send(payload)
                return
            except DeliveryError:
                self.retries += 1
        raise ProcessingError(
            f"delivery failed after {_MAX_RETRIES} attempts"
        )

    def run(self, documents=None) -> List[str]:
        """Convert and ship *documents*; return the received C sources."""
        documents = XML_DOCUMENTS if documents is None else documents
        for text in documents:
            parser = XmlParser(text)
            document = parser.parse()
            source = self.converter.convert(document)
            self.send_with_retry(encode_frame(source.encode("utf-8")))
        received: List[str] = []
        receiver = self.link.receiver()
        while receiver.pending():
            chunk = receiver.receive()
            # deliver in split halves to exercise reassembly
            middle = len(chunk) // 2
            for part in (chunk[:middle], chunk[middle:]):
                for frame in self.decoder.feed(part):
                    received.append(frame.decode("utf-8"))
        if len(received) != len(documents):
            raise ProcessingError(
                f"expected {len(documents)} frames, received {len(received)}"
            )
        return received

    @staticmethod
    def involved_classes() -> List[type]:
        from repro.net.transport import ChannelEnd, FaultPolicy, FaultyLink, Link
        from repro.xmlmini.dom import Document, Element
        from repro.xmlmini.parser import XmlParser

        return [
            Xml2CTcpApp,
            XmlToCConverter,
            FaultyLink,
            FaultPolicy,
            Link,
            ChannelEnd,
            FrameDecoder,
            XmlParser,
            Element,
            Document,
        ]
