"""``xml2Cviasc1`` / ``xml2Cviasc2``: XML → C via shared channels.

Both variants route documents through Self\\* component graphs whose
stages communicate over :class:`StdQueue` "shared channels" (the *sc* in
the application names):

* **Variant 1** — a single queue between the parse stage and the convert
  stage; documents are pumped one at a time.
* **Variant 2** — two queues and a batching stage: parsed documents are
  batched, converted per batch, and the generated sources flow through a
  second queue before collection.
"""

from __future__ import annotations

from typing import List

from repro.xmlmini import XmlParser

from ..adaptors import BatchAdaptor, Sink, SplitAdaptor
from ..component import Component
from ..errors import ProcessingError
from ..pipeline import Pipeline
from ..stdq import StdQueue
from ..xml2c import XmlToCConverter
from .samples import XML_DOCUMENTS

__all__ = ["Xml2CViaSc1App", "Xml2CViaSc2App"]


class _ParseStage(Component):
    """Parses XML text messages into Document messages."""

    def __init__(self, name: str = "parse") -> None:
        super().__init__(name)
        self.parsed_count = 0

    def process(self, message) -> None:
        document = XmlParser(message).parse()
        self.emit(document)  # deliver before counting: stats stay honest
        self.parsed_count += 1


class _ConvertStage(Component):
    """Converts Document messages into C source strings."""

    def __init__(self, name: str = "convert") -> None:
        super().__init__(name)
        self.converter = XmlToCConverter()

    def process(self, message) -> None:
        self.emit(self.converter.convert(message))


class _BatchConvertStage(Component):
    """Converts a *batch* of documents into one combined C source."""

    def __init__(self, name: str = "batch-convert") -> None:
        super().__init__(name)
        self.converter = XmlToCConverter()
        self.batches_converted = 0

    def process(self, message) -> None:
        if not isinstance(message, list):
            raise ProcessingError(f"{self.name}: expected a batch")
        sources = [self.converter.convert(document) for document in message]
        self.emit(sources)
        self.batches_converted += 1


class Xml2CViaSc1App:
    """Variant 1: parse → queue → convert → sink."""

    def __init__(self, capacity: int = 8) -> None:
        self.pipeline = Pipeline("xml2Cviasc1")
        self.parse = _ParseStage()
        self.queue = StdQueue("shared-channel", capacity)
        self.convert = _ConvertStage()
        self.sink = Sink("sources")
        self.pipeline.add_stage(self.parse)
        self.pipeline.add_stage(self.queue)
        self.convert.connect(self.sink)
        self.queue.connect(self.convert)

    def run(self, documents=None) -> List[str]:
        documents = XML_DOCUMENTS if documents is None else documents
        self.pipeline.start()
        self.convert.start()
        self.sink.start()
        for text in documents:
            self.pipeline.feed(text)
            self.queue.pump()  # hand over through the shared channel
        self.pipeline.stop()
        if len(self.sink.collected) != len(documents):
            raise ProcessingError("document count mismatch after conversion")
        return self.sink.collected

    @staticmethod
    def involved_classes() -> List[type]:
        from repro.xmlmini.dom import Document, Element

        return [
            Component,
            Pipeline,
            StdQueue,
            _ParseStage,
            _ConvertStage,
            Sink,
            XmlToCConverter,
            XmlParser,
            Element,
            Document,
        ]


class Xml2CViaSc2App:
    """Variant 2: parse → queue → batch → convert → queue → split → sink."""

    def __init__(self, capacity: int = 8, batch_size: int = 2) -> None:
        self.pipeline = Pipeline("xml2Cviasc2")
        self.parse = _ParseStage()
        self.in_queue = StdQueue("channel-in", capacity)
        self.batcher = BatchAdaptor("batcher", batch_size)
        self.convert = _BatchConvertStage()
        self.out_queue = StdQueue("channel-out", capacity)
        self.splitter = SplitAdaptor("splitter")
        self.sink = Sink("sources")
        self.pipeline.add_stage(self.parse)
        self.pipeline.add_stage(self.in_queue)
        for upstream, downstream in (
            (self.in_queue, self.batcher),
            (self.batcher, self.convert),
            (self.convert, self.out_queue),
            (self.out_queue, self.splitter),
            (self.splitter, self.sink),
        ):
            upstream.connect(downstream)

    def _start_all(self) -> None:
        for component in (
            self.sink,
            self.splitter,
            self.out_queue,
            self.convert,
            self.batcher,
        ):
            component.start()
        self.pipeline.start()

    def run(self, documents=None) -> List[str]:
        documents = XML_DOCUMENTS if documents is None else documents
        self._start_all()
        for text in documents:
            self.pipeline.feed(text)
        self.in_queue.pump_all()
        self.batcher.flush()  # flush the trailing partial batch
        self.out_queue.pump_all()
        self.pipeline.stop()
        if len(self.sink.collected) != len(documents):
            raise ProcessingError("document count mismatch after conversion")
        return self.sink.collected

    @staticmethod
    def involved_classes() -> List[type]:
        from repro.xmlmini.dom import Document, Element

        return [
            Component,
            Pipeline,
            StdQueue,
            BatchAdaptor,
            SplitAdaptor,
            _ParseStage,
            _BatchConvertStage,
            Sink,
            XmlToCConverter,
            XmlParser,
            Element,
            Document,
        ]
