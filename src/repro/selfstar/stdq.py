"""Bounded FIFO queue component (``stdQ``).

Decouples producers from consumers in a Self\\* graph: upstream
components enqueue, a pump drains the queue into the downstream graph.
Carries high-water statistics and a drop policy for overflow.
"""

from __future__ import annotations

from typing import Any, List

from repro.core.exceptions import exception_free, throws

from .component import Component
from .errors import QueueEmptyError, QueueFullError

__all__ = ["StdQueue"]


class StdQueue(Component):
    """A bounded in-order queue with explicit pump control.

    Messages accepted from upstream are buffered; :meth:`pump` (or
    :meth:`pump_all`) forwards them downstream in FIFO order.
    """

    def __init__(self, name: str, capacity: int) -> None:
        super().__init__(name)
        if capacity < 1:
            raise QueueFullError(f"{name}: capacity must be >= 1")
        self.capacity = capacity
        self.items: List[Any] = []
        self.high_water = 0
        self.enqueued_total = 0
        self.dequeued_total = 0

    # -- queue operations ---------------------------------------------------

    @throws(QueueFullError)
    def enqueue(self, message: Any) -> None:
        """Add a message at the tail (careful ordering: check first)."""
        if len(self.items) >= self.capacity:
            raise QueueFullError(
                f"{self.name}: capacity {self.capacity} reached"
            )
        self.items.append(message)
        self.enqueued_total += 1
        self.high_water = max(self.high_water, len(self.items))

    @throws(QueueEmptyError)
    def dequeue(self) -> Any:
        """Remove and return the head message (safe ordering)."""
        if not self.items:
            raise QueueEmptyError(f"{self.name}: queue is empty")
        message = self.items.pop(0)
        self.dequeued_total += 1
        return message

    @exception_free
    def depth(self) -> int:
        return len(self.items)

    @exception_free
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    # -- component integration -------------------------------------------------

    def process(self, message: Any) -> None:
        """Upstream delivery buffers into the queue."""
        self.enqueue(message)

    @throws(QueueEmptyError)
    def pump(self) -> Any:
        """Deliver the head message downstream, then dequeue it.

        Careful ordering (at-least-once): the message leaves the queue
        only after the downstream delivery succeeded, so a failing
        consumer can be retried without losing the message.
        """
        if not self.items:
            raise QueueEmptyError(f"{self.name}: queue is empty")
        message = self.items[0]
        self.emit(message)
        self.items.pop(0)
        self.dequeued_total += 1
        return message

    def pump_all(self) -> int:
        """Pump until empty; return the number of messages forwarded."""
        forwarded = 0
        while self.depth() > 0:
            self.pump()
            forwarded += 1
        return forwarded

    def on_stop(self) -> None:
        self.pump_all()
