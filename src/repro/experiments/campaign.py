"""Campaign driver: run the full detection pipeline on one application.

Glues the pieces of Figure 1 together for an :class:`AppProgram`:
analyze + weave (Steps 1–2), inject (Step 3), classify, and build the
report rows the paper's tables and figures are made of.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core import (
    Analyzer,
    AppReport,
    CampaignTelemetry,
    ClassificationResult,
    DetectionResult,
    Detector,
    InjectionCampaign,
    WrapPolicy,
    build_app_report,
    reclassify,
)
from repro.core.instrument import get_instrumentor

from .programs import ALL_PROGRAMS, AppProgram

__all__ = [
    "CampaignOutcome",
    "run_app_campaign",
    "run_programs",
    "library_wide_classification",
    "save_outcome",
    "load_outcome",
]


@dataclass
class CampaignOutcome:
    """Everything a finished campaign produced for one application."""

    program: AppProgram
    detection: DetectionResult
    classification: ClassificationResult
    report: AppReport

    @property
    def name(self) -> str:
        return self.program.name

    @property
    def telemetry(self) -> Optional[CampaignTelemetry]:
        """The engine telemetry of the detection phase (may be ``None``)."""
        return self.detection.telemetry


def run_app_campaign(
    program: AppProgram,
    *,
    stride: int = 1,
    policy: Optional[WrapPolicy] = None,
    capture_args: bool = True,
    scale: int = 1,
    workers: Optional[int] = None,
    resume: bool = False,
    journal: Optional[str] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    progress: Optional[Callable[[int, int], None]] = None,
    state_backend: str = "graph",
    static_prune: bool = False,
    trace_derive: bool = False,
    instrumentor: str = "weave",
    fingerprint_cache: bool = True,
    program_ref=None,
) -> CampaignOutcome:
    """Run detection + classification for one application.

    Args:
        program: the evaluation application (see
            :mod:`repro.experiments.programs`).
        stride: inject at every *stride*-th point (1 = the paper's full
            sweep).
        policy: optional wrap policy; its exception-free set filters runs
            before classification (Section 4.3).
        scale: workload repetitions per execution; larger values approach
            the paper's injection counts at quadratically growing cost.
        workers: when set (or when ``resume``/``journal`` is used), run
            the campaign on the parallel engine
            (:mod:`repro.experiments.parallel`) with this many worker
            processes.  The merged result is identical to the sequential
            engine's; only the attached telemetry differs.
        resume: skip injection points already recorded in ``journal``.
        journal: path of the campaign journal (JSONL of completed points).
        timeout: per-run wall-clock budget (seconds, parallel engine only).
        retries: retry attempts per timed-out point before marking it
            crashed (parallel engine only).
        progress: optional ``(runs_done, runs_total)`` callback.
        state_backend: how the campaign compares before/after state —
            ``graph`` (full object-graph isomorphism, the reference) or
            ``fingerprint`` (one-pass 128-bit digests with a graph
            fallback for diagnostics; same classification, faster).
        static_prune: run the static purity pre-analysis
            (:mod:`repro.core.staticpass`) and synthesize the records of
            provably decided injection points instead of executing them.
            The classification is identical; only provenance and
            telemetry reveal the pruning.
        trace_derive: instrument the profiling run
            (:mod:`repro.core.tracepass`) and derive the records of
            every trace-decidable injection point from that single
            reference execution; only trace-undecidable points execute.
            Composes with ``static_prune`` and every ``state_backend``;
            the classification is identical, with derived runs tagged
            ``provenance="trace"``.
        instrumentor: name of the instrumentation backend
            (:mod:`repro.core.instrument`) the campaign weaves and
            observes through — ``weave`` (method replacement, any
            Python) or ``monitoring`` (PEP 669 ``sys.monitoring``
            events, Python 3.12+).  The emitted log is identical.
        fingerprint_cache: memoize frame digests between barriered
            writes when ``state_backend`` supports it (fingerprint
            sweeps only; output is bit-identical either way).
        program_ref: optional
            :class:`~repro.experiments.parallel.ProgramRef` the parallel
            engine's workers rebuild the program from.  Required when
            *program* itself is not picklable — e.g. campaigns the
            service layer runs over ``exec``'d submitted source.
    """
    if scale > 1:
        program = program.scaled(scale * program.rounds)
    if workers is not None or resume or journal is not None:
        from .parallel import ParallelDetector

        parallel_detector = ParallelDetector(
            program,
            workers=workers,
            stride=stride,
            capture_args=capture_args,
            timeout=timeout,
            retries=retries,
            journal_path=journal,
            resume=resume,
            progress=progress,
            state_backend=state_backend,
            static_prune=static_prune,
            trace_derive=trace_derive,
            instrumentor=instrumentor,
            fingerprint_cache=fingerprint_cache,
            program_ref=program_ref,
        )
        detection = parallel_detector.detect()
        specs = parallel_detector.woven_specs
        return _classify_and_report(program, detection, specs, policy)
    analyzer = Analyzer(exclude=program.exclude)
    campaign = InjectionCampaign(
        capture_args=capture_args, state_backend=state_backend
    )
    engine = get_instrumentor(instrumentor, campaign, analyzer=analyzer)
    with engine:
        specs = engine.instrument(program.classes)
        # AppProgram satisfies the Program protocol (name + __call__ with
        # scaling applied), so it is the detector's test program directly
        detector = Detector(
            program,
            campaign,
            stride=stride,
            progress=progress,
            static_prune=static_prune,
            trace_derive=trace_derive,
            woven_specs=specs,
            instrumentor=engine,
            fingerprint_cache=fingerprint_cache,
        )
        detection = detector.detect()
    return _classify_and_report(program, detection, specs, policy)


def _classify_and_report(
    program: AppProgram,
    detection: DetectionResult,
    specs,
    policy: Optional[WrapPolicy],
) -> CampaignOutcome:
    """Shared tail of both engines: classify the log, build the report."""
    # the programmer-declared exception-free annotations always apply
    # (§4.3 third case); a caller-supplied policy is merged on top
    effective = WrapPolicy.from_specs(specs)
    if policy is not None:
        effective = effective.merged_with(policy)
    classification = reclassify(detection.log, effective)
    report = build_app_report(program.name, detection, classification)
    return CampaignOutcome(
        program=program,
        detection=detection,
        classification=classification,
        report=report,
    )


def library_wide_classification(
    outcomes: List[CampaignOutcome],
    *,
    policy: Optional[WrapPolicy] = None,
) -> ClassificationResult:
    """Worst-case classification of every method across all campaigns.

    The paper's applications share classes (``UpdatableCollection``, the
    Self\\* framework); this merges the campaign logs (see
    :func:`repro.core.runlog.merge_logs`) so a method that is non-atomic
    under *any* application's workload is reported non-atomic overall —
    the verdict that matters when hardening the shared library once.

    Args:
        policy: optional wrap policy whose exception-free set filters the
            merged runs before classification (same semantics as the
            per-campaign classification).
    """
    from repro.core.runlog import merge_logs

    merged = merge_logs([o.detection.log for o in outcomes])
    return reclassify(merged, policy or WrapPolicy())


def save_outcome(outcome: CampaignOutcome, directory: str) -> None:
    """Persist a campaign for offline processing (the paper's log files).

    Writes three files into *directory*: ``runlog.json`` (every run and
    mark), ``classification.json`` (the derived verdicts), and
    ``meta.json`` (the Table-1 row).
    """
    os.makedirs(directory, exist_ok=True)
    outcome.detection.log.save(os.path.join(directory, "runlog.json"))
    with open(
        os.path.join(directory, "classification.json"), "w", encoding="utf-8"
    ) as handle:
        handle.write(outcome.classification.to_json())
    meta = {
        "program": outcome.program.name,
        "language": outcome.program.language,
        "total_points": outcome.detection.total_points,
        "runs_executed": outcome.detection.runs_executed,
        "injections": outcome.report.injection_count,
        "classes": outcome.report.class_count,
        "methods": outcome.report.method_count,
    }
    if outcome.detection.telemetry is not None:
        meta["telemetry"] = outcome.detection.telemetry.to_dict()
    with open(
        os.path.join(directory, "meta.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)


def load_outcome(directory: str) -> "Tuple[Dict, RunLog, ClassificationResult]":
    """Load a saved campaign: ``(meta, run log, classification)``.

    The classification can also be recomputed from the run log (with a
    different policy) via :func:`repro.core.reclassify` — exactly the
    paper's offline re-processing workflow.

    ``meta["telemetry"]`` is rehydrated into a
    :class:`~repro.core.telemetry.CampaignTelemetry`; metadata written by
    older versions (no telemetry key, or a partial dict) loads with sane
    defaults instead of failing.
    """
    from repro.core.runlog import RunLog

    with open(os.path.join(directory, "meta.json"), encoding="utf-8") as handle:
        meta = json.load(handle)
    if "telemetry" in meta:
        meta["telemetry"] = CampaignTelemetry.from_dict(meta["telemetry"])
    log = RunLog.load(os.path.join(directory, "runlog.json"))
    with open(
        os.path.join(directory, "classification.json"), encoding="utf-8"
    ) as handle:
        classification = ClassificationResult.from_json(handle.read())
    return meta, log, classification


def run_programs(
    programs: Optional[List[AppProgram]] = None,
    *,
    stride: int = 1,
    capture_args: bool = True,
    scale: int = 1,
) -> List[CampaignOutcome]:
    """Run campaigns for several applications (default: all sixteen)."""
    outcomes = []
    for program in programs if programs is not None else ALL_PROGRAMS:
        outcomes.append(
            run_app_campaign(
                program,
                stride=stride,
                capture_args=capture_args,
                scale=scale,
            )
        )
    return outcomes
