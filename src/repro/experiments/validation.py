"""Validate the masking phase with the detector itself.

The paper closes its loop in two places: Section 4.3 ("the programmer
... can re-run the detection phase to test the modifications") and the
masking phase's whole premise that the corrected program ``P_C`` is
failure atomic.  This module re-runs the injection campaign *on the
masked program*: atomicity wrappers are woven first (innermost), then
injection wrappers on top, so every injected or genuine exception passes
through the rollback before the detector compares object graphs.

The expected verdict — asserted by tests and reported by the harness —
is that every method that was wrapped is classified failure atomic in
the second campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core import (
    Analyzer,
    InjectionCampaign,
    Masker,
    MaskingStats,
    WrapPolicy,
    make_injection_wrapper,
    reclassify,
)
from repro.core.classify import CATEGORY_ATOMIC, ClassificationResult
from repro.core.detector import Detector
from repro.core.policy import select_methods_to_wrap
from repro.core.runlog import MethodKey
from repro.core.weaver import Weaver

from .campaign import CampaignOutcome, run_app_campaign
from .programs import AppProgram

__all__ = ["MaskingValidation", "validate_masking"]


@dataclass
class MaskingValidation:
    """Outcome of the detect → mask → re-detect loop for one app."""

    program_name: str
    first: CampaignOutcome
    wrapped: List[MethodKey]
    second_classification: ClassificationResult
    masking_stats: MaskingStats

    @property
    def still_nonatomic(self) -> List[MethodKey]:
        """Wrapped methods the second campaign still flags (must be [])."""
        return [
            method
            for method in self.wrapped
            if method in self.second_classification.methods
            and self.second_classification.category_of(method)
            != CATEGORY_ATOMIC
        ]

    @property
    def masking_effective(self) -> bool:
        return not self.still_nonatomic

    def summary(self) -> str:
        verdict = "EFFECTIVE" if self.masking_effective else "INEFFECTIVE"
        return (
            f"{self.program_name}: masked {len(self.wrapped)} methods, "
            f"{self.masking_stats.rollbacks} rollbacks during re-detection, "
            f"masking {verdict}"
            + (
                f" (still non-atomic: {self.still_nonatomic})"
                if self.still_nonatomic
                else ""
            )
        )


def validate_masking(
    program: AppProgram,
    *,
    stride: int = 1,
    policy: Optional[WrapPolicy] = None,
    wrap_conditional: bool = False,
) -> MaskingValidation:
    """Detect, mask, and re-detect; return both campaigns' verdicts.

    Args:
        program: the evaluation application.
        stride: injection-point stride for both campaigns.
        policy: extra wrap policy merged into the first campaign's.
        wrap_conditional: also wrap conditional methods (§4.3 says this
            is unnecessary — the validation proves it, since conditional
            methods come back atomic once their pure callees are masked).
    """
    first = run_app_campaign(program, stride=stride, policy=policy)
    selection_policy = WrapPolicy(wrap_conditional=wrap_conditional)
    if policy is not None:
        selection_policy = selection_policy.merged_with(policy)
    to_wrap = select_methods_to_wrap(first.classification, selection_policy)

    stats = MaskingStats()
    analyzer = Analyzer(exclude=program.exclude)
    masker = Masker(to_wrap, stats=stats, analyzer=analyzer)
    campaign = InjectionCampaign()
    injection_weaver = Weaver(
        lambda spec: make_injection_wrapper(spec, campaign), analyzer
    )
    with masker:
        # innermost: the atomicity wrappers (the corrected program P_C)
        masker.mask_classes(program.classes)
        with injection_weaver:
            # outermost: the injection wrappers observing P_C
            specs = injection_weaver.weave_classes(program.classes)
            detector = Detector(program, campaign, stride=stride)
            detection = detector.detect()
        effective = WrapPolicy.from_specs(specs)
        if policy is not None:
            effective = effective.merged_with(policy)
        second = reclassify(detection.log, effective)
    return MaskingValidation(
        program_name=program.name,
        first=first,
        wrapped=to_wrap,
        second_classification=second,
        masking_stats=stats,
    )
