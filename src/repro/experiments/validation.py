"""Validate the masking phase with the detector itself.

The paper closes its loop in two places: Section 4.3 ("the programmer
... can re-run the detection phase to test the modifications") and the
masking phase's whole premise that the corrected program ``P_C`` is
failure atomic.  This module re-runs the injection campaign *on the
masked program*: atomicity wrappers are woven first (innermost), then
injection wrappers on top, so every injected or genuine exception passes
through the rollback before the detector compares object graphs.

Two checkpoint strategies can back the atomicity wrappers:

* ``"snapshot"`` — the eager deep copy of Listing 2 (the default).
* ``"undolog"`` — the §6.2 copy-on-write extension
  (:mod:`repro.core.cow`): a write barrier is installed on every program
  class for the duration of the masked campaign, and rollback replays
  the undo log.  Only sound for programs whose state changes through
  attribute (re)assignment; in-place container mutation bypasses the
  barrier, so such an application honestly reports INEFFECTIVE.

The expected verdict — asserted by tests and reported by the harness —
is that every method that was wrapped is classified failure atomic in
the second campaign.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core import (
    Analyzer,
    InjectionCampaign,
    MaskingStats,
    WrapPolicy,
    reclassify,
)
from repro.core.instrument import get_instrumentor
from repro.core.classify import CATEGORY_ATOMIC, ClassificationResult
from repro.core.cow import (
    install_write_barrier,
    make_undolog_atomicity_wrapper,
    remove_write_barrier,
)
from repro.core.detector import DetectionResult, Detector
from repro.core.exceptions import InjectionAbort
from repro.core.masking import make_atomicity_wrapper
from repro.core.policy import select_methods_to_wrap
from repro.core.state import capture_frame, graph_diff, graphs_equal
from repro.core.runlog import MethodKey
from repro.core.weaver import Weaver

from .campaign import CampaignOutcome, run_app_campaign
from .programs import AppProgram

__all__ = [
    "GraphCheck",
    "MaskingValidation",
    "STRATEGIES",
    "mask_and_redetect",
    "validate_masking",
]

#: Supported checkpoint strategies for the masked re-detection.
STRATEGIES = ("snapshot", "undolog")


@dataclass
class GraphCheck:
    """One rollback observation from the checker layer.

    Recorded every time an exception propagates out of a masked method:
    ``restored`` says whether the receiver's post-rollback object graph
    equals the graph captured on entry (the observable definition of
    failure atomicity), ``detail`` carries the first difference when not.
    """

    method: MethodKey
    restored: bool
    detail: Optional[str] = None


@dataclass
class MaskingValidation:
    """Outcome of the detect → mask → re-detect loop for one app."""

    program_name: str
    first: CampaignOutcome
    wrapped: List[MethodKey]
    second_classification: ClassificationResult
    masking_stats: MaskingStats
    strategy: str = "snapshot"

    @property
    def still_nonatomic(self) -> List[MethodKey]:
        """Wrapped methods the second campaign still flags (must be [])."""
        return [
            method
            for method in self.wrapped
            if method in self.second_classification.methods
            and self.second_classification.category_of(method)
            != CATEGORY_ATOMIC
        ]

    @property
    def masking_effective(self) -> bool:
        return not self.still_nonatomic

    def summary(self) -> str:
        verdict = "EFFECTIVE" if self.masking_effective else "INEFFECTIVE"
        return (
            f"{self.program_name}: masked {len(self.wrapped)} methods "
            f"({self.strategy}), "
            f"{self.masking_stats.rollbacks} rollbacks during re-detection, "
            f"masking {verdict}"
            + (
                f" (still non-atomic: {self.still_nonatomic})"
                if self.still_nonatomic
                else ""
            )
        )


def _make_graph_checker(spec, records: List[GraphCheck]):
    """Wrapper layer observing whether rollback actually restored state.

    Woven *between* the atomicity wrapper (inner) and the injection
    wrapper (outer), it captures the receiver's graph on entry and, when
    an exception unwinds through it — i.e. after the atomicity wrapper's
    rollback ran — captures again and records whether the graphs match.
    It adds no injection points and never swallows the exception.
    """
    original = spec.func
    has_receiver = spec.has_receiver

    @functools.wraps(original)
    def check_m(*args, **kwargs):
        receiver = args[0] if has_receiver and args else None
        if receiver is None:
            return original(*args, **kwargs)
        before = capture_frame([("self", receiver)])
        try:
            return original(*args, **kwargs)
        except InjectionAbort:
            raise
        except BaseException:
            after = capture_frame([("self", receiver)])
            if graphs_equal(before, after):
                records.append(GraphCheck(spec.key, True))
            else:
                records.append(
                    GraphCheck(spec.key, False, str(graph_diff(before, after)))
                )
            raise

    check_m._repro_wrapped = original  # type: ignore[attr-defined]
    check_m._repro_spec = spec  # type: ignore[attr-defined]
    check_m._repro_kind = "graph-checker"  # type: ignore[attr-defined]
    return check_m


def mask_and_redetect(
    program: AppProgram,
    to_wrap: List[MethodKey],
    *,
    strategy: str = "snapshot",
    stride: int = 1,
    policy: Optional[WrapPolicy] = None,
    stats: Optional[MaskingStats] = None,
    graph_checks: Optional[List[GraphCheck]] = None,
    atomic_factory=None,
    state_backend: str = "graph",
    instrumentor: str = "weave",
) -> Tuple[DetectionResult, ClassificationResult]:
    """Weave atomicity wrappers for *to_wrap*, re-run the campaign.

    Layering, innermost first: original method → atomicity wrapper
    (masked methods only) → graph checker (masked methods, when
    ``graph_checks`` is given — observations are appended to that list)
    → injection wrapper (every method).  All wrappers preserve the
    method's declared-exception metadata, so the masked campaign has the
    same injection points, in the same order, as the original one.

    Args:
        strategy: ``"snapshot"`` or ``"undolog"`` (see module docstring).
        policy: merged into the woven specs' exception-free policy before
            the final classification.
        atomic_factory: override the strategy's wrapper factory (a
            ``MethodSpec -> callable``); the fuzz harness's self-check
            uses this to plant a rollback-free wrapper and assert the
            differential checks notice.
        state_backend: backend the *re-detection* campaign compares
            state with.  The graph-checker layer always uses full graph
            captures regardless — it is the independent observer whose
            verdict must not depend on the backend under test.
        instrumentor: instrumentation backend
            (:mod:`repro.core.instrument`) the injection layer is woven
            through.  The atomicity and checker layers always weave by
            method replacement — they *change* behavior (rollback,
            observation) rather than observe it, which is outside the
            instrumentor protocol's scope.

    Returns:
        ``(detection, classification)`` of the masked campaign.
    """
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    if stats is None:
        stats = MaskingStats()
    wrap_set = set(to_wrap)
    analyzer = Analyzer(exclude=program.exclude)
    if atomic_factory is None:
        if strategy == "snapshot":
            atomic_factory = lambda spec: make_atomicity_wrapper(  # noqa: E731
                spec, stats=stats
            )
        else:
            atomic_factory = lambda spec: make_undolog_atomicity_wrapper(  # noqa: E731
                spec, stats=stats
            )
    campaign = InjectionCampaign(state_backend=state_backend)
    atomic_weaver = Weaver(atomic_factory, analyzer)
    checker_weaver = (
        Weaver(lambda spec: _make_graph_checker(spec, graph_checks), analyzer)
        if graph_checks is not None
        else None
    )
    injection_engine = get_instrumentor(
        instrumentor, campaign, analyzer=analyzer
    )

    def weave_selected(weaver: Weaver) -> None:
        for cls in program.classes:
            wanted = [
                spec.name
                for spec in analyzer.analyze_class(cls)
                if spec.key in wrap_set
            ]
            if wanted:
                weaver.weave_class(cls, methods=wanted)

    barriered: List[type] = []
    try:
        if strategy == "undolog":
            for cls in program.classes:
                install_write_barrier(cls)
                barriered.append(cls)
        with atomic_weaver:
            weave_selected(atomic_weaver)
            if checker_weaver is not None:
                with checker_weaver:
                    weave_selected(checker_weaver)
                    with injection_engine:
                        specs = injection_engine.instrument(program.classes)
                        detection = Detector(
                            program,
                            campaign,
                            stride=stride,
                            instrumentor=injection_engine,
                        ).detect()
            else:
                with injection_engine:
                    specs = injection_engine.instrument(program.classes)
                    detection = Detector(
                        program,
                        campaign,
                        stride=stride,
                        instrumentor=injection_engine,
                    ).detect()
        effective = WrapPolicy.from_specs(specs)
        if policy is not None:
            effective = effective.merged_with(policy)
        classification = reclassify(detection.log, effective)
    finally:
        for cls in barriered:
            remove_write_barrier(cls)
    return detection, classification


def validate_masking(
    program: AppProgram,
    *,
    stride: int = 1,
    policy: Optional[WrapPolicy] = None,
    wrap_conditional: bool = False,
    strategy: str = "snapshot",
    state_backend: str = "graph",
    static_prune: bool = False,
    trace_derive: bool = False,
    instrumentor: str = "weave",
    fingerprint_cache: bool = True,
) -> MaskingValidation:
    """Detect, mask, and re-detect; return both campaigns' verdicts.

    Args:
        program: the evaluation application.
        stride: injection-point stride for both campaigns.
        policy: extra wrap policy merged into the first campaign's.
        wrap_conditional: also wrap conditional methods (§4.3 says this
            is unnecessary — the validation proves it, since conditional
            methods come back atomic once their pure callees are masked).
        strategy: checkpoint strategy for the masked campaign's wrappers.
        state_backend: state backend both campaigns compare state with.
        static_prune: prune the *first* campaign with the static purity
            pre-analysis.  The masked re-detection always runs fully
            dynamic: atomicity wrappers rebind the woven methods, so the
            purity proofs from the unmasked program do not carry over.
        trace_derive: derive the *first* campaign's trace-decidable
            points from one instrumented reference run.  Like
            ``static_prune``, it never applies to the masked
            re-detection — the rollback behavior under test must be
            observed by real execution.
        instrumentor: instrumentation backend both campaigns' injection
            layers route through (:mod:`repro.core.instrument`).
        fingerprint_cache: enable the first campaign's frame-digest
            cache when ``state_backend`` supports it.  The masked
            re-detection never uses it: the atomicity wrappers' own
            rollback writes must not race cache invalidation.
    """
    first = run_app_campaign(
        program,
        stride=stride,
        policy=policy,
        state_backend=state_backend,
        static_prune=static_prune,
        trace_derive=trace_derive,
        instrumentor=instrumentor,
        fingerprint_cache=fingerprint_cache,
    )
    selection_policy = WrapPolicy(wrap_conditional=wrap_conditional)
    if policy is not None:
        selection_policy = selection_policy.merged_with(policy)
    to_wrap = select_methods_to_wrap(first.classification, selection_policy)

    stats = MaskingStats()
    _, second = mask_and_redetect(
        program,
        to_wrap,
        strategy=strategy,
        stride=stride,
        policy=policy,
        stats=stats,
        state_backend=state_backend,
        instrumentor=instrumentor,
    )
    return MaskingValidation(
        program_name=program.name,
        first=first,
        wrapped=to_wrap,
        second_classification=second,
        masking_stats=stats,
        strategy=strategy,
    )
