"""Shard supervision: heartbeats, bounded retries, chaos convergence.

:mod:`repro.experiments.shard` made a campaign resumable — any shard can
die mid-fragment and a later ``run_shard(resume=True)`` finishes the
work.  This module adds the part that *notices* the death and issues the
retry: a :class:`ShardSupervisor` runs each shard worker on a monitored
thread, watches a heartbeat the worker stamps after every completed
point, kills workers whose heartbeat goes stale (the same
async-exception mechanism the per-run watchdog uses, so a hung worker
unwinds cleanly through the instrumentor context), and retries crashed
or hung shards with capped exponential backoff and seeded jitter until
the fragment is complete or the attempt budget runs out.

Shards run **sequentially** under the supervisor: instrumentation
rewrites classes process-globally, so two shard workers in one process
would trample each other's weave.  The supervisor buys fault tolerance,
not parallelism — run one supervisor per process (or per host) and
merge the fragments, exactly like ``repro shard`` / ``repro merge``.

:func:`run_chaos_campaign` closes the loop with the paper's own thesis:
recovery code is the least-tested code, so our recovery code gets a
dedicated test harness.  It runs a fault-free sequential reference,
arms a seeded :class:`~repro.resilience.chaos.FaultPlan` (worker kills
mid-fragment, torn journal tails, injected IO errors, hung runs), runs
the supervised sharded campaign under fire, and asserts the merged
result is **bit-identical** to the reference — same run log JSON, same
classification — with every scheduled fault kind actually fired.
``repro chaos`` and ``benchmarks/bench_resilience.py`` are thin shells
around it.
"""

from __future__ import annotations

import ctypes
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.resilience.chaos import (
    FaultPlan,
    ShardHung,
    active_injector,
    arm,
    standard_plan,
)

from .campaign import run_app_campaign
from .programs import AppProgram
from .shard import (
    MergedCampaign,
    ShardError,
    ShardResult,
    merge_fragments,
    run_shard,
)

__all__ = [
    "SupervisorError",
    "ShardOutcome",
    "SupervisedCampaign",
    "ShardSupervisor",
    "ChaosReport",
    "run_chaos_campaign",
]


class SupervisorError(RuntimeError):
    """A shard exhausted its attempt budget without a complete fragment."""


class _Heartbeat:
    """Monotonic liveness stamp shared between worker and supervisor."""

    def __init__(self) -> None:
        self.ident: Optional[int] = None  # worker thread id, set on start
        self._lock = threading.Lock()
        self._last = time.monotonic()

    def stamp(self) -> None:
        with self._lock:
            self._last = time.monotonic()

    def age(self) -> float:
        with self._lock:
            return time.monotonic() - self._last


def _post_async_exc(ident: int, exc_type: type) -> bool:
    """Raise *exc_type* inside the thread *ident* at its next bytecode
    boundary — the only portable way to interrupt a hung worker thread
    (same mechanism as :class:`~repro.experiments.parallel._TimeoutGuard`).
    """
    posted = ctypes.pythonapi.PyThreadState_SetAsyncExc(
        ctypes.c_ulong(ident), ctypes.py_object(exc_type)
    )
    if posted > 1:  # hit more than one thread state: undo, do no harm
        ctypes.pythonapi.PyThreadState_SetAsyncExc(
            ctypes.c_ulong(ident), ctypes.py_object(None)
        )
        return False
    return posted == 1


@dataclass
class ShardOutcome:
    """How one shard fared under supervision."""

    shard_index: int
    attempts: int = 0
    failures: List[str] = field(default_factory=list)
    result: Optional[ShardResult] = None

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)


@dataclass
class SupervisedCampaign:
    """A supervised sharded campaign, merged and accounted for."""

    merged: MergedCampaign
    outcomes: List[ShardOutcome]
    fragment_paths: List[str]
    shard_retries: int
    wall_seconds: float


class ShardSupervisor:
    """Runs shard workers under heartbeat monitoring with bounded retry.

    Args:
        max_attempts: attempts per shard before :class:`SupervisorError`.
        backoff_base: first retry delay (seconds); doubles per attempt.
        backoff_cap: upper bound on any single delay.
        heartbeat_timeout: seconds without a completed point before a
            worker is declared hung and killed.
        kill_grace: seconds to wait for a killed worker to unwind.
        seed: seeds the backoff jitter so supervised runs are
            reproducible end to end.
        sleep: injection point for tests (defaults to ``time.sleep``).
    """

    def __init__(
        self,
        *,
        max_attempts: int = 5,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        heartbeat_timeout: float = 5.0,
        kill_grace: float = 2.0,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if backoff_base < 0 or backoff_cap < backoff_base:
            raise ValueError("need 0 <= backoff_base <= backoff_cap")
        if heartbeat_timeout <= 0 or kill_grace < 0:
            raise ValueError("heartbeat_timeout must be > 0, kill_grace >= 0")
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.heartbeat_timeout = heartbeat_timeout
        self.kill_grace = kill_grace
        self._rng = random.Random(seed)
        self._sleep = sleep

    def backoff(self, attempt: int) -> float:
        """Delay before retry *attempt*: capped exponential, seeded
        jitter in [0.5x, 1.5x) so co-scheduled supervisors desynchronize."""
        delay = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
        return delay * (0.5 + self._rng.random())

    # -- one shard ---------------------------------------------------

    def supervise_shard(
        self,
        program_factory: Callable[[], AppProgram],
        shard_index: int,
        shard_count: int,
        fragment_path: str,
        *,
        progress: Optional[Callable[[int, int], None]] = None,
        **campaign_kwargs: Any,
    ) -> ShardOutcome:
        """Run one shard to a complete fragment, retrying as needed.

        The first attempt starts fresh (truncating any stale fragment);
        every retry resumes from whatever the dead worker journaled —
        including repairing a torn tail — so work is never redone, and a
        crashed record (a point that kept blowing its run budget) is
        re-attempted rather than merged.
        """
        outcome = ShardOutcome(shard_index=shard_index)
        for attempt in range(1, self.max_attempts + 1):
            outcome.attempts = attempt
            failure = self._run_attempt(
                outcome,
                program_factory,
                shard_index,
                shard_count,
                fragment_path,
                resume=attempt > 1,
                progress=progress,
                campaign_kwargs=campaign_kwargs,
            )
            if failure is None:
                return outcome
            outcome.failures.append(f"attempt {attempt}: {failure}")
            if attempt < self.max_attempts:
                self._sleep(self.backoff(attempt))
        raise SupervisorError(
            f"shard {shard_index}/{shard_count} did not complete after "
            f"{self.max_attempts} attempt(s): "
            + "; ".join(outcome.failures)
        )

    def _run_attempt(
        self,
        outcome: ShardOutcome,
        program_factory: Callable[[], AppProgram],
        shard_index: int,
        shard_count: int,
        fragment_path: str,
        *,
        resume: bool,
        progress: Optional[Callable[[int, int], None]],
        campaign_kwargs: Dict[str, Any],
    ) -> Optional[str]:
        """One monitored attempt; returns a failure reason or ``None``."""
        beat = _Heartbeat()
        box: Dict[str, Any] = {}

        def beat_progress(done: int, total: int) -> None:
            beat.stamp()
            if progress is not None:
                progress(done, total)

        def worker() -> None:
            beat.ident = threading.get_ident()
            beat.stamp()
            try:
                box["result"] = run_shard(
                    program_factory(),
                    shard_index,
                    shard_count,
                    fragment_path,
                    resume=resume,
                    progress=beat_progress,
                    **campaign_kwargs,
                )
            except BaseException as exc:  # WorkerKilled/ShardHung included
                box["error"] = exc

        thread = threading.Thread(
            target=worker,
            name=f"shard-{shard_index}-attempt-{outcome.attempts}",
            daemon=True,
        )
        thread.start()
        hung = self._monitor(thread, beat)
        if hung:
            reason = (
                f"hung: no heartbeat for {self.heartbeat_timeout:g}s, "
                "worker killed"
            )
            if thread.is_alive():
                reason += f" (did not unwind within {self.kill_grace:g}s)"
            return reason
        error = box.get("error")
        if error is not None:
            return f"{type(error).__name__}: {error}"
        result: ShardResult = box["result"]
        if result.crashed:
            # A crashed record in the fragment would survive the merge
            # (and break bit-identity with the fault-free reference);
            # resume excludes crashed points from "done", so a retry
            # re-runs exactly them.
            return f"{result.crashed} crashed point(s) journaled"
        outcome.result = result
        return None

    def _monitor(self, thread: threading.Thread, beat: _Heartbeat) -> bool:
        """Join *thread*, polling the heartbeat; returns True if it was
        declared hung (and killed)."""
        poll = max(0.01, min(0.05, self.heartbeat_timeout / 4.0))
        while thread.is_alive():
            thread.join(timeout=poll)
            if not thread.is_alive():
                return False
            if beat.age() > self.heartbeat_timeout:
                if beat.ident is not None:
                    # The worker sleeps in short slices (chaos hangs) or
                    # runs subject bytecode, so the async exception is
                    # delivered promptly; it unwinds through ``with
                    # engine:`` restoring the woven classes.
                    _post_async_exc(beat.ident, ShardHung)
                thread.join(timeout=self.kill_grace)
                return True
        return False

    # -- whole campaign ----------------------------------------------

    def run(
        self,
        program_factory: Callable[[], AppProgram],
        shard_count: int,
        workdir: str,
        *,
        progress: Optional[Callable[[int, int], None]] = None,
        **campaign_kwargs: Any,
    ) -> SupervisedCampaign:
        """Supervise every shard of one campaign, then merge.

        Fragments land in *workdir* as ``shard-NN.jsonl``.  The merged
        result carries supervision telemetry (``shard_retries``, and
        ``faults_injected`` when a chaos plan is armed) on top of the
        usual campaign counters.
        """
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        started = time.perf_counter()
        os.makedirs(workdir, exist_ok=True)
        paths = [
            os.path.join(workdir, f"shard-{index:02d}.jsonl")
            for index in range(shard_count)
        ]
        outcomes = [
            self.supervise_shard(
                program_factory,
                index,
                shard_count,
                path,
                progress=progress,
                **campaign_kwargs,
            )
            for index, path in enumerate(paths)
        ]
        merged = merge_fragments(paths)
        wall = time.perf_counter() - started
        shard_retries = sum(outcome.retries for outcome in outcomes)
        telemetry = merged.detection.telemetry
        telemetry.engine = "supervised"
        telemetry.shard_retries = shard_retries
        telemetry.wall_seconds = wall
        telemetry.phase_seconds["supervise"] = wall
        injector = active_injector()
        if injector is not None:
            telemetry.faults_injected = injector.faults_injected
        return SupervisedCampaign(
            merged=merged,
            outcomes=outcomes,
            fragment_paths=paths,
            shard_retries=shard_retries,
            wall_seconds=wall,
        )


# ---------------------------------------------------------------------------
# The chaos convergence harness
# ---------------------------------------------------------------------------


@dataclass
class ChaosReport:
    """Verdict of one chaos experiment (the ``repro chaos`` output)."""

    program: str
    seed: int
    shard_count: int
    converged: bool
    identical: bool
    faults_injected: int
    faults_by_kind: Dict[str, int]
    required_kinds: List[str]
    missing_kinds: List[str]
    shard_retries: int
    attempts_per_shard: List[int]
    failures: List[str]
    fault_log: List[Dict[str, Any]]
    plan: Dict[str, Any]
    error: Optional[str]
    wall_seconds: float
    config: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "program": self.program,
            "seed": self.seed,
            "shard_count": self.shard_count,
            "converged": self.converged,
            "identical": self.identical,
            "faults_injected": self.faults_injected,
            "faults_by_kind": dict(self.faults_by_kind),
            "required_kinds": list(self.required_kinds),
            "missing_kinds": list(self.missing_kinds),
            "shard_retries": self.shard_retries,
            "attempts_per_shard": list(self.attempts_per_shard),
            "failures": list(self.failures),
            "fault_log": list(self.fault_log),
            "plan": dict(self.plan),
            "error": self.error,
            "wall_seconds": self.wall_seconds,
            "config": dict(self.config),
        }

    def summary(self) -> str:
        verdict = "CONVERGED" if self.converged else "DIVERGED"
        lines = [
            f"chaos[{self.program}] seed={self.seed} "
            f"shards={self.shard_count}: {verdict}",
            f"faults injected: {self.faults_injected} "
            + (
                "("
                + ", ".join(
                    f"{kind}={count}"
                    for kind, count in sorted(self.faults_by_kind.items())
                )
                + ")"
                if self.faults_by_kind
                else "(none)"
            ),
            f"shard retries: {self.shard_retries} "
            f"(attempts per shard: "
            f"{', '.join(str(a) for a in self.attempts_per_shard)})",
            f"merged result identical to fault-free reference: "
            f"{'yes' if self.identical else 'NO'}",
        ]
        if self.missing_kinds:
            lines.append(
                "scheduled fault kind(s) never fired: "
                + ", ".join(self.missing_kinds)
            )
        if self.error:
            lines.append(f"error: {self.error}")
        for failure in self.failures:
            lines.append(f"  {failure}")
        lines.append(f"wall: {self.wall_seconds:.3f}s")
        return "\n".join(lines)


def run_chaos_campaign(
    program_factory: Callable[[], AppProgram],
    workdir: str,
    *,
    seed: int = 0,
    shard_count: int = 3,
    plan: Optional[FaultPlan] = None,
    supervisor: Optional[ShardSupervisor] = None,
    stride: int = 1,
    capture_args: bool = True,
    timeout: Optional[float] = 0.25,
    retries: int = 1,
    state_backend: str = "graph",
    static_prune: bool = False,
    trace_derive: bool = False,
    instrumentor: str = "weave",
    fingerprint_cache: bool = True,
    hang_seconds: float = 1.0,
) -> ChaosReport:
    """Run one seeded chaos experiment and report convergence.

    Protocol:

    1. run the campaign fault-free on the sequential engine — the
       reference result;
    2. arm the seeded fault plan (default :func:`standard_plan`: one
       worker kill mid-fragment, one torn append, one injected IO
       error, and ``retries + 1`` consecutive hung runs so the hung
       point is journaled *crashed* before the supervisor rescues it);
    3. run the supervised sharded campaign under fire;
    4. assert the merged result is bit-identical to the reference
       (``RunLog.to_json()`` and classification JSON equality) and
       that every scheduled fault kind actually fired.

    ``converged`` is True only when all of that holds — it is the
    boolean ``make chaos-smoke`` gates on.
    """
    started = time.perf_counter()
    config: Dict[str, Any] = {
        "stride": stride,
        "capture_args": capture_args,
        "timeout": timeout,
        "retries": retries,
        "state_backend": state_backend,
        "static_prune": static_prune,
        "trace_derive": trace_derive,
        "instrumentor": instrumentor,
        "fingerprint_cache": fingerprint_cache,
    }
    reference = run_app_campaign(
        program_factory(),
        stride=stride,
        capture_args=capture_args,
        state_backend=state_backend,
        static_prune=static_prune,
        trace_derive=trace_derive,
        instrumentor=instrumentor,
        fingerprint_cache=fingerprint_cache,
    )
    if plan is None:
        plan = standard_plan(
            seed, hang_seconds=hang_seconds, run_hangs=retries + 1
        )
    if supervisor is None:
        supervisor = ShardSupervisor(seed=seed)

    supervised: Optional[SupervisedCampaign] = None
    error: Optional[str] = None
    with arm(plan) as injector:
        try:
            supervised = supervisor.run(
                program_factory,
                shard_count,
                workdir,
                stride=stride,
                capture_args=capture_args,
                timeout=timeout,
                retries=retries,
                state_backend=state_backend,
                static_prune=static_prune,
                trace_derive=trace_derive,
                instrumentor=instrumentor,
                fingerprint_cache=fingerprint_cache,
            )
        except (SupervisorError, ShardError) as exc:
            error = f"{type(exc).__name__}: {exc}"

    identical = supervised is not None and (
        supervised.merged.detection.log.to_json()
        == reference.detection.log.to_json()
        and supervised.merged.classify().to_json()
        == reference.classification.to_json()
        and supervised.merged.detection.genuine_failures
        == reference.detection.genuine_failures
    )
    required = plan.kinds()
    coverage = injector.coverage()
    missing = [kind for kind in required if coverage.get(kind, 0) < 1]
    converged = identical and not missing and error is None
    return ChaosReport(
        program=program_factory().name,
        seed=seed,
        shard_count=shard_count,
        converged=converged,
        identical=identical,
        faults_injected=injector.faults_injected,
        faults_by_kind=coverage,
        required_kinds=required,
        missing_kinds=missing,
        shard_retries=supervised.shard_retries if supervised else 0,
        attempts_per_shard=(
            [outcome.attempts for outcome in supervised.outcomes]
            if supervised
            else []
        ),
        failures=(
            [f for o in supervised.outcomes for f in o.failures]
            if supervised
            else []
        ),
        fault_log=list(injector.log),
        plan=plan.to_dict(),
        error=error,
        wall_seconds=time.perf_counter() - started,
        config=config,
    )
