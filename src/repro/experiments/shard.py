"""Shard-able campaign service: point-range shards + coordinator merge.

The parallel engine (:mod:`repro.experiments.parallel`) fans a campaign
out over one process pool on one host.  This module promotes the same
resumable-journal design to a *distributed* shape: a campaign is split
into deterministic **shards** (contiguous point-range partitions of the
shared :func:`~repro.core.detector.plan_points` plan), every shard runs
in an independent worker process — possibly on another host, with no
coordination beyond agreeing on ``(program, config, shard_count)`` — and
each emits a self-contained **journal fragment**.  A coordinator then
merges the fragments into a result **bit-identical** to the sequential
engine's (``RunLog.to_json()`` equality), across engines × state
backends × ``--static-prune``/``--trace-derive``.

Why this is safe without a coordinator during execution:

* the plan is a pure function of the profiling run, and the profiling
  run is deterministic — every shard computes the *same* plan and the
  same static/trace decisions from its own profile;
* :func:`shard_points` is a stable balanced partition of that plan, and
  the shard assignment (``shard_index``/``shard_count``) is recorded in
  each fragment's header, so fragments from different campaigns or
  mis-numbered workers are rejected at merge time rather than mixed;
* each fragment embeds its shard's profiling log; the coordinator
  asserts all profiles are byte-identical before trusting any of them
  (a nondeterministic subject is detected, not silently merged);
* fragments are append-only JSONL with the same crash-safe semantics as
  the campaign journal — a shard killed mid-write leaves a truncated
  tail that is dropped on ``resume=True``, and the merge step reports
  exactly which points (and which shard) are missing.

The fragment format (one JSON object per line)::

    {"kind": "header", ...campaign plan..., "shard_index": 1, "shard_count": 4}
    {"kind": "profile", "total_points": N, "log": {...}, "exception_free": [...]}
    {"kind": "run", "point": 17, "record": {...}, "genuine_failure": null, "attempts": 1}

``repro shard`` / ``repro merge`` expose this from the CLI; the async
front end (:mod:`repro.service`) builds the "millions of users" queueing
and caching layer on top.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core import (
    Analyzer,
    ClassificationResult,
    DetectionError,
    InjectionCampaign,
    WrapPolicy,
    plan_points,
    reclassify,
)
from repro.core.detector import DetectionResult
from repro.core.instrument import get_instrumentor, resolve_instrumentor_name
from repro.core.runlog import RunLog, RunRecord, merge_logs
from repro.core.state import FingerprintCache, get_backend
from repro.core.staticpass import StaticPruner, call_through_boundary
from repro.core.telemetry import CampaignTelemetry
from repro.core.tracepass import TraceDeriver, TraceRecorder

from .parallel import CampaignJournal, run_point_with_timeout

__all__ = [
    "ShardError",
    "ShardFragment",
    "ShardResult",
    "MergedCampaign",
    "shard_points",
    "run_shard",
    "merge_fragments",
]

#: Header keys that identify the campaign a fragment belongs to.  Two
#: fragments may only be merged when they agree on every one of these.
CAMPAIGN_KEYS = (
    "version",
    "program",
    "rounds",
    "stride",
    "total_points",
    "capture_args",
    "state_backend",
    "static_prune",
    "trace_derive",
    "instrumentor",
    "shard_count",
)


class ShardError(ValueError):
    """Raised when journal fragments cannot be merged into a campaign."""


def shard_points(points: Sequence[int], shard_count: int) -> List[List[int]]:
    """Deterministically partition a campaign plan into contiguous shards.

    The split is *stable*: it depends only on the plan and the shard
    count, so independent workers (different processes, different hosts)
    agree on the assignment without talking to each other.  Shard sizes
    are balanced to within one point (the first ``len(points) %
    shard_count`` shards get the extra one), and every shard holds a
    contiguous range of the plan, so a fragment's byte layout mirrors a
    slice of the sequential sweep.
    """
    if shard_count < 1:
        raise ValueError("shard_count must be >= 1")
    base, extra = divmod(len(points), shard_count)
    shards: List[List[int]] = []
    start = 0
    for index in range(shard_count):
        size = base + (1 if index < extra else 0)
        shards.append(list(points[start : start + size]))
        start += size
    return shards


# ---------------------------------------------------------------------------
# Fragment journal
# ---------------------------------------------------------------------------


class ShardFragment:
    """One shard's append-only journal: header, profile, run lines.

    Wraps :class:`~repro.experiments.parallel.CampaignJournal` (same
    crash-safe line format, same lenient/tail-tolerant replay) and adds
    the ``profile`` line that makes a fragment self-contained: the merge
    step needs the profiling run's call counts without re-executing the
    subject.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._journal = CampaignJournal(path)

    def start(self, header: Dict[str, Any], profile: Dict[str, Any]) -> None:
        """Truncate and write a fresh header + profile line."""
        self._journal.start(header)
        payload = {"kind": "profile"}
        payload.update(profile)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def append_run(
        self,
        point: int,
        record: RunRecord,
        genuine_failure: Optional[str],
        attempts: int,
    ) -> None:
        self._journal.append_run(point, record, genuine_failure, attempts)

    def load_done(self, header: Dict[str, Any]) -> Dict[int, Dict[str, Any]]:
        """Completed (non-crashed) points for a resume; tolerant of a
        truncated tail, strict about a mismatched header."""
        return self._journal.load(header)


@dataclass
class _Fragment:
    """A fully parsed fragment, as the merge step sees it."""

    path: str
    header: Dict[str, Any]
    profile: Optional[Dict[str, Any]]
    runs: Dict[int, Dict[str, Any]]


def _replay_fragment(path: str) -> _Fragment:
    """Parse a fragment for merging.

    Unlike the resume path, crashed records are *kept* — a merged
    campaign reports crashed points exactly like the parallel engine
    does (the fix is to re-run that shard with ``resume=True``).  A
    truncated tail line (shard killed mid-write) is dropped; the
    coverage check then reports the missing points.
    """
    try:
        with open(path, "rb") as handle:
            raw_lines = handle.read().splitlines()
    except FileNotFoundError:
        raise ShardError(f"fragment {path!r} does not exist")
    if not raw_lines:
        raise ShardError(f"fragment {path!r} is empty")
    try:
        header = json.loads(raw_lines[0].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise ShardError(f"fragment {path!r} has a corrupt header")
    if not isinstance(header, dict) or header.get("kind") != "header":
        raise ShardError(f"fragment {path!r} does not start with a header")
    profile: Optional[Dict[str, Any]] = None
    runs: Dict[int, Dict[str, Any]] = {}
    for raw in raw_lines[1:]:
        if not raw.strip():
            continue
        try:
            entry = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break  # truncated tail: everything before it still counts
        if not isinstance(entry, dict):
            break
        kind = entry.get("kind")
        if kind == "profile":
            profile = entry
        elif kind == "run" and "point" in entry:
            record = entry.get("record")
            if not isinstance(record, dict):
                break  # torn inside the record payload
            runs[int(entry["point"])] = entry
    return _Fragment(path=path, header=header, profile=profile, runs=runs)


# ---------------------------------------------------------------------------
# Shard execution
# ---------------------------------------------------------------------------


@dataclass
class ShardResult:
    """What one shard worker produced (plus the fragment on disk)."""

    shard_index: int
    shard_count: int
    fragment_path: str
    points: List[int]
    total_points: int
    executed: int
    resumed: int
    pruned: int
    derived: int
    crashed: int
    retries: int
    wall_seconds: float
    telemetry: CampaignTelemetry


def run_shard(
    program,
    shard_index: int,
    shard_count: int,
    fragment_path: str,
    *,
    stride: int = 1,
    capture_args: bool = True,
    timeout: Optional[float] = None,
    retries: int = 1,
    resume: bool = False,
    state_backend: str = "graph",
    static_prune: bool = False,
    trace_derive: bool = False,
    instrumentor: str = "weave",
    fingerprint_cache: bool = True,
    progress: Optional[Callable[[int, int], None]] = None,
) -> ShardResult:
    """Run one shard of a campaign and write its journal fragment.

    Profiles in-process (weave → count points → static/trace decisions),
    takes the ``shard_index``-th slice of the deterministic shard
    assignment, executes exactly those points, and appends every record
    — executed, synthesized (static) and derived (trace) alike — to the
    fragment so the coordinator can merge without re-profiling.  With
    ``resume=True`` a fragment left behind by a killed worker is
    replayed first and only the unfinished points run.

    Runs on any thread: per-run timeouts use SIGALRM on the main thread
    and the async-exception watchdog elsewhere (see
    :func:`~repro.experiments.parallel.run_point_with_timeout`).
    """
    if shard_count < 1:
        raise ValueError("shard_count must be >= 1")
    if not 0 <= shard_index < shard_count:
        raise ValueError(
            f"shard_index must be in [0, {shard_count}), got {shard_index}"
        )
    if stride < 1:
        raise ValueError("stride must be >= 1")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    state_backend = get_backend(state_backend).name
    instrumentor = resolve_instrumentor_name(instrumentor)

    started = time.perf_counter()
    campaign = InjectionCampaign(
        capture_args=capture_args, state_backend=state_backend
    )
    engine = get_instrumentor(
        instrumentor, campaign, analyzer=Analyzer(exclude=program.exclude)
    )
    with engine:
        specs = engine.instrument(program.classes)
        pruner: Optional[StaticPruner] = None
        deriver: Optional[TraceDeriver] = None
        recorder: Optional[TraceRecorder] = None
        if static_prune:
            pruner = StaticPruner(specs)
        observers: List[Any] = []
        woven_classes = {spec.owner for spec in specs if spec.owner}
        if trace_derive:
            recorder = TraceRecorder()
            engine.start_write_trace(recorder, woven_classes)
            deriver = TraceDeriver(campaign, pruner=pruner, recorder=recorder)
            observers.append(deriver)
        elif pruner is not None:
            observers.append(pruner)
        for observer in observers:
            engine.subscribe(observer)
        if observers:
            engine.attach()
        campaign.begin_profile()
        try:
            call_through_boundary(program)
        except BaseException as exc:
            raise DetectionError(
                f"program {program.name!r} failed during profiling: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        finally:
            total = campaign.end_profile()
            if engine.attached:
                engine.detach()
            for observer in observers:
                engine.unsubscribe(observer)
            if recorder is not None:
                engine.stop_write_trace(recorder)
        prune_map = pruner.prune_map() if pruner is not None else {}
        derive_map = deriver.derive_map() if deriver is not None else {}
        decided = dict(derive_map)
        decided.update(prune_map)
        profiled = time.perf_counter()

        points = plan_points(total, stride=stride)
        mine = shard_points(points, shard_count)[shard_index]
        header = {
            "program": program.name,
            "rounds": program.rounds,
            "stride": stride,
            "total_points": total,
            "capture_args": capture_args,
            "state_backend": state_backend,
            "static_prune": static_prune,
            "trace_derive": trace_derive,
            "instrumentor": instrumentor,
            "shard_index": shard_index,
            "shard_count": shard_count,
        }
        # The profile line makes the fragment self-contained: the merge
        # step takes call counts from here (asserting every shard saw
        # the identical profile) instead of re-executing the subject.
        # The snapshot is taken before any injection run, so the log
        # holds counts and no runs — exactly the parent profile log the
        # parallel engine merges from.
        profile_payload = {
            "total_points": total,
            "log": json.loads(campaign.log.to_json()),
            "exception_free": sorted(
                spec.key for spec in specs if spec.exception_free
            ),
        }

        fragment = ShardFragment(fragment_path)
        resumed: Dict[int, Dict[str, Any]] = {}
        if resume:
            resumed = fragment.load_done(header)
            resumed = {p: e for p, e in resumed.items() if p in set(mine)}
        if not resumed:
            fragment.start(header, profile_payload)

        cache: Optional[FingerprintCache] = None
        if (
            fingerprint_cache
            and woven_classes
            and campaign.digest_cache is None
            and getattr(campaign.backend, "supports_digest_cache", False)
        ):
            cache = FingerprintCache()
            cache.start(woven_classes)
            campaign.digest_cache = cache

        executed = pruned = derived = crashed = retry_count = 0
        done = len(resumed)
        if progress is not None and done:
            progress(done, len(mine))
        try:
            for point in mine:
                if point in resumed:
                    continue
                if point in decided:
                    # Decided without execution: journal the synthesized
                    # (static) or derived (trace) record so the merge
                    # step needs no re-derivation.  attempts=0 marks the
                    # record as never having run the subject.
                    fragment.append_run(point, decided[point], None, 0)
                    if point in prune_map:
                        pruned += 1
                    else:
                        derived += 1
                else:
                    record, failure, attempts, did_crash = (
                        run_point_with_timeout(
                            program,
                            campaign,
                            point,
                            timeout=timeout,
                            retries=retries,
                        )
                    )
                    fragment.append_run(point, record, failure, attempts)
                    executed += 1
                    retry_count += attempts - 1
                    if did_crash:
                        crashed += 1
                done += 1
                if progress is not None:
                    progress(done, len(mine))
        finally:
            if cache is not None:
                campaign.digest_cache = None
                cache.stop()
    finished = time.perf_counter()

    wall = finished - started
    state_stats = campaign.state_stats
    telemetry = CampaignTelemetry(
        engine="shard",
        workers=1,
        runs_total=len(mine),
        runs_executed=executed,
        runs_resumed=len(resumed),
        runs_pruned=pruned,
        runs_derived=derived,
        runs_crashed=crashed,
        retries=retry_count,
        static_pure_methods=(
            pruner.pure_method_count if pruner is not None else 0
        ),
        static_seconds=pruner.seconds if pruner is not None else 0.0,
        trace_seconds=deriver.seconds if deriver is not None else 0.0,
        trace_writes=recorder.recorded_writes if recorder is not None else 0,
        trace_captures=deriver.stats.captures if deriver is not None else 0,
        trace_capture_retries=(
            deriver.capture_retries if deriver is not None else 0
        ),
        instrumentor=instrumentor,
        fingerprint_cache_hits=cache.hits if cache is not None else 0,
        fingerprint_cache_misses=cache.misses if cache is not None else 0,
        wall_seconds=wall,
        runs_per_second=(executed / wall) if wall > 0 else 0.0,
        phase_seconds={
            "profile": profiled - started,
            "execute": finished - profiled,
        },
        state_backend=state_backend,
        state_captures=state_stats.captures,
        state_fingerprints=state_stats.fingerprints,
        state_compares=state_stats.compares,
        state_seconds=state_stats.seconds,
    )
    return ShardResult(
        shard_index=shard_index,
        shard_count=shard_count,
        fragment_path=fragment_path,
        points=list(mine),
        total_points=total,
        executed=executed,
        resumed=len(resumed),
        pruned=pruned,
        derived=derived,
        crashed=crashed,
        retries=retry_count,
        wall_seconds=wall,
        telemetry=telemetry,
    )


# ---------------------------------------------------------------------------
# Coordinator merge
# ---------------------------------------------------------------------------


@dataclass
class MergedCampaign:
    """A coordinator-merged campaign: the sequential-identical result
    plus everything needed to classify it offline."""

    detection: DetectionResult
    header: Dict[str, Any]
    exception_free: frozenset = field(default_factory=frozenset)

    def classify(
        self, policy: Optional[WrapPolicy] = None
    ) -> ClassificationResult:
        """Classify the merged log exactly like ``run_app_campaign``:
        the programmer-declared exception-free annotations (recorded in
        the fragments' profile line) always apply, and a caller-supplied
        policy is merged on top."""
        effective = WrapPolicy(exception_free=set(self.exception_free))
        if policy is not None:
            effective = effective.merged_with(policy)
        return reclassify(self.detection.log, effective)


def _header_mismatches(
    base: Dict[str, Any], other: Dict[str, Any]
) -> List[str]:
    diffs = []
    for key in CAMPAIGN_KEYS:
        if base.get(key) != other.get(key):
            diffs.append(f"{key}={other.get(key)!r} (expected {base.get(key)!r})")
    return diffs


def merge_fragments(paths: Sequence[str]) -> MergedCampaign:
    """Merge journal fragments into one campaign result.

    Validates, then merges deterministically:

    1. every fragment's header agrees on the campaign plan (program,
       stride, total points, backend, instrumentor, passes, shard
       count) — any differing key/value pairs are reported;
    2. shard indices cover ``0..shard_count-1`` exactly once;
    3. every fragment's embedded profiling log is byte-identical (the
       determinism the whole scheme rests on);
    4. the union of the fragments' run records covers the plan exactly,
       each point inside its shard's assigned range — missing points
       name the shard to resume.

    The merged :class:`DetectionResult` is bit-identical to the
    sequential engine's: call counts from the (shared) profiling log,
    run records in planned-point order.
    """
    if not paths:
        raise ShardError("no fragments to merge")
    fragments = [_replay_fragment(path) for path in paths]
    base = fragments[0]
    for fragment in fragments[1:]:
        diffs = _header_mismatches(base.header, fragment.header)
        if diffs:
            raise ShardError(
                f"fragment {fragment.path!r} belongs to a different "
                f"campaign than {base.path!r}: " + ", ".join(diffs)
            )
    shard_count = int(base.header.get("shard_count", 0))
    if shard_count < 1:
        raise ShardError(
            f"fragment {base.path!r} has no shard_count in its header"
        )
    indices = sorted(int(f.header.get("shard_index", -1)) for f in fragments)
    if indices != list(range(shard_count)):
        seen = ", ".join(str(i) for i in indices)
        raise ShardError(
            f"fragments do not cover shards 0..{shard_count - 1} exactly "
            f"once (got shard indices: {seen})"
        )

    incomplete = [f.path for f in fragments if f.profile is None]
    if incomplete:
        raise ShardError(
            "fragment(s) missing their profile line (shard killed before "
            "profiling finished): " + ", ".join(repr(p) for p in incomplete)
        )
    profile_json = json.dumps(base.profile["log"], sort_keys=True)
    for fragment in fragments[1:]:
        if json.dumps(fragment.profile["log"], sort_keys=True) != profile_json:
            raise ShardError(
                f"profiling runs diverged between {base.path!r} and "
                f"{fragment.path!r}; the subject program is not "
                "deterministic, so shard results cannot be merged"
            )

    total = int(base.header["total_points"])
    stride = int(base.header.get("stride", 1))
    points = plan_points(total, stride=stride)
    assignment = shard_points(points, shard_count)
    by_point: Dict[int, Dict[str, Any]] = {}
    for fragment in fragments:
        allowed = set(assignment[int(fragment.header["shard_index"])])
        for point, entry in fragment.runs.items():
            if point not in allowed:
                raise ShardError(
                    f"fragment {fragment.path!r} holds point {point}, "
                    f"outside its assigned range"
                )
            by_point[point] = entry

    missing: Dict[int, List[int]] = {}
    for index, assigned in enumerate(assignment):
        gone = [p for p in assigned if p not in by_point]
        if gone:
            missing[index] = gone
    if missing:
        detail = "; ".join(
            f"shard {index} is missing point(s) "
            + ", ".join(str(p) for p in gone)
            for index, gone in sorted(missing.items())
        )
        raise ShardError(
            f"incomplete campaign: {detail} — re-run those shards with "
            "resume=True (repro shard --resume) and merge again"
        )

    merge_started = time.perf_counter()
    runs_log = RunLog()
    genuine_failures: List[str] = []
    executed = pruned = derived = crashed = retry_count = 0
    for point in points:
        entry = by_point[point]
        record = RunRecord.from_dict(entry["record"])
        runs_log.runs.append(record)
        if entry.get("genuine_failure"):
            genuine_failures.append(entry["genuine_failure"])
        attempts = int(entry.get("attempts", 1))
        if attempts > 0:
            executed += 1
            retry_count += attempts - 1
        elif record.provenance == "static":
            pruned += 1
        else:
            derived += 1
        if record.crashed:
            crashed += 1
    profile_log = RunLog.from_json(profile_json)
    # to_json sorts call_counts keys, but merge_logs rebuilds
    # methods_seen from call_counts *insertion* order — restore the
    # first-seen order the profiling run recorded (methods_seen is a
    # list and survived the round-trip intact) so the merged log is
    # byte-identical to the sequential engine's.
    profile_log.call_counts = {
        method: profile_log.call_counts[method]
        for method in profile_log.methods_seen
        if method in profile_log.call_counts
    }
    merged = merge_logs([profile_log, runs_log])
    merge_seconds = time.perf_counter() - merge_started

    telemetry = CampaignTelemetry(
        engine="sharded",
        workers=shard_count,
        runs_total=len(points),
        runs_executed=executed,
        runs_pruned=pruned,
        runs_derived=derived,
        runs_crashed=crashed,
        retries=retry_count,
        instrumentor=str(base.header.get("instrumentor", "weave")),
        state_backend=str(base.header.get("state_backend", "graph")),
        wall_seconds=merge_seconds,
        phase_seconds={"merge": merge_seconds},
    )
    detection = DetectionResult(
        program=str(base.header["program"]),
        log=merged,
        total_points=total,
        runs_executed=len(points),
        genuine_failures=genuine_failures,
        telemetry=telemetry,
    )
    return MergedCampaign(
        detection=detection,
        header=dict(base.header),
        exception_free=frozenset(base.profile.get("exception_free", ())),
    )
