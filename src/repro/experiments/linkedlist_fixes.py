"""The Section 6.1 narrative: trivial fixes to ``LinkedList``.

The paper reports reducing the pure failure non-atomic methods of the
Java LinkedList application "from 18 (representing 7.8% of the calls) to
3 (less than 0.2% of the calls) with just trivial modifications to the
code, and by identifying methods that never throw exceptions".

This experiment reproduces the shape: run the detection campaign on the
legacy :class:`~repro.collections.LinkedList`, then on
:class:`~repro.collections.FixedLinkedList` (statement reordering and
temporary variables only), and compare the pure method counts and the
fraction of calls going to pure methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.collections import (
    EmptyCollectionError,
    FixedLinkedList,
    LinkedList,
    LLCell,
    NoSuchElementError,
    UpdatableCollection,
)
from repro.core.classify import CATEGORY_PURE

from .campaign import CampaignOutcome, run_app_campaign
from .programs import LANGUAGE_JAVA, AppProgram

__all__ = ["FixComparison", "compare_linkedlist_fixes"]


def _workload(list_class: Callable[[], LinkedList]) -> Callable[[], None]:
    def body() -> None:
        lst = list_class()
        lst.extend([3, 1, 2])
        lst.insert_first(0)
        lst.insert_at(2, 9)
        for index in range(lst.size()):
            lst.get_at(index)
        for _ in range(3):
            lst.contains(9)
            lst.size()
            lst.is_empty()
        lst.index_of(9)
        lst.first()
        lst.last()
        lst.replace_at(0, 5)
        lst.replace_all(9, 7)
        lst.remove_at(2)
        lst.remove_element(7)
        lst.remove_first()
        lst.remove_last()
        lst.extend([4, 5])
        lst.reverse()
        try:
            lst.get_at(99)
        except NoSuchElementError:
            pass
        try:
            list_class().remove_last()
        except EmptyCollectionError:
            pass
        lst.clear()

    return body


@dataclass
class FixComparison:
    """Before/after numbers of the Section 6.1 experiment."""

    before: CampaignOutcome
    after: CampaignOutcome

    @property
    def pure_before(self) -> List[str]:
        return self.before.classification.methods_in(CATEGORY_PURE)

    @property
    def pure_after(self) -> List[str]:
        return self.after.classification.methods_in(CATEGORY_PURE)

    @property
    def pure_call_fraction_before(self) -> float:
        return self.before.report.pure_call_fraction()

    @property
    def pure_call_fraction_after(self) -> float:
        return self.after.report.pure_call_fraction()

    def summary(self) -> str:
        return (
            f"pure methods: {len(self.pure_before)} -> {len(self.pure_after)}; "
            f"pure calls: {100 * self.pure_call_fraction_before:.2f}% -> "
            f"{100 * self.pure_call_fraction_after:.2f}%"
        )


def compare_linkedlist_fixes(*, stride: int = 1) -> FixComparison:
    """Run the before/after campaigns and return the comparison."""
    legacy = AppProgram(
        name="LinkedList",
        language=LANGUAGE_JAVA,
        classes=[UpdatableCollection, LinkedList, LLCell],
        body=_workload(LinkedList),
    )
    fixed = AppProgram(
        name="LinkedList(fixed)",
        language=LANGUAGE_JAVA,
        classes=[UpdatableCollection, LinkedList, FixedLinkedList, LLCell],
        body=_workload(FixedLinkedList),
    )
    return FixComparison(
        before=run_app_campaign(legacy, stride=stride),
        after=run_app_campaign(fixed, stride=stride),
    )
