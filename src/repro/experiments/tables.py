"""Generators for Table 1 and Figures 2–4 of the paper.

Each generator takes the campaign outcomes (or runs them) and returns
both structured data and the formatted text the benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core import (
    format_class_distribution,
    format_method_classification,
    format_table1,
)

from .campaign import CampaignOutcome, run_programs
from .programs import CPP_PROGRAMS, JAVA_PROGRAMS

__all__ = [
    "table1",
    "figure2",
    "figure3",
    "figure4",
    "FigureData",
    "run_cpp_campaigns",
    "run_java_campaigns",
]


def run_cpp_campaigns(stride: int = 1, scale: int = 1) -> List[CampaignOutcome]:
    """Campaigns for the six C++ (Self\\*) applications."""
    return run_programs(CPP_PROGRAMS, stride=stride, scale=scale)


def run_java_campaigns(stride: int = 1, scale: int = 1) -> List[CampaignOutcome]:
    """Campaigns for the ten Java (collections + Regexp) applications."""
    return run_programs(JAVA_PROGRAMS, stride=stride, scale=scale)


def table1(outcomes: List[CampaignOutcome]) -> str:
    """Render the paper's Table 1 for the given campaign outcomes."""
    return format_table1([outcome.report for outcome in outcomes])


@dataclass
class FigureData:
    """Structured data behind one figure: per-app category fractions."""

    title: str
    #: app name -> {category -> fraction}
    series: Dict[str, Dict[str, float]]
    rendered: str

    def fractions(self, app: str) -> Dict[str, float]:
        return self.series[app]

    def average(self, category: str) -> float:
        if not self.series:
            return 0.0
        return sum(f[category] for f in self.series.values()) / len(self.series)


def _method_figure(
    outcomes: List[CampaignOutcome], title: str
) -> Dict[str, FigureData]:
    reports = [outcome.report for outcome in outcomes]
    by_methods = FigureData(
        title=f"{title}(a): % of methods defined and used",
        series={r.name: r.fractions_by_methods() for r in reports},
        rendered=format_method_classification(reports),
    )
    by_calls = FigureData(
        title=f"{title}(b): % of method calls",
        series={r.name: r.fractions_by_calls() for r in reports},
        rendered=format_method_classification(reports, weighted_by_calls=True),
    )
    return {"a": by_methods, "b": by_calls}


def figure2(outcomes: Optional[List[CampaignOutcome]] = None) -> Dict[str, FigureData]:
    """Figure 2: method classification of the C++ applications."""
    if outcomes is None:
        outcomes = run_cpp_campaigns()
    return _method_figure(outcomes, "Figure 2")


def figure3(outcomes: Optional[List[CampaignOutcome]] = None) -> Dict[str, FigureData]:
    """Figure 3: method classification of the Java applications."""
    if outcomes is None:
        outcomes = run_java_campaigns()
    return _method_figure(outcomes, "Figure 3")


def figure4(
    cpp: Optional[List[CampaignOutcome]] = None,
    java: Optional[List[CampaignOutcome]] = None,
) -> Dict[str, FigureData]:
    """Figure 4: class-level distribution for both application sets."""
    if cpp is None:
        cpp = run_cpp_campaigns()
    if java is None:
        java = run_java_campaigns()
    result = {}
    for key, outcomes, label in (("a", cpp, "C++"), ("b", java, "Java")):
        reports = [outcome.report for outcome in outcomes]
        result[key] = FigureData(
            title=f"Figure 4({key}): class distribution ({label})",
            series={r.name: r.class_fractions() for r in reports},
            rendered=format_class_distribution(reports),
        )
    return result
