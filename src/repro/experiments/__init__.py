"""Experiment harness: the paper's evaluation, table by table.

* :mod:`programs <repro.experiments.programs>` — the sixteen evaluation
  applications of Table 1 (6 C++/Self\\*, 10 Java/collections+Regexp).
* :mod:`campaign <repro.experiments.campaign>` — the end-to-end
  detection pipeline for one application.
* :mod:`tables <repro.experiments.tables>` — Table 1 and Figures 2–4.
* :mod:`fig5 <repro.experiments.fig5>` — the masking overhead grid.
* :mod:`linkedlist_fixes <repro.experiments.linkedlist_fixes>` — the
  Section 6.1 "trivial modifications" narrative.
"""

from .campaign import (
    CampaignOutcome,
    library_wide_classification,
    load_outcome,
    run_app_campaign,
    run_programs,
    save_outcome,
)
from .fig5 import (
    DEFAULT_RATIOS,
    DEFAULT_SIZES,
    OverheadPoint,
    SyntheticService,
    format_overhead_table,
    measure_overhead,
    measure_undolog_ablation,
)
from .linkedlist_fixes import FixComparison, compare_linkedlist_fixes
from .parallel import (
    CampaignJournal,
    JournalError,
    ParallelDetector,
    ProgramRef,
    run_parallel_detection,
)
from .programs import (
    ALL_PROGRAMS,
    CPP_PROGRAMS,
    JAVA_PROGRAMS,
    AppProgram,
    program_by_name,
)
from .shard import (
    MergedCampaign,
    ShardError,
    ShardFragment,
    ShardResult,
    merge_fragments,
    run_shard,
    shard_points,
)
from .reportall import reproduce_all
from .supervise import (
    ChaosReport,
    ShardSupervisor,
    SupervisedCampaign,
    SupervisorError,
    run_chaos_campaign,
)
from .synthetic import GROUND_TRUTH, synthetic_program
from .validation import MaskingValidation, validate_masking
from .tables import (
    FigureData,
    figure2,
    figure3,
    figure4,
    run_cpp_campaigns,
    run_java_campaigns,
    table1,
)

__all__ = [
    "AppProgram",
    "ALL_PROGRAMS",
    "CPP_PROGRAMS",
    "JAVA_PROGRAMS",
    "program_by_name",
    "CampaignOutcome",
    "run_app_campaign",
    "run_programs",
    "save_outcome",
    "load_outcome",
    "library_wide_classification",
    "ParallelDetector",
    "ProgramRef",
    "CampaignJournal",
    "JournalError",
    "run_parallel_detection",
    "MergedCampaign",
    "ShardError",
    "ShardFragment",
    "ShardResult",
    "merge_fragments",
    "run_shard",
    "shard_points",
    "ChaosReport",
    "ShardSupervisor",
    "SupervisedCampaign",
    "SupervisorError",
    "run_chaos_campaign",
    "table1",
    "figure2",
    "figure3",
    "figure4",
    "FigureData",
    "run_cpp_campaigns",
    "run_java_campaigns",
    "SyntheticService",
    "OverheadPoint",
    "measure_overhead",
    "measure_undolog_ablation",
    "format_overhead_table",
    "DEFAULT_SIZES",
    "DEFAULT_RATIOS",
    "FixComparison",
    "compare_linkedlist_fixes",
    "GROUND_TRUTH",
    "synthetic_program",
    "MaskingValidation",
    "validate_masking",
    "reproduce_all",
]
