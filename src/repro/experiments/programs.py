"""Test programs for every application of the paper's evaluation.

Table 1 lists six C++ applications (the Self\\* framework apps) and ten
Java applications (the Doug Lea collections plus Jakarta Regexp).  Each
entry here is an :class:`AppProgram`: a deterministic, re-runnable
workload plus the classes the Code Weaver instruments for it.

Workloads are sized so a full injection sweep (one program execution per
injection point) stays laptop-fast, while still exercising every method
and the interesting error paths of each subject.  Hot one-line accessors
are excluded from instrumentation via the Analyzer's exclusion list (the
analog of the paper's web-interface exclusions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Tuple

from repro.collections import (
    CircularList,
    CLCell,
    Dynarray,
    EmptyCollectionError,
    HashedMap,
    HashedSet,
    IllegalElementError,
    LinkedBuffer,
    LinkedList,
    LLCell,
    LLMap,
    LLPair,
    NoSuchElementError,
    RBMap,
    RBTree,
    KVPair,
    UpdatableCollection,
)
from repro.collections.linked_buffer import BufferChunk
from repro.collections.rb_tree import RBCell
from repro.regexp import (
    Compiler,
    Matcher,
    Parser,
    Regexp,
    RegexpSyntaxError,
)
from repro.regexp.program import Instruction, Program as RegexpProgram
from repro.selfstar.apps import (
    AdaptorChainApp,
    StdQApp,
    Xml2CTcpApp,
    Xml2CViaSc1App,
    Xml2CViaSc2App,
    Xml2XmlApp,
)
from repro.selfstar.apps.samples import XML_DOCUMENTS

__all__ = [
    "AppProgram",
    "CPP_PROGRAMS",
    "JAVA_PROGRAMS",
    "ALL_PROGRAMS",
    "program_by_name",
    "is_registered",
]

LANGUAGE_CPP = "C++"
LANGUAGE_JAVA = "Java"


@dataclass
class AppProgram:
    """One evaluation application: workload + instrumentation set."""

    name: str
    language: str
    classes: List[type]
    body: Callable[[], None]
    #: Method names (or "Class.method" keys) excluded from weaving.
    exclude: FrozenSet[str] = frozenset()
    #: Workload repetitions per program execution.  The paper's workloads
    #: produce thousands of injections; raising ``rounds`` moves ours
    #: toward that scale (campaign time grows quadratically with it).
    rounds: int = 1

    def __call__(self) -> None:
        for _ in range(self.rounds):
            self.body()

    def scaled(self, rounds: int) -> "AppProgram":
        """A copy of this application with a *rounds*-times workload."""
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        return AppProgram(
            name=self.name,
            language=self.language,
            classes=self.classes,
            body=self.body,
            exclude=self.exclude,
            rounds=rounds,
        )


# --------------------------------------------------------------------------
# C++ side: the Self* framework applications
# --------------------------------------------------------------------------

_SMALL_DOCS = XML_DOCUMENTS[:2]

#: XML parser/writer internals: treated as uninstrumentable library code,
#: the way the paper's Java flavor cannot instrument core classes
#: (Section 5.2).  Only the public entry points remain wrapped.
_XML_HOT = frozenset(
    {
        "XmlParser._peek",
        "XmlParser._advance",
        "XmlParser._starts_with",
        "XmlParser._error",
        "XmlParser._skip_whitespace",
        "XmlParser._skip_prolog",
        "XmlParser._skip_comments",
        "XmlParser._skip_one_comment",
        "XmlParser._parse_element",
        "XmlParser._parse_attributes",
        "XmlParser._parse_quoted",
        "XmlParser._parse_content",
        "XmlParser._expect_closing_tag",
        "XmlParser._parse_name",
        "XmlParser._parse_entity",
        "XmlWriter._write_element",
    }
)


def _adaptor_chain_body() -> None:
    AdaptorChainApp(batch_size=3).run()


def _std_q_body() -> None:
    StdQApp(capacity=4, burst=3).run(8)


def _xml2c_tcp_body() -> None:
    Xml2CTcpApp(error_rate=0.25, seed=11).run(XML_DOCUMENTS)


def _xml2c_viasc1_body() -> None:
    Xml2CViaSc1App().run(_SMALL_DOCS)


def _xml2c_viasc2_body() -> None:
    Xml2CViaSc2App(batch_size=2).run(_SMALL_DOCS)


def _xml2xml_body() -> None:
    Xml2XmlApp().run(XML_DOCUMENTS)


def _with_app(app_class: type, extra: Tuple[type, ...] = ()) -> List[type]:
    """Instrumentation set for one Self* app.

    The driver class itself is *not* woven: it is the test program ``P``
    of the paper's methodology, which drives the classified application
    classes but is not itself a classification subject (symmetric with
    the Java side, where the test bodies are plain functions).
    """
    classes = list(app_class.involved_classes())
    classes.extend(extra)
    seen = set()
    unique = []
    for cls in classes:
        if cls is not app_class and cls not in seen:
            seen.add(cls)
            unique.append(cls)
    return unique


CPP_PROGRAMS: List[AppProgram] = [
    AppProgram(
        name="adaptorChain",
        language=LANGUAGE_CPP,
        classes=_with_app(AdaptorChainApp),
        body=_adaptor_chain_body,
    ),
    AppProgram(
        name="stdQ",
        language=LANGUAGE_CPP,
        classes=_with_app(StdQApp),
        body=_std_q_body,
    ),
    AppProgram(
        name="xml2Ctcp",
        language=LANGUAGE_CPP,
        classes=_with_app(Xml2CTcpApp),
        body=_xml2c_tcp_body,
        exclude=_XML_HOT | {"decide", "mangle", "_initializer_literal", "_emit_struct", "_emit_initializer"},
    ),
    AppProgram(
        name="xml2Cviasc1",
        language=LANGUAGE_CPP,
        classes=_with_app(Xml2CViaSc1App),
        body=_xml2c_viasc1_body,
        exclude=_XML_HOT | {"mangle", "_initializer_literal", "_emit_struct", "_emit_initializer"},
    ),
    AppProgram(
        name="xml2Cviasc2",
        language=LANGUAGE_CPP,
        classes=_with_app(Xml2CViaSc2App),
        body=_xml2c_viasc2_body,
        exclude=_XML_HOT | {"mangle", "_initializer_literal", "_emit_struct", "_emit_initializer"},
    ),
    AppProgram(
        name="xml2xml1",
        language=LANGUAGE_CPP,
        classes=_with_app(Xml2XmlApp),
        body=_xml2xml_body,
        exclude=_XML_HOT | {"_write_element", "transform_element"},
    ),
]


# --------------------------------------------------------------------------
# Java side: the collections and Regexp applications
# --------------------------------------------------------------------------


def _read_phase(collection, probes) -> None:
    """Query-heavy traffic: the read-mostly usage real callers generate."""
    for _ in range(3):
        collection.size()
        collection.is_empty()
        for probe in probes:
            collection.contains(probe)


def _circular_list_body() -> None:
    ring = CircularList()
    for value in (2, 3, 4):
        ring.insert_last(value)
    ring.insert_first(1)
    ring.insert_at(2, 9)
    for index in range(ring.size()):
        ring.get_at(index)
    _read_phase(ring, (1, 9, 42))
    ring.index_of(9)
    ring.replace_at(0, 7)
    ring.rotate(2)
    ring.remove_at(1)
    ring.remove_element(9)
    ring.remove_first()
    ring.remove_last()
    try:
        ring.get_at(99)
    except NoSuchElementError:
        pass
    try:
        CircularList().remove_first()
    except EmptyCollectionError:
        pass
    ring.clear()


def _dynarray_body() -> None:
    array = Dynarray(capacity=2, screener=lambda e: e != "bad")
    for value in range(5):
        array.append(value)
    array.insert_at(2, 99)
    array.replace_at(0, -1)
    array.remove_at(3)
    array.remove_element(99)
    for index in range(array.size()):
        array.get_at(index)
    _read_phase(array, (0, 4, "missing"))
    array.index_of(4)
    array.sort()
    array.trim_to_size()
    try:
        array.insert_at(1, "bad")  # screener failure mid-shift
    except IllegalElementError:
        pass
    try:
        array.get_at(50)
    except NoSuchElementError:
        pass
    array.clear()


def _hashed_map_body() -> None:
    mapping = HashedMap(capacity=2)
    for key in range(6):  # forces one growth/rehash
        mapping.put(f"k{key}", key)
    mapping.put("k1", 11)
    for key in ("k1", "k2", "k3", "k4", "k5"):
        mapping.get(key)
        mapping.contains_key(key)
    mapping.get_or_default("missing", 0)
    mapping.size()
    mapping.is_empty()
    mapping.remove_key("k0")
    mapping.items()
    mapping.keys()
    mapping.values()
    try:
        mapping.get("missing")
    except NoSuchElementError:
        pass
    mapping.clear()


def _hashed_set_body() -> None:
    hashed = HashedSet(capacity=2)
    hashed.union_update([1, 2, 3, 4, 5])  # forces growth
    hashed.add(3)
    for probe in (1, 2, 3, 4, 5, 6, 7):
        hashed.contains(probe)
    hashed.size()
    hashed.is_empty()
    hashed.remove(2)
    hashed.discard(99)
    hashed.intersection_update([1, 3, 5])
    try:
        hashed.remove(2)
    except NoSuchElementError:
        pass
    hashed.clear()


def _ll_map_body() -> None:
    mapping = LLMap()
    mapping.update({"a": 1, "b": 2, "c": 3})
    mapping.put("a", 9)
    for key in ("a", "b", "c", "z"):
        mapping.contains_key(key)
        mapping.get_or_default(key, 0)
    mapping.get("b")
    mapping.size()
    mapping.keys()
    mapping.values()
    mapping.replace_values(9, 10)
    mapping.remove_key("c")
    try:
        mapping.remove_key("zz")
    except NoSuchElementError:
        pass
    mapping.clear()


def _linked_buffer_body() -> None:
    buffer = LinkedBuffer(chunk_size=4)
    buffer.append_text("hello, world")
    for _ in range(6):
        buffer.peek()
        buffer.size()
        buffer.text()
    buffer.chunk_count()
    buffer.take_char()
    buffer.take_text(4)
    buffer.compact()
    buffer.append_char("!")
    try:
        buffer.take_text(100)
    except NoSuchElementError:
        pass
    buffer.clear()


def _linked_list_body() -> None:
    lst = LinkedList()
    lst.extend([3, 1, 2])
    lst.insert_first(0)
    lst.insert_at(2, 9)
    for index in range(lst.size()):
        lst.get_at(index)
    _read_phase(lst, (0, 9, 42))
    lst.index_of(9)
    lst.first()
    lst.last()
    lst.replace_at(0, 5)
    lst.replace_all(9, 7)
    lst.remove_at(2)
    lst.remove_element(7)
    lst.remove_first()
    lst.remove_last()
    lst.extend([4, 5])
    lst.reverse()
    lst.removed_duplicates()
    try:
        lst.get_at(99)
    except NoSuchElementError:
        pass
    try:
        LinkedList().remove_last()
    except EmptyCollectionError:
        pass
    lst.clear()


def _rb_map_body() -> None:
    mapping = RBMap()
    mapping.update({"m": 1, "a": 2, "z": 3, "q": 4})
    mapping.put("a", 9)
    for key in ("m", "a", "z", "q", "nope"):
        mapping.contains_key(key)
        mapping.get_or_default(key)
    mapping.get("m")
    mapping.first_key()
    mapping.last_key()
    mapping.keys()
    mapping.size()
    mapping.remove_key("m")
    try:
        mapping.get("nope")
    except NoSuchElementError:
        pass
    mapping.clear()


def _rb_tree_body() -> None:
    tree = RBTree()
    tree.extend([5, 2, 8, 1, 9, 3])
    tree.insert(2)  # duplicate
    for probe in (1, 2, 3, 5, 8, 9, 42):
        tree.contains(probe)
    tree.minimum()
    tree.maximum()
    tree.height()
    tree.size()
    tree.is_empty()
    tree.remove(5)
    tree.take_minimum()
    try:
        tree.remove(42)
    except NoSuchElementError:
        pass
    tree.clear()


def _regexp_body() -> None:
    # compile once, match many: the typical usage profile of the library
    regexp = Regexp("(a|b)+c?")
    for text in (
        "abac", "bbb", "xyz", "c", "ab", "", "aabbc", "ba",
        "cab", "abcabc", "bbbb", "ac",
    ):
        regexp.match(text)
        regexp.fullmatch(text)
    regexp.search("xxabc")
    regexp.findall("ab ba")
    Regexp("\\d{2}").substitute("a12b34", "#")
    try:
        Regexp("(unclosed")
    except RegexpSyntaxError:
        pass


_COLLECTION_BASE = (UpdatableCollection,)

#: Tiny per-node plumbing excluded from weaving in the regexp subject
#: (per-character parser steps and per-instruction VM internals).
_REGEXP_HOT = frozenset(
    {
        "_peek",
        "_next",
        "_error",
        "_lookahead",
        "_greedy",
        "_class_char",
        "class_matches",
        "describe",
    }
)

JAVA_PROGRAMS: List[AppProgram] = [
    AppProgram(
        name="CircularList",
        language=LANGUAGE_JAVA,
        classes=[UpdatableCollection, CircularList, CLCell],
        body=_circular_list_body,
    ),
    AppProgram(
        name="Dynarray",
        language=LANGUAGE_JAVA,
        classes=[UpdatableCollection, Dynarray],
        body=_dynarray_body,
    ),
    AppProgram(
        name="HashedMap",
        language=LANGUAGE_JAVA,
        classes=[UpdatableCollection, HashedMap, LLPair],
        body=_hashed_map_body,
    ),
    AppProgram(
        name="HashedSet",
        language=LANGUAGE_JAVA,
        classes=[UpdatableCollection, HashedSet],
        body=_hashed_set_body,
    ),
    AppProgram(
        name="LLMap",
        language=LANGUAGE_JAVA,
        classes=[UpdatableCollection, LLMap, LLPair],
        body=_ll_map_body,
    ),
    AppProgram(
        name="LinkedBuffer",
        language=LANGUAGE_JAVA,
        classes=[UpdatableCollection, LinkedBuffer, BufferChunk],
        body=_linked_buffer_body,
    ),
    AppProgram(
        name="LinkedList",
        language=LANGUAGE_JAVA,
        classes=[UpdatableCollection, LinkedList, LLCell],
        body=_linked_list_body,
    ),
    AppProgram(
        name="RBMap",
        language=LANGUAGE_JAVA,
        classes=[UpdatableCollection, RBMap, RBTree, RBCell, KVPair],
        body=_rb_map_body,
    ),
    AppProgram(
        name="RBTree",
        language=LANGUAGE_JAVA,
        classes=[UpdatableCollection, RBTree, RBCell],
        body=_rb_tree_body,
    ),
    AppProgram(
        name="RegExp",
        language=LANGUAGE_JAVA,
        classes=[Regexp, Parser, Compiler, RegexpProgram, Instruction, Matcher],
        body=_regexp_body,
        exclude=_REGEXP_HOT,
    ),
]

ALL_PROGRAMS: List[AppProgram] = CPP_PROGRAMS + JAVA_PROGRAMS

_BY_NAME: Dict[str, AppProgram] = {p.name: p for p in ALL_PROGRAMS}


def program_by_name(name: str) -> AppProgram:
    """Look up an evaluation program by its Table 1 name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None


def is_registered(name: str) -> bool:
    """True when *name* is one of the sixteen evaluation applications."""
    return name in _BY_NAME
