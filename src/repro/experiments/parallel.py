"""Parallel, resumable injection-campaign engine.

The paper's detection phase (Listing 1, Steps 1–3) re-executes the test
program once per injection point, so campaign wall-clock grows linearly
with the number of points.  The runs are mutually independent — each one
fixes a single ``InjectionPoint`` threshold on fresh program state —
which makes the sweep embarrassingly parallel.  This module fans the
per-point runs out over a :mod:`multiprocessing` pool:

1. the parent weaves + profiles **once** (Step 1–2 plus the counting run
   of Step 3) to learn the injection-point count and the per-method call
   counts, then unweaves;
2. the planned points (shared with the sequential engine via
   :func:`repro.core.detector.plan_points`) are split into contiguous
   chunks and dispatched to worker processes, each of which weaves its
   own copy of the subject classes and executes the shared single-run
   kernel :func:`repro.core.detector.run_injection_point`;
3. worker run logs are merged deterministically with the existing
   :func:`repro.core.runlog.merge_logs` — call counts from the parent's
   profiling run, run records in planned-point order — so the merged
   :class:`DetectionResult` is **bit-identical** to the sequential
   engine's (``RunLog.to_json()`` equality, not just statistics).

Robustness and observability around the fan-out:

* **per-run timeouts** (``timeout=`` seconds) with a bounded retry
  (``retries=``) before a point is marked ``crashed`` in its
  :class:`RunRecord`;
* a **campaign journal** (JSONL of completed points) written as results
  arrive, enabling ``resume=True`` to skip finished work after an
  interruption — crashed points are re-attempted on resume;
* structured :class:`~repro.core.telemetry.CampaignTelemetry`
  (runs/sec, per-phase timings, worker utilization) attached to the
  result and surfaced by ``run_app_campaign`` and the CLI
  (``repro detect --workers N --resume``).
"""

from __future__ import annotations

import json
import math
import os
import signal
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core import (
    Analyzer,
    DetectionError,
    InjectionCampaign,
    MethodSpec,
    plan_points,
    run_injection_point,
)
from repro.core.instrument import get_instrumentor, resolve_instrumentor_name
from repro.core.runlog import RunLog, RunRecord, merge_logs
from repro.core.state import FingerprintCache, StateStats, get_backend
from repro.core.staticpass import StaticPruner, call_through_boundary
from repro.core.telemetry import CampaignTelemetry
from repro.core.tracepass import TraceDeriver, TraceRecorder
from repro.core.detector import DetectionResult
from repro.resilience.chaos import fire as _fault_site

__all__ = [
    "ProgramRef",
    "CampaignJournal",
    "JournalError",
    "ParallelDetector",
    "run_parallel_detection",
    "run_point_with_timeout",
    "scan_jsonl",
    "repair_jsonl_tail",
]

#: Journal schema version; bump when the line format changes.
JOURNAL_VERSION = 1


class JournalError(ValueError):
    """Raised when a campaign journal cannot be used for a resume."""


# ---------------------------------------------------------------------------
# Crash-safe JSONL machinery (shared with the persistent result cache)
# ---------------------------------------------------------------------------


def scan_jsonl(data: bytes) -> Tuple[List[Dict[str, Any]], int]:
    """Leniently parse append-only JSONL that may end in a torn write.

    Returns ``(entries, valid_end)``: every fully-written dict line in
    order, plus the byte offset of the end of the last complete line —
    the truncation point :func:`repair_jsonl_tail` restores the file
    to.  The file is scanned as bytes because a worker killed inside
    ``write(2)`` can tear a line in the middle of a multi-byte UTF-8
    sequence, not just between characters.
    """
    entries: List[Dict[str, Any]] = []
    valid_end = 0
    for raw, kept in zip(data.splitlines(), data.splitlines(keepends=True)):
        if not raw.strip():
            valid_end += len(kept)
            continue
        try:
            entry = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break  # torn tail: everything before it still counts
        if not isinstance(entry, dict):
            break  # a torn tail can decode to a bare JSON scalar
        entries.append(entry)
        valid_end += len(kept)
    return entries, valid_end


def repair_jsonl_tail(path: str, data: bytes, valid_end: int) -> None:
    """Durably drop a torn JSONL tail so subsequent appends stay clean.

    Truncates *path* back to *valid_end* (the end of the last
    fully-parsed line) and restores the trailing newline if the tear
    landed exactly on a line boundary without one.
    """
    if valid_end < len(data):
        with open(path, "rb+") as handle:
            handle.truncate(valid_end)
    elif data and not data.endswith(b"\n"):
        with open(path, "ab") as handle:
            handle.write(b"\n")


# ---------------------------------------------------------------------------
# Program references: how a worker process finds its test program
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProgramRef:
    """A picklable recipe for rebuilding an :class:`AppProgram` in a worker.

    Worker processes cannot receive the woven program object itself (the
    weave is per-process state), so they receive either the registry name
    of one of the evaluation applications, or a module-level factory
    callable (used by tests and custom subjects).  ``rounds`` re-applies
    workload scaling in the worker.
    """

    name: Optional[str] = None
    factory: Optional[Callable[[], Any]] = None
    rounds: int = 1

    def resolve(self):
        from .programs import program_by_name

        if self.factory is not None:
            program = self.factory()
        elif self.name is not None:
            program = program_by_name(self.name)
        else:
            raise ValueError("ProgramRef needs a name or a factory")
        if self.rounds != program.rounds:
            program = program.scaled(self.rounds)
        return program

    @classmethod
    def for_program(cls, program) -> "ProgramRef":
        """Build a ref for a registry program (``repro.experiments.programs``)."""
        from .programs import is_registered

        if not is_registered(program.name):
            raise ValueError(
                f"program {program.name!r} is not in the registry; pass an "
                "explicit ProgramRef(factory=...) so workers can rebuild it"
            )
        return cls(name=program.name, rounds=program.rounds)


# ---------------------------------------------------------------------------
# Campaign journal: JSONL of completed points, written as results arrive
# ---------------------------------------------------------------------------


class CampaignJournal:
    """Append-only JSONL journal of a campaign's completed points.

    Line 1 is a header identifying the campaign plan; every further line
    records one finished point (its :class:`RunRecord`, the genuine
    failure it observed, and how many attempts it took).  A journal whose
    plan no longer matches (different program, stride, rounds, or point
    count) is rejected on resume rather than silently merged.

    Older or partial journals load leniently: missing header keys are
    treated as matching, unknown line kinds are skipped, and a corrupt
    trailing line (an interrupted write) ends the replay instead of
    raising.
    """

    def __init__(self, path: str) -> None:
        self.path = path

    # -- writing -----------------------------------------------------

    def start(self, header: Dict[str, Any]) -> None:
        """Truncate and write a fresh header line."""
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        payload = {"kind": "header", "version": JOURNAL_VERSION}
        payload.update(header)
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True) + "\n")

    def append_run(
        self,
        point: int,
        record: RunRecord,
        genuine_failure: Optional[str],
        attempts: int,
    ) -> None:
        line = json.dumps(
            {
                "kind": "run",
                "point": point,
                "record": record.to_dict(),
                "genuine_failure": genuine_failure,
                "attempts": attempts,
            },
            sort_keys=True,
        )
        # Chaos seams (no-ops unless a FaultPlan is armed): an armed
        # ioerror fires before the write, a kill/torn fault after it —
        # the on-disk states a real ENOSPC or mid-write SIGKILL leaves.
        _fault_site("journal.append", self.path)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        _fault_site("journal.appended", self.path)

    # -- reading -----------------------------------------------------

    def load(
        self, expected_header: Dict[str, Any]
    ) -> Dict[int, Dict[str, Any]]:
        """Replay the journal; return ``{point: run-line}`` for resumes.

        Crashed points are *not* returned as done — a resume re-attempts
        them.  Raises :class:`JournalError` when a header key that is
        present contradicts the expected plan; the error names **every**
        differing key/value pair, not just the first.

        A worker killed mid-``write`` leaves a truncated final line —
        possibly torn inside a multi-byte UTF-8 sequence, so the file is
        read in binary and decoded line by line.  The partial tail is
        dropped (everything before it still counts) instead of raising,
        and — because every caller of ``load`` is about to *append* —
        the torn bytes are also truncated from the file, so the next
        ``append_run`` starts on a fresh line instead of concatenating
        onto the partial one (which would corrupt that record too).
        """
        done: Dict[int, Dict[str, Any]] = {}
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return done
        if not data:
            return done
        raw_lines = data.splitlines()
        kept_lines = data.splitlines(keepends=True)
        header = self._parse_header(raw_lines[0])
        if header is None:
            # The write was torn inside the header line itself: nothing
            # was durably recorded, so the journal is effectively empty
            # (the campaign restarts and rewrites it from scratch).
            self._repair_tail(data, 0)
            return done
        mismatches = []
        for key, expected in sorted(expected_header.items()):
            present = header.get(key)
            if present is not None and present != expected:
                mismatches.append(f"{key}={present!r} (expected {expected!r})")
        if mismatches:
            raise JournalError(
                f"journal {self.path!r} was written for a different "
                f"campaign: " + ", ".join(mismatches) + "; delete it or "
                "pass a different --journal path"
            )
        valid_end = len(kept_lines[0])
        for index, raw in enumerate(raw_lines[1:], start=1):
            if not raw.strip():
                valid_end += len(kept_lines[index])
                continue
            try:
                entry = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                break  # interrupted write: everything before it still counts
            if not isinstance(entry, dict):
                break  # a torn tail can decode to a bare JSON scalar
            if entry.get("kind") == "run" and "point" in entry:
                record = entry.get("record")
                if not isinstance(record, dict):
                    break  # torn inside the record payload
                if not record.get("crashed", False):
                    done[int(entry["point"])] = entry
            valid_end += len(kept_lines[index])
        self._repair_tail(data, valid_end)
        return done

    def _repair_tail(self, data: bytes, valid_end: int) -> None:
        """Durably drop a torn tail so subsequent appends stay clean.

        Truncates the file back to *valid_end* (the end of the last
        fully-parsed line) and restores the trailing newline if the
        tear landed exactly on a line boundary without one.
        """
        repair_jsonl_tail(self.path, data, valid_end)

    def _parse_header(self, raw: bytes) -> Optional[Dict[str, Any]]:
        """Parse the first journal line.

        ``None`` means the line is a torn partial write (not valid
        JSON): a crash artifact, treated as an empty journal.  A line
        that *does* parse but is not a header marks a file that was
        never a campaign journal — that is a caller error and raises.
        """
        try:
            header = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(header, dict) or header.get("kind") != "header":
            raise JournalError(
                f"journal {self.path!r} does not start with a header"
            )
        return header


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class _RunTimeout(BaseException):
    """Raised by the SIGALRM handler when a run exceeds its budget.

    Derives from ``BaseException`` so application-level ``except
    Exception`` blocks inside the workload cannot swallow it.
    """


class _TimeoutGuard:
    """Arms a per-run wall-clock budget around one subject execution.

    On the main thread this is the classic ``SIGALRM`` + ``setitimer``
    pair.  ``signal.signal`` raises ``ValueError`` anywhere else — e.g.
    when the engine is driven from a ``repro serve`` worker thread — so
    off the main thread the guard falls back to a watchdog timer that
    posts :class:`_RunTimeout` into the running thread as an async
    exception.  The watchdog cannot preempt a call blocked in C (the
    exception is delivered at the next bytecode boundary), so a stalled
    run is detected late rather than interrupted instantly; the budget
    is still enforced and the point still crashes after its retries.
    """

    def __init__(self, seconds: float) -> None:
        import threading

        self.seconds = seconds
        self._thread_id = threading.get_ident()
        self._use_alarm = (
            hasattr(signal, "setitimer")
            and threading.current_thread() is threading.main_thread()
        )
        self._previous_handler: Any = None
        self._timer: Optional["threading.Timer"] = None
        self._fired = False

    # -- watchdog plumbing -------------------------------------------

    def _post_async(self, exc: Optional[type]) -> None:
        """Raise *exc* in the guarded thread (``None`` clears a pending
        one that was posted but not yet delivered)."""
        import ctypes

        ctypes.pythonapi.PyThreadState_SetAsyncExc(
            ctypes.c_ulong(self._thread_id),
            ctypes.py_object(exc) if exc is not None else None,
        )

    def _fire(self) -> None:
        self._fired = True
        self._post_async(_RunTimeout)

    # -- context management ------------------------------------------

    def __enter__(self) -> "_TimeoutGuard":
        if self._use_alarm:
            try:
                self._previous_handler = signal.signal(
                    signal.SIGALRM, _alarm_handler
                )
                signal.setitimer(signal.ITIMER_REAL, self.seconds)
                return self
            except ValueError:
                # Lost a race against an interpreter that still considers
                # this a non-main thread (e.g. right after a fork from a
                # threaded parent): fall through to the watchdog.
                self._use_alarm = False
        import threading

        self._timer = threading.Timer(self.seconds, self._fire)
        self._timer.daemon = True
        self._timer.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._previous_handler)
            return
        assert self._timer is not None
        self._timer.cancel()
        if exc_type is not _RunTimeout:
            # Wait the timer thread out so a concurrent _fire cannot post
            # after this guard is gone, then clear any pending async raise
            # the run outlived (it must not surface in later code).
            self._timer.join()
            if self._fired:
                self._post_async(None)


class _WorkerState:
    """Per-process campaign: the worker's own weave of the subject."""

    def __init__(
        self,
        program,
        capture_args: bool,
        timeout: Optional[float],
        retries: int,
        state_backend: str = "graph",
        instrumentor: str = "weave",
        fingerprint_cache: bool = True,
    ) -> None:
        self.program = program
        self.timeout = timeout
        self.retries = retries
        self.campaign = InjectionCampaign(
            capture_args=capture_args, state_backend=state_backend
        )
        self.instrumentor = get_instrumentor(
            instrumentor,
            self.campaign,
            analyzer=Analyzer(exclude=program.exclude),
        )
        woven = self.instrumentor.instrument(program.classes)
        # The digest cache lives for the worker process's whole lifetime:
        # its write barriers stay installed across every chunk this
        # worker executes, so digests memoized in one chunk keep serving
        # later chunks (each run rebuilds fresh state, but class-level
        # constants and shared structures survive between runs).
        self.cache: Optional[FingerprintCache] = None
        if fingerprint_cache and getattr(
            self.campaign.backend, "supports_digest_cache", False
        ):
            classes = {spec.owner for spec in woven if spec.owner}
            if classes:
                self.cache = FingerprintCache()
                self.cache.start(classes)
                self.campaign.digest_cache = self.cache


_WORKER: Optional[_WorkerState] = None


def _init_worker(
    ref: ProgramRef,
    capture_args: bool,
    timeout: Optional[float],
    retries: int,
    state_backend: str = "graph",
    instrumentor: str = "weave",
    fingerprint_cache: bool = True,
) -> None:
    global _WORKER
    _WORKER = _WorkerState(
        ref.resolve(),
        capture_args,
        timeout,
        retries,
        state_backend,
        instrumentor,
        fingerprint_cache,
    )


def _alarm_handler(signum, frame):
    raise _RunTimeout()


def run_point_with_timeout(
    program,
    campaign: InjectionCampaign,
    point: int,
    *,
    timeout: Optional[float] = None,
    retries: int = 0,
) -> Tuple[RunRecord, Optional[str], int, bool]:
    """Execute one injection point under an optional wall-clock budget.

    The single-point kernel shared by the pool workers and the shard
    runner (:mod:`repro.experiments.shard`): retries a timed-out run up
    to *retries* times, then marks the point crashed.  Returns
    ``(record, genuine_failure, attempts, crashed)``.  Works from any
    thread — see :class:`_TimeoutGuard` for the main-thread (SIGALRM)
    vs. worker-thread (watchdog) budget enforcement.
    """
    attempts = 0
    while True:
        attempts += 1
        guard = (
            _TimeoutGuard(timeout) if timeout is not None else _NULL_GUARD
        )
        try:
            with guard:
                # Chaos seam: an armed hang fault sleeps here, inside
                # the watchdog's budget window, so "a run that stopped
                # making progress" exercises the timeout/retry path.
                _fault_site("run.exec")
                record, failure = run_injection_point(
                    program,
                    campaign,
                    point,
                    reraise=(_RunTimeout,),
                )
            return record, failure, attempts, False
        except _RunTimeout:
            # Drop the partial record the aborted run left in the log.
            runs = campaign.log.runs
            if runs and runs[-1].injection_point == point:
                runs.pop()
            if attempts > retries:
                return (
                    RunRecord(injection_point=point, crashed=True),
                    None,
                    attempts,
                    True,
                )


class _NullGuard:
    def __enter__(self) -> "_NullGuard":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_GUARD = _NullGuard()


def _run_point_with_retry(
    state: _WorkerState, point: int
) -> Tuple[RunRecord, Optional[str], int, bool]:
    """Execute one point, retrying on timeout; returns
    ``(record, genuine_failure, attempts, crashed)``."""
    return run_point_with_timeout(
        state.program,
        state.campaign,
        point,
        timeout=state.timeout,
        retries=state.retries,
    )


def _run_chunk(task: Tuple[int, List[int]]) -> Dict[str, Any]:
    """Pool task: execute a contiguous chunk of injection points."""
    chunk_index, points = task
    assert _WORKER is not None, "worker initializer did not run"
    started = time.perf_counter()
    # The campaign's state counters accumulate for the lifetime of the
    # worker process; report this chunk's contribution as a delta so the
    # parent can sum chunk outcomes without double counting.
    stats_before = _WORKER.campaign.state_stats.to_dict()
    cache_before = (
        _WORKER.cache.to_dict() if _WORKER.cache is not None else {}
    )
    results = []
    for point in points:
        record, failure, attempts, crashed = _run_point_with_retry(_WORKER, point)
        results.append(
            {
                "point": point,
                "record": record.to_dict(),
                "genuine_failure": failure,
                "attempts": attempts,
                "crashed": crashed,
            }
        )
    stats_after = _WORKER.campaign.state_stats.to_dict()
    cache_after = (
        _WORKER.cache.to_dict() if _WORKER.cache is not None else {}
    )
    return {
        "chunk": chunk_index,
        "worker": os.getpid(),
        "busy_seconds": time.perf_counter() - started,
        "state_stats": {
            key: stats_after[key] - stats_before[key] for key in stats_after
        },
        "cache_stats": {
            key: cache_after[key] - cache_before.get(key, 0)
            for key in cache_after
        },
        "results": results,
    }


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class ParallelDetector:
    """Parallel drop-in for :class:`repro.core.Detector`.

    Profiles once in the parent process (weave → count points → unweave),
    fans the per-point runs out over a process pool, and merges the
    worker logs into a result equivalent to the sequential engine's.

    Args:
        program: the test program (an ``AppProgram``; must be resolvable
            in the worker — registry programs work out of the box,
            custom ones need ``program_ref``).
        workers: worker process count (default: the machine's CPUs).
        stride: sample every *stride*-th injection point.
        capture_args: forwarded to each worker's campaign.
        timeout: per-run wall-clock budget in seconds (``None`` = none).
        retries: retry attempts per point after a timeout before the
            point is marked crashed.
        chunk_size: points per pool task; defaults to ~4 tasks per worker.
        journal_path: where to persist the campaign journal (JSONL).
        resume: skip points already completed in the journal.
        progress: optional ``(runs_done, runs_total)`` callback.
        program_ref: explicit worker-side recipe for non-registry programs.
        mp_start_method: multiprocessing start method (default ``fork``
            when available, else the platform default).
        state_backend: name of the state backend workers compare state
            with (``graph`` or ``fingerprint``).  Recorded in the journal
            header, so a ``--resume`` against a journal written under a
            different backend is rejected instead of silently mixing
            runs.
        static_prune: run the static purity pre-analysis
            (``repro.core.staticpass``) over the parent's profiling run
            and synthesize the records of provably decided points
            instead of dispatching them to workers.  Recorded in the
            journal header; pruned points are never journaled (they are
            re-derived from a fresh profile on resume).
        trace_derive: instrument the parent's profiling run
            (``repro.core.tracepass``) and derive the records of every
            trace-decidable point from that one execution; only
            trace-undecidable points are dispatched to workers.  Same
            journal-header/resume semantics as ``static_prune``: derived
            points are never journaled and are re-derived from a fresh
            profile on resume.
        instrumentor: name of the instrumentation backend
            (:mod:`repro.core.instrument`) the parent's profiling passes
            and the workers' weaves route through (``weave`` or
            ``monitoring``).  Recorded in the journal header, so a
            ``--resume`` against a journal written under a different
            instrumentor is rejected instead of silently mixing runs.
        fingerprint_cache: let workers memoize frame digests for their
            process lifetime when the state backend supports it
            (fingerprint sweeps only; output is bit-identical either
            way).
    """

    def __init__(
        self,
        program,
        *,
        workers: Optional[int] = None,
        stride: int = 1,
        capture_args: bool = True,
        timeout: Optional[float] = None,
        retries: int = 1,
        chunk_size: Optional[int] = None,
        journal_path: Optional[str] = None,
        resume: bool = False,
        progress: Optional[Callable[[int, int], None]] = None,
        program_ref: Optional[ProgramRef] = None,
        mp_start_method: Optional[str] = None,
        state_backend: str = "graph",
        static_prune: bool = False,
        trace_derive: bool = False,
        instrumentor: str = "weave",
        fingerprint_cache: bool = True,
    ) -> None:
        if stride < 1:
            raise ValueError("stride must be >= 1")
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if resume and journal_path is None:
            raise ValueError("resume=True requires a journal_path")
        self.program = program
        self.workers = workers or os.cpu_count() or 1
        self.stride = stride
        self.capture_args = capture_args
        self.timeout = timeout
        self.retries = retries
        self.chunk_size = chunk_size
        self.journal_path = journal_path
        self.resume = resume
        self.progress = progress
        self.ref = program_ref or ProgramRef.for_program(program)
        self.mp_start_method = mp_start_method
        # Resolve eagerly so an unknown name fails here, not in a worker.
        self.state_backend = get_backend(state_backend).name
        self.static_prune = static_prune
        self.trace_derive = trace_derive
        self.instrumentor = resolve_instrumentor_name(instrumentor)
        self.fingerprint_cache = fingerprint_cache
        self.woven_specs: List[MethodSpec] = []

    # -- phases ------------------------------------------------------

    def _profile(
        self,
    ) -> Tuple[
        int,
        RunLog,
        Optional[StaticPruner],
        Optional[TraceDeriver],
        Optional[TraceRecorder],
    ]:
        """Weave + profile in the parent; returns (total points, profile
        log, attached static pruner / trace deriver / trace recorder).

        The profile log carries the per-method call counts (Figures
        2b/3b) and no runs; the parent unweaves immediately so worker
        processes (forked afterwards) start from clean classes.  With
        ``static_prune``/``trace_derive`` the passes observe this
        profiling run's call stacks — the sweep itself happens in
        workers, but the decision of which points need a worker at all is
        made here in the parent.  The trace recorder's write barriers are
        removed before any worker forks.
        """
        campaign = InjectionCampaign(capture_args=self.capture_args)
        instrumentor = get_instrumentor(
            self.instrumentor,
            campaign,
            analyzer=Analyzer(exclude=self.program.exclude),
        )
        pruner: Optional[StaticPruner] = None
        deriver: Optional[TraceDeriver] = None
        recorder: Optional[TraceRecorder] = None
        with instrumentor:
            self.woven_specs = instrumentor.instrument(self.program.classes)
            if self.static_prune:
                pruner = StaticPruner(self.woven_specs)
            observers: List[Any] = []
            if self.trace_derive:
                recorder = TraceRecorder()
                instrumentor.start_write_trace(
                    recorder,
                    {spec.owner for spec in self.woven_specs if spec.owner},
                )
                deriver = TraceDeriver(campaign, pruner=pruner, recorder=recorder)
                observers.append(deriver)
            elif pruner is not None:
                observers.append(pruner)
            for observer in observers:
                instrumentor.subscribe(observer)
            if observers:
                instrumentor.attach()
            campaign.begin_profile()
            try:
                call_through_boundary(self.program)
            except BaseException as exc:
                raise DetectionError(
                    f"program {self.program.name!r} failed during profiling: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            finally:
                total = campaign.end_profile()
                if instrumentor.attached:
                    instrumentor.detach()
                for observer in observers:
                    instrumentor.unsubscribe(observer)
                if recorder is not None:
                    instrumentor.stop_write_trace(recorder)
        return total, campaign.log, pruner, deriver, recorder

    def _chunks(self, points: List[int]) -> List[Tuple[int, List[int]]]:
        if not points:
            return []
        size = self.chunk_size
        if size is None:
            size = max(1, math.ceil(len(points) / (self.workers * 4)))
        return [
            (index, points[start : start + size])
            for index, start in enumerate(range(0, len(points), size))
        ]

    def _pool_context(self):
        import multiprocessing

        if self.mp_start_method is not None:
            return multiprocessing.get_context(self.mp_start_method)
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )

    # -- the campaign ------------------------------------------------

    def detect(self) -> DetectionResult:
        started = time.perf_counter()
        total, profile_log, pruner, deriver, recorder = self._profile()
        prune_map = pruner.prune_map() if pruner is not None else {}
        derive_map = deriver.derive_map() if deriver is not None else {}
        # Statically decided points win the provenance tag; the records
        # agree modulo provenance whenever both passes decide a point.
        decided = dict(derive_map)
        decided.update(prune_map)
        profiled = time.perf_counter()

        points = plan_points(total, stride=self.stride)
        header = {
            "program": self.program.name,
            "rounds": self.program.rounds,
            "stride": self.stride,
            "total_points": total,
            "capture_args": self.capture_args,
            "state_backend": self.state_backend,
            "static_prune": self.static_prune,
            "trace_derive": self.trace_derive,
            "instrumentor": self.instrumentor,
        }

        journal: Optional[CampaignJournal] = None
        resumed: Dict[int, Dict[str, Any]] = {}
        if self.journal_path is not None:
            journal = CampaignJournal(self.journal_path)
            if self.resume:
                resumed = journal.load(header)
                resumed = {p: e for p, e in resumed.items() if p in set(points)}
            if not resumed:
                journal.start(header)

        # Points decided without execution are never dispatched (and
        # never journaled: a resumed campaign re-derives them from its
        # own fresh profiling run).  A resumed record wins over a
        # synthesized one — both describe the same outcome.
        pruned_points = [
            p for p in points if p not in resumed and p in prune_map
        ]
        derived_points = [
            p
            for p in points
            if p not in resumed and p in decided and p not in prune_map
        ]
        remaining = [
            p for p in points if p not in resumed and p not in decided
        ]
        chunks = self._chunks(remaining)
        done = len(resumed) + len(pruned_points) + len(derived_points)
        if self.progress is not None and done:
            self.progress(done, len(points))

        by_point: Dict[int, Dict[str, Any]] = dict(resumed)
        busy: Dict[str, float] = {}
        retry_count = 0
        crashed_count = 0
        state_stats = StateStats()
        cache_hits = 0
        cache_misses = 0
        if chunks:
            ctx = self._pool_context()
            pool = ctx.Pool(
                processes=min(self.workers, len(chunks)),
                initializer=_init_worker,
                initargs=(
                    self.ref,
                    self.capture_args,
                    self.timeout,
                    self.retries,
                    self.state_backend,
                    self.instrumentor,
                    self.fingerprint_cache,
                ),
            )
            try:
                for outcome in pool.imap_unordered(_run_chunk, chunks):
                    worker_id = str(outcome["worker"])
                    busy[worker_id] = (
                        busy.get(worker_id, 0.0) + outcome["busy_seconds"]
                    )
                    chunk_stats = outcome.get("state_stats") or {}
                    state_stats.captures += int(chunk_stats.get("captures", 0))
                    state_stats.fingerprints += int(
                        chunk_stats.get("fingerprints", 0)
                    )
                    state_stats.compares += int(chunk_stats.get("compares", 0))
                    state_stats.seconds += float(chunk_stats.get("seconds", 0.0))
                    chunk_cache = outcome.get("cache_stats") or {}
                    cache_hits += int(chunk_cache.get("hits", 0))
                    cache_misses += int(chunk_cache.get("misses", 0))
                    for result in outcome["results"]:
                        point = result["point"]
                        by_point[point] = result
                        retry_count += result["attempts"] - 1
                        if result["crashed"]:
                            crashed_count += 1
                        if journal is not None:
                            journal.append_run(
                                point,
                                RunRecord.from_dict(result["record"]),
                                result["genuine_failure"],
                                result["attempts"],
                            )
                        done += 1
                        if self.progress is not None:
                            self.progress(done, len(points))
            finally:
                pool.close()
                pool.join()
        executed = time.perf_counter()

        # Deterministic merge: call counts from the parent's profiling
        # run, run records in planned-point order — the exact layout the
        # sequential engine's single log has.
        runs_log = RunLog()
        genuine_failures: List[str] = []
        for point in points:
            entry = by_point.get(point)
            if entry is None:
                # Decided without execution: splice in the synthesized
                # (static) or derived (trace) record.
                runs_log.runs.append(decided[point])
                continue
            runs_log.runs.append(RunRecord.from_dict(entry["record"]))
            if entry.get("genuine_failure"):
                genuine_failures.append(entry["genuine_failure"])
        merged = merge_logs([profile_log, runs_log])
        finished = time.perf_counter()

        wall = finished - started
        execute_wall = executed - profiled
        executed_runs = (
            len(points)
            - len(resumed)
            - len(pruned_points)
            - len(derived_points)
        )
        utilization = 0.0
        if busy and execute_wall > 0:
            pool_size = min(self.workers, len(chunks)) or 1
            utilization = min(
                1.0, sum(busy.values()) / (pool_size * execute_wall)
            )
        telemetry = CampaignTelemetry(
            engine="parallel",
            workers=self.workers,
            runs_total=len(points),
            runs_executed=executed_runs,
            runs_resumed=len(resumed),
            runs_pruned=len(pruned_points),
            runs_derived=len(derived_points),
            runs_crashed=crashed_count,
            retries=retry_count,
            static_pure_methods=(
                pruner.pure_method_count if pruner is not None else 0
            ),
            static_seconds=pruner.seconds if pruner is not None else 0.0,
            trace_seconds=deriver.seconds if deriver is not None else 0.0,
            trace_writes=(
                recorder.recorded_writes if recorder is not None else 0
            ),
            trace_captures=(
                deriver.stats.captures if deriver is not None else 0
            ),
            trace_capture_retries=(
                deriver.capture_retries if deriver is not None else 0
            ),
            instrumentor=self.instrumentor,
            fingerprint_cache_hits=cache_hits,
            fingerprint_cache_misses=cache_misses,
            wall_seconds=wall,
            runs_per_second=(executed_runs / wall) if wall > 0 else 0.0,
            phase_seconds={
                "profile": profiled - started,
                "execute": execute_wall,
                "merge": finished - executed,
            },
            worker_busy_seconds=busy,
            worker_utilization=utilization,
            state_backend=self.state_backend,
            state_captures=state_stats.captures,
            state_fingerprints=state_stats.fingerprints,
            state_compares=state_stats.compares,
            state_seconds=state_stats.seconds,
        )
        return DetectionResult(
            program=self.program.name,
            log=merged,
            total_points=total,
            runs_executed=len(points),
            genuine_failures=genuine_failures,
            telemetry=telemetry,
        )


def run_parallel_detection(program, **kwargs) -> DetectionResult:
    """One-call convenience wrapper around :class:`ParallelDetector`."""
    return ParallelDetector(program, **kwargs).detect()
