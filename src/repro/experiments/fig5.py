"""Figure 5: masking overhead vs. checkpoint size and wrapped-call ratio.

The paper measures the slowdown of the masked program as a function of
(a) the size of the checkpointed object and (b) the percentage of calls
that go to transformed (wrapped) methods; each point is the median of 40
runs, on a method whose unwrapped processing time is ~0.5 µs.

This module reproduces the experiment on a synthetic service whose state
size is a parameter.  It also measures the undo-log ("copy-on-write")
checkpoint of :mod:`repro.core.cow` as the ablation suggested in the
paper's Section 6.2: its cost is write-proportional, so the overhead
stays flat as the object grows.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.core.analyzer import Analyzer
from repro.core.cow import (
    failure_atomic_undolog,
    install_write_barrier,
    remove_write_barrier,
)
from repro.core.masking import make_atomicity_wrapper

__all__ = [
    "SyntheticService",
    "OverheadPoint",
    "measure_overhead",
    "measure_undolog_ablation",
    "format_overhead_table",
    "DEFAULT_SIZES",
    "DEFAULT_RATIOS",
]

#: Checkpointed-object sizes (number of state fields), log-spaced like
#: the paper's x axis.
DEFAULT_SIZES: Sequence[int] = (4, 16, 64, 256, 1024)

#: Fraction of calls that go to the wrapped (masked) method.
DEFAULT_RATIOS: Sequence[float] = (0.0, 0.001, 0.01, 0.1, 1.0)


class SyntheticService:
    """A service whose checkpointable state has a configurable size.

    ``step`` models the paper's ~0.5 µs method: a handful of attribute
    reads and writes plus one list update.
    """

    def __init__(self, size: int) -> None:
        self.size = size
        self.counter = 0
        self.accumulator = 0
        self.state = [0] * size

    def step(self, value: int) -> int:
        """One unit of work: bounded mutation of the service state."""
        self.counter += 1
        self.accumulator += value
        self.state[value % self.size] = self.counter
        return self.accumulator


@dataclass
class OverheadPoint:
    """One data point of Figure 5."""

    size: int
    ratio: float
    base_seconds_per_call: float
    masked_seconds_per_call: float

    @property
    def overhead(self) -> float:
        """Slowdown factor (1.0 = no overhead)."""
        if self.base_seconds_per_call == 0:
            return float("inf")
        return self.masked_seconds_per_call / self.base_seconds_per_call


def _wrapped_step(variant: str) -> Callable:
    spec = Analyzer().analyze_class(SyntheticService)
    step_spec = next(s for s in spec if s.name == "step")
    if variant == "eager":
        return make_atomicity_wrapper(step_spec, checkpoint_args=False)
    if variant == "undolog":
        return failure_atomic_undolog(SyntheticService.step)
    raise ValueError(f"unknown variant {variant!r}")


def _run_loop(
    service: SyntheticService,
    calls: int,
    ratio: float,
    wrapped: Callable,
) -> float:
    """Time *calls* invocations, a *ratio* fraction through *wrapped*."""
    plain = SyntheticService.step
    period = int(1 / ratio) if ratio > 0 else 0
    start = time.perf_counter()
    for index in range(calls):
        if period and index % period == 0:
            wrapped(service, index)
        else:
            plain(service, index)
    return (time.perf_counter() - start) / calls


def _median_time(make_run: Callable[[], float], repeats: int) -> float:
    return statistics.median(make_run() for _ in range(repeats))


def measure_overhead(
    sizes: Sequence[int] = DEFAULT_SIZES,
    ratios: Sequence[float] = DEFAULT_RATIOS,
    *,
    calls: int = 2000,
    repeats: int = 7,
    variant: str = "eager",
) -> List[OverheadPoint]:
    """Measure masking overhead over the size × ratio grid.

    Each point compares the per-call time of a loop where a *ratio*
    fraction of calls is masked against the fully unmasked loop, taking
    the median of *repeats* runs (the paper uses the median of 40).
    """
    points: List[OverheadPoint] = []
    wrapped = _wrapped_step(variant)
    if variant == "undolog":
        install_write_barrier(SyntheticService)
    try:
        for size in sizes:
            service = SyntheticService(size)
            base = _median_time(
                lambda: _run_loop(service, calls, 0.0, wrapped), repeats
            )
            for ratio in ratios:
                masked = _median_time(
                    lambda: _run_loop(service, calls, ratio, wrapped), repeats
                )
                points.append(
                    OverheadPoint(
                        size=size,
                        ratio=ratio,
                        base_seconds_per_call=base,
                        masked_seconds_per_call=masked,
                    )
                )
    finally:
        if variant == "undolog":
            remove_write_barrier(SyntheticService)
    return points


def measure_undolog_ablation(
    sizes: Sequence[int] = DEFAULT_SIZES,
    *,
    ratio: float = 1.0,
    calls: int = 1000,
    repeats: int = 5,
) -> Dict[str, List[OverheadPoint]]:
    """Eager-checkpoint vs undo-log overhead across object sizes.

    The interesting shape: eager overhead grows with object size; the
    undo log's stays flat (cost proportional to writes, not size).
    """
    return {
        "eager": measure_overhead(
            sizes, (ratio,), calls=calls, repeats=repeats, variant="eager"
        ),
        "undolog": measure_overhead(
            sizes, (ratio,), calls=calls, repeats=repeats, variant="undolog"
        ),
    }


def format_overhead_table(points: List[OverheadPoint]) -> str:
    """Render the Figure 5 grid: rows = object size, columns = ratio."""
    ratios = sorted({point.ratio for point in points})
    sizes = sorted({point.size for point in points})
    by_key = {(p.size, p.ratio): p for p in points}
    header = ["size \\ wrapped-calls"] + [f"{100 * r:g}%" for r in ratios]
    widths = [len(h) for h in header]
    rows = []
    for size in sizes:
        row = [str(size)]
        for ratio in ratios:
            point = by_key[(size, ratio)]
            row.append(f"{point.overhead:.2f}x")
        rows.append(row)
        widths = [max(w, len(c)) for w, c in zip(widths, row)]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
