"""Synthetic benchmark applications with known ground truth.

The paper's evaluation starts with "a set of synthetic 'benchmark'
applications [that] contain the various combinations of
(pure/conditional) failure (non-)atomic methods that may be encountered
in real applications", used to make sure the system correctly detects
failure non-atomic methods and effectively masks them (Section 6).

This module is that benchmark suite: every method of the subject classes
is built to land in a *known* category, recorded in
:data:`GROUND_TRUTH`.  The test suite asserts the detector reproduces the
ground truth exactly, and the masking validation proves the wrapped
methods come back atomic.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.classify import (
    CATEGORY_ATOMIC,
    CATEGORY_CONDITIONAL,
    CATEGORY_PURE,
)
from repro.core.exceptions import exception_free, throws

from .programs import AppProgram

__all__ = ["Ledger", "Auditor", "GROUND_TRUTH", "synthetic_program"]


class SyntheticError(Exception):
    """The declared failure of the synthetic suite."""


class Ledger:
    """The leaf subject: a balance plus an entry log."""

    def __init__(self) -> None:
        self.balance = 0
        self.entries: List[int] = []

    # -- failure atomic methods -------------------------------------------

    def read_balance(self) -> int:
        """Atomic: reads only."""
        return self.balance

    @throws(SyntheticError)
    def guarded_update(self, amount: int) -> None:
        """Atomic: every fallible step precedes the first mutation."""
        if amount == 0:
            raise SyntheticError("zero amount")
        entry = int(amount)
        self.balance += entry
        self.entries.append(entry)

    @exception_free
    def stamp(self) -> None:
        """Atomic and declared exception-free: a bare increment."""
        self.balance += 0

    # -- pure failure non-atomic methods --------------------------------------

    @throws(SyntheticError)
    def count_then_validate(self, amount: int) -> None:
        """Pure: the entry is logged before the validation can fail."""
        self.entries.append(amount)
        if amount < 0:
            raise SyntheticError("negative amount")
        self.balance += amount

    def mutate_then_call(self) -> None:
        """Pure: mutates, then calls a method that may fail.

        Even if :meth:`read_balance` were failure atomic, its failure
        would leave the appended entry behind — non-atomicity is this
        method's own (Definition 3).
        """
        self.entries.append(-1)
        self.read_balance()
        self.entries.pop()

    def bulk_update(self, amounts: List[int]) -> None:
        """Pure: element-wise progress cannot be reverted by callees."""
        for amount in amounts:
            self.guarded_update(amount)


class Auditor:
    """The caller subject: delegates to a Ledger it owns."""

    def __init__(self) -> None:
        self.ledger = Ledger()
        self.checks = 0

    # -- failure atomic -----------------------------------------------------

    def peek(self) -> int:
        """Atomic: delegates to an atomic read, mutates nothing."""
        return self.ledger.read_balance()

    @throws(SyntheticError)
    def checked_update(self, amount: int) -> None:
        """Atomic: delegation first, own mutation last."""
        self.ledger.guarded_update(amount)
        self.checks += 1

    # -- conditional failure non-atomic -----------------------------------------

    def audit_risky(self, amount: int) -> None:
        """Conditional: non-atomic only through its callee.

        It mutates nothing before or after the delegation, so whenever it
        is marked non-atomic, the callee was marked first — it would be
        atomic if ``count_then_validate`` were (Definition 3).
        """
        self.ledger.count_then_validate(amount)

    # -- pure failure non-atomic -------------------------------------------------

    def check_then_delegate(self, amount: int) -> None:
        """Pure: own counter bumped before the fallible delegation."""
        self.checks += 1
        self.ledger.guarded_update(amount)


#: method key -> expected category, the detector must reproduce exactly.
GROUND_TRUTH: Dict[str, str] = {
    "Ledger.__init__": CATEGORY_ATOMIC,
    "Ledger.read_balance": CATEGORY_ATOMIC,
    "Ledger.guarded_update": CATEGORY_ATOMIC,
    "Ledger.stamp": CATEGORY_ATOMIC,
    "Ledger.count_then_validate": CATEGORY_PURE,
    "Ledger.mutate_then_call": CATEGORY_PURE,
    "Ledger.bulk_update": CATEGORY_PURE,
    "Auditor.__init__": CATEGORY_ATOMIC,
    "Auditor.peek": CATEGORY_ATOMIC,
    "Auditor.checked_update": CATEGORY_ATOMIC,
    "Auditor.audit_risky": CATEGORY_CONDITIONAL,
    "Auditor.check_then_delegate": CATEGORY_PURE,
}


def _synthetic_body() -> None:
    """Deterministic workload covering every method and error path.

    The genuine error paths run *last*: a genuine non-atomic failure early
    in a run would be the run's first mark and would hide the purity of
    every later-marked method (the paper's first-marked heuristic is
    order-sensitive; keeping fault demonstrations at the tail keeps each
    injection run single-fault).
    """
    ledger = Ledger()
    ledger.read_balance()
    ledger.guarded_update(10)
    ledger.stamp()
    ledger.mutate_then_call()
    ledger.bulk_update([1, 2, 3])
    ledger.count_then_validate(7)

    auditor = Auditor()
    auditor.peek()
    auditor.checked_update(4)
    auditor.check_then_delegate(2)
    auditor.audit_risky(3)

    # genuine error paths (exercised by the baseline run)
    try:
        ledger.guarded_update(0)
    except SyntheticError:
        pass
    try:
        ledger.count_then_validate(-5)
    except SyntheticError:
        pass
    try:
        auditor.audit_risky(-1)
    except SyntheticError:
        pass


def synthetic_program() -> AppProgram:
    """The synthetic benchmark as a campaign-ready application."""
    return AppProgram(
        name="synthetic",
        language="n/a",
        classes=[Ledger, Auditor],
        body=_synthetic_body,
    )
