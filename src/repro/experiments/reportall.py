"""One-shot reproduction: every table and figure into a markdown report.

``python -m repro reproduce --out RESULTS.md`` regenerates the entire
evaluation — Table 1, Figures 2–5, the §6.1 narrative, the validation
loop, and the ablations — and writes a self-contained markdown report,
so a referee can diff two runs or compare against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List

from repro.core.classify import CATEGORY_PURE

from .fig5 import format_overhead_table, measure_overhead, measure_undolog_ablation
from .linkedlist_fixes import compare_linkedlist_fixes
from .synthetic import GROUND_TRUTH, synthetic_program
from .tables import figure2, figure3, figure4, run_cpp_campaigns, run_java_campaigns, table1
from .validation import validate_masking

__all__ = ["reproduce_all"]


def _section(lines: List[str], title: str, body: str) -> None:
    lines.append(f"## {title}\n")
    lines.append("```")
    lines.append(body)
    lines.append("```\n")


def reproduce_all(
    *,
    stride: int = 1,
    scale: int = 1,
    fig5_calls: int = 1000,
    fig5_repeats: int = 5,
    progress=print,
) -> str:
    """Run the full evaluation; return the markdown report text."""
    lines: List[str] = [
        "# Reproduction report",
        "",
        f"stride={stride}, scale={scale} "
        "(see EXPERIMENTS.md for the paper-vs-measured discussion)",
        "",
    ]

    progress("running the 6 C++ campaigns ...")
    cpp = run_cpp_campaigns(stride=stride, scale=scale)
    progress("running the 10 Java campaigns ...")
    java = run_java_campaigns(stride=stride, scale=scale)

    _section(lines, "Table 1 — application statistics", table1(cpp + java))

    f2 = figure2(cpp)
    _section(lines, "Figure 2(a) — C++ methods", f2["a"].rendered)
    _section(lines, "Figure 2(b) — C++ calls", f2["b"].rendered)
    f3 = figure3(java)
    _section(lines, "Figure 3(a) — Java methods", f3["a"].rendered)
    _section(lines, "Figure 3(b) — Java calls", f3["b"].rendered)
    f4 = figure4(cpp, java)
    _section(lines, "Figure 4(a) — C++ classes", f4["a"].rendered)
    _section(lines, "Figure 4(b) — Java classes", f4["b"].rendered)

    lines.append("## Averages\n")
    lines.append(
        f"- pure non-atomic methods: C++ {100 * f2['a'].average(CATEGORY_PURE):.1f}%, "
        f"Java {100 * f3['a'].average(CATEGORY_PURE):.1f}% (paper: small vs ~20%)"
    )
    lines.append(
        f"- pure non-atomic calls: C++ {100 * f2['b'].average(CATEGORY_PURE):.1f}%, "
        f"Java {100 * f3['b'].average(CATEGORY_PURE):.1f}%\n"
    )

    progress("running the §6.1 LinkedList comparison ...")
    fixes = compare_linkedlist_fixes(stride=stride)
    _section(
        lines,
        "Section 6.1 — LinkedList trivial fixes (paper: 18 -> 3)",
        fixes.summary()
        + f"\npure before: {fixes.pure_before}\npure after : {fixes.pure_after}",
    )

    progress("validating detection (ground truth) and masking ...")
    from .campaign import run_app_campaign

    # ground truth needs the full sweep (sampling would drop the very
    # injection points that prove purity); it is tiny, so always stride 1
    synthetic_outcome = run_app_campaign(synthetic_program())
    mismatches = {
        key: (expected, synthetic_outcome.classification.category_of(key))
        for key, expected in GROUND_TRUTH.items()
        if synthetic_outcome.classification.category_of(key) != expected
    }
    validation = validate_masking(synthetic_program())
    _section(
        lines,
        "Validation — synthetic ground truth + re-detection",
        ("ground truth: EXACT MATCH" if not mismatches else f"MISMATCHES: {mismatches}")
        + "\n"
        + validation.summary(),
    )

    progress("measuring Figure 5 (masking overhead) ...")
    points = measure_overhead(calls=fig5_calls, repeats=fig5_repeats)
    _section(lines, "Figure 5 — masking overhead", format_overhead_table(points))

    progress("measuring the copy-on-write ablation ...")
    ablation = measure_undolog_ablation(calls=max(fig5_calls // 2, 100),
                                        repeats=fig5_repeats)
    _section(
        lines,
        "Ablation — eager vs undo-log checkpoint (100% wrapped calls)",
        "eager:\n"
        + format_overhead_table(ablation["eager"])
        + "\nundo-log:\n"
        + format_overhead_table(ablation["undolog"]),
    )
    return "\n".join(lines)
