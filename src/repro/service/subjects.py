"""Submitted subject programs: validation, canonicalization, compilation.

The service accepts a subject as plain Python source that defines one or
more classes and a ``workload()`` callable (the deterministic,
re-runnable workload the detection campaign sweeps — same contract as
:class:`~repro.experiments.programs.AppProgram`).  The source is
``exec``'d in a fresh namespace whose ``__name__`` is the fixed
:data:`SERVICE_MODULE_NAME`, so type names — which appear in run-log
``difference`` strings and therefore in the bit-identical engine
comparison — are deterministic across processes; the rendered source is
registered with :mod:`repro.core.virtualsource` so ``inspect`` (and
with it the static pruning pass) can read method bodies.

Campaign configs are canonicalized before they reach the result cache:
defaults filled, values coerced, keys sorted, unknown keys rejected.
Two submissions that mean the same campaign therefore produce the same
:func:`~repro.service.cache.submission_digest` even when they spell the
config differently.
"""

from __future__ import annotations

import ast
import functools
import hashlib
from typing import Any, Callable, Dict, Mapping, Optional

from repro.core.exceptions import exception_free, throws
from repro.core.instrument import resolve_instrumentor_name
from repro.core.state import get_backend
from repro.core.virtualsource import register_virtual_source
from repro.experiments.programs import AppProgram

__all__ = [
    "SERVICE_MODULE_NAME",
    "SERVICE_LANGUAGE",
    "SubmissionError",
    "canonical_config",
    "build_subject",
    "estimate_cost",
    "subject_factory",
]

#: ``__module__`` of every submitted class — fixed so graph type names
#: are identical no matter which process (or shard) rebuilds the subject.
SERVICE_MODULE_NAME = "repro_service_subject"

#: Language tag of submitted programs (the registry uses "C++"/"Java").
SERVICE_LANGUAGE = "Service"

#: Campaign config keys the service accepts, with their defaults.  The
#: canonical form of a config is this dict updated with the submitted
#: values — every key present, every value coerced.
CONFIG_DEFAULTS: Dict[str, Any] = {
    "stride": 1,
    "rounds": 1,
    "capture_args": True,
    "state_backend": "graph",
    "static_prune": False,
    "trace_derive": False,
    "instrumentor": "weave",
    "fingerprint_cache": True,
    "workers": None,
    "timeout": None,
    "retries": 1,
}


class SubmissionError(ValueError):
    """A submission (source or config) the service must reject."""


def canonical_config(config: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    """Validate and canonicalize a campaign config.

    Fills defaults, coerces value types, normalizes backend and
    instrumentor names through their registries, and rejects unknown
    keys — so the config that reaches the cache key is exactly the
    config the campaign will run with.
    """
    config = dict(config or {})
    unknown = set(config) - set(CONFIG_DEFAULTS)
    if unknown:
        raise SubmissionError(
            f"unknown config keys: {sorted(unknown)} "
            f"(known: {sorted(CONFIG_DEFAULTS)})"
        )
    out = dict(CONFIG_DEFAULTS)
    out.update(config)
    try:
        out["stride"] = int(out["stride"])
        out["rounds"] = int(out["rounds"])
        out["retries"] = int(out["retries"])
        out["capture_args"] = bool(out["capture_args"])
        out["static_prune"] = bool(out["static_prune"])
        out["trace_derive"] = bool(out["trace_derive"])
        out["fingerprint_cache"] = bool(out["fingerprint_cache"])
        if out["workers"] is not None:
            out["workers"] = int(out["workers"])
        if out["timeout"] is not None:
            out["timeout"] = float(out["timeout"])
    except (TypeError, ValueError) as exc:
        raise SubmissionError(f"bad config value: {exc}") from exc
    if out["stride"] < 1:
        raise SubmissionError("stride must be >= 1")
    if out["rounds"] < 1:
        raise SubmissionError("rounds must be >= 1")
    if out["retries"] < 0:
        raise SubmissionError("retries must be >= 0")
    if out["workers"] is not None and out["workers"] < 1:
        raise SubmissionError("workers must be >= 1")
    if out["timeout"] is not None and out["timeout"] <= 0:
        raise SubmissionError("timeout must be > 0")
    try:
        out["state_backend"] = get_backend(str(out["state_backend"])).name
        out["instrumentor"] = resolve_instrumentor_name(
            str(out["instrumentor"])
        )
    except ValueError as exc:
        raise SubmissionError(str(exc)) from exc
    return out


def _namespace() -> Dict[str, Any]:
    """The exec namespace every submitted subject runs in.

    The paper's programmer annotations are available without imports —
    a submission can mark ``@exception_free`` accessors and ``@throws``
    declarations exactly like the in-tree evaluation programs do.
    """
    return {
        "__name__": SERVICE_MODULE_NAME,
        "throws": throws,
        "exception_free": exception_free,
    }


def build_subject(source: str, name: str = "subject") -> AppProgram:
    """Compile submitted source into a fresh :class:`AppProgram`.

    Module-level and driven purely by picklable strings, so
    ``functools.partial(build_subject, source, name)`` is a valid
    ``ProgramRef(factory=...)`` for the parallel engine's workers (see
    :func:`subject_factory`).

    Raises :class:`SubmissionError` when the source does not compile,
    fails at definition time, defines no ``workload`` callable, or
    defines no classes to instrument.
    """
    namespace = _namespace()
    # Distinct sources get distinct virtual filenames (inspect reads
    # sources by filename, and a long-running service sees many).
    tag = hashlib.blake2b(source.encode("utf-8"), digest_size=6).hexdigest()
    filename = register_virtual_source(f"<service:{name}:{tag}>", source)
    try:
        code = compile(source, filename, "exec")
    except SyntaxError as exc:
        raise SubmissionError(f"source does not compile: {exc}") from exc
    try:
        exec(code, namespace)
    except Exception as exc:
        raise SubmissionError(
            f"source failed at definition time: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    workload = namespace.get("workload")
    if not callable(workload):
        raise SubmissionError(
            "source must define a callable workload() — the deterministic "
            "workload the campaign sweeps"
        )
    classes = [
        value
        for value in namespace.values()
        if isinstance(value, type)
        and getattr(value, "__module__", None) == SERVICE_MODULE_NAME
    ]
    if not classes:
        raise SubmissionError("source defines no classes to instrument")
    return AppProgram(
        name=name,
        language=SERVICE_LANGUAGE,
        classes=classes,
        body=workload,
    )


def subject_factory(
    source: str, name: str = "subject"
) -> "functools.partial[AppProgram]":
    """The picklable worker-side factory for a submission."""
    return functools.partial(build_subject, source, name)


def estimate_cost(source: str, config: Mapping[str, Any]) -> int:
    """A static proxy for a submission's compiled-plan point count.

    The true point count needs a profiling run, which is exactly the
    work cost-aware admission must avoid.  Instead, count the statements
    inside method bodies of the submitted classes — every statement in a
    woven method is a potential injection point — scale by ``rounds``
    (the workload repeats) and divide by ``stride`` (the plan skips).
    It over-counts unexecuted branches and under-counts loops, but it is
    monotone in subject size, which is all an admission policy needs.

    *config* should already be canonical; a source that does not parse
    estimates to 1 (``build_subject`` rejects it with a 400 anyway).
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return 1
    statements = 0
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for method in node.body:
            if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                statements += sum(
                    1
                    for inner in ast.walk(method)
                    if isinstance(inner, ast.stmt)
                ) - 1  # the def node itself is not a point
    rounds = int(config.get("rounds", 1) or 1)
    stride = int(config.get("stride", 1) or 1)
    return max(1, (statements * rounds) // max(1, stride))
