"""Campaign-as-a-service: queueing, caching HTTP front end.

The distributed story in three layers:

* :mod:`shard <repro.experiments.shard>` — deterministic point-range
  shards, journal fragments, coordinator merge (bit-identical to the
  sequential engine);
* :mod:`subjects <repro.service.subjects>` /
  :mod:`cache <repro.service.cache>` — submitted source compiled into
  :class:`~repro.experiments.programs.AppProgram` subjects, campaign
  results content-addressed by
  ``digest(source, canonical config)``;
* :mod:`server <repro.service.server>` — the stdlib-asyncio HTTP loop
  behind ``repro serve``: bounded backpressure with pluggable
  load-shedding policies, NDJSON progress streams, bounded request
  bodies, graceful SIGTERM/SIGINT drain, and cache-served repeat
  submissions with zero subject executions — across restarts, when
  the cache is given a journal path.
"""

from .cache import ResultCache, submission_digest
from .server import (
    DEFAULT_MAX_BODY_BYTES,
    SHED_POLICIES,
    CampaignRecord,
    CampaignService,
    ServiceServer,
    serve,
)
from .subjects import (
    SERVICE_MODULE_NAME,
    SubmissionError,
    build_subject,
    canonical_config,
    estimate_cost,
    subject_factory,
)

__all__ = [
    "ResultCache",
    "submission_digest",
    "CampaignRecord",
    "CampaignService",
    "ServiceServer",
    "serve",
    "DEFAULT_MAX_BODY_BYTES",
    "SHED_POLICIES",
    "SERVICE_MODULE_NAME",
    "SubmissionError",
    "build_subject",
    "canonical_config",
    "estimate_cost",
    "subject_factory",
]
