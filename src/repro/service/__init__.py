"""Campaign-as-a-service: queueing, caching HTTP front end.

The distributed story in three layers:

* :mod:`shard <repro.experiments.shard>` — deterministic point-range
  shards, journal fragments, coordinator merge (bit-identical to the
  sequential engine);
* :mod:`subjects <repro.service.subjects>` /
  :mod:`cache <repro.service.cache>` — submitted source compiled into
  :class:`~repro.experiments.programs.AppProgram` subjects, campaign
  results content-addressed by
  ``digest(source, canonical config)``;
* :mod:`server <repro.service.server>` — the stdlib-asyncio HTTP loop
  behind ``repro serve``: bounded backpressure, NDJSON progress
  streams, and cache-served repeat submissions with zero subject
  executions.
"""

from .cache import ResultCache, submission_digest
from .server import CampaignRecord, CampaignService, ServiceServer, serve
from .subjects import (
    SERVICE_MODULE_NAME,
    SubmissionError,
    build_subject,
    canonical_config,
    subject_factory,
)

__all__ = [
    "ResultCache",
    "submission_digest",
    "CampaignRecord",
    "CampaignService",
    "ServiceServer",
    "serve",
    "SERVICE_MODULE_NAME",
    "SubmissionError",
    "build_subject",
    "canonical_config",
    "subject_factory",
]
