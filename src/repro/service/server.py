"""Async campaign service: queue, worker, result cache, HTTP front end.

``repro serve`` runs this.  The server is a minimal HTTP/1.1 loop on
stdlib :mod:`asyncio` (no aiohttp — the container has none, and the
protocol surface is four routes), designed around three properties:

* **bounded backpressure** — submissions land in a bounded
  :class:`asyncio.Queue`; when it is full the service answers ``503``
  immediately instead of buffering unboundedly (the "millions of
  users" failure mode is a full queue, not a dead server);
* **one campaign at a time** — the weave instrumentor rewrites classes
  process-globally, so a single worker coroutine drains the queue and
  runs each campaign in an executor thread (which also means per-run
  timeouts exercise the non-main-thread watchdog path, not SIGALRM);
* **content-addressed results** — a finished campaign is cached under
  :func:`~repro.service.cache.submission_digest`; a repeat submission
  of the same source + canonical config is answered from the cache
  with *zero* subject executions, verifiable via
  ``runs_executed_total`` in ``GET /stats`` and the
  ``result_cache_hits`` telemetry field of the response.  With
  ``cache_path=`` the cache persists across restarts (crash-safe JSONL
  journal — see :mod:`repro.service.cache`), so even a *restarted*
  server answers repeats without re-running anything.

Overload and shutdown behavior (the robustness layer):

* a full queue is handled by a pluggable **load-shedding policy** —
  ``reject`` (503 the newcomer, the default), ``shed-oldest`` (drop the
  oldest queued campaign with a terminal ``shed`` event and admit the
  newcomer), or ``cost-aware`` (admit only while the statically
  estimated pending work fits ``max_pending_cost``; see
  :func:`~repro.service.subjects.estimate_cost`).  Every 503 carries a
  ``Retry-After`` header derived from observed campaign wall times;
* request bodies are bounded: a ``POST`` without ``Content-Length`` is
  ``411``, one larger than ``max_body_bytes`` is ``413`` — the server
  never trusts the client with its memory;
* ``SIGTERM``/``SIGINT`` trigger a **graceful drain**: admission stops
  (503 + Retry-After; cache hits are still served), queued and running
  campaigns finish and emit their terminal events (closing any open
  ``/events`` streams), then the listener shuts down.

Routes::

    POST /campaigns            {"source": "...", "config": {...}, "name": "..."}
                               -> 200 cached result | 202 queued | 400 | 503
    GET  /campaigns/<id>       status (result embedded once done)
    GET  /campaigns/<id>/events  NDJSON progress stream (Connection: close)
    GET  /stats                queue depth, cache counters, runs_executed_total
"""

from __future__ import annotations

import asyncio
import itertools
import json
import math
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.campaign import run_app_campaign
from repro.experiments.parallel import ProgramRef
from repro.resilience.chaos import fire as _fault_site

from .cache import ResultCache, submission_digest
from .subjects import (
    SubmissionError,
    build_subject,
    canonical_config,
    estimate_cost,
    subject_factory,
)

__all__ = ["CampaignRecord", "CampaignService", "ServiceServer", "serve"]

#: Campaign states a record moves through (terminal: done/failed/shed).
STATUS_QUEUED = "queued"
STATUS_RUNNING = "running"
STATUS_DONE = "done"
STATUS_FAILED = "failed"
STATUS_SHED = "shed"
TERMINAL = frozenset({STATUS_DONE, STATUS_FAILED, STATUS_SHED})

#: Load-shedding policies the service accepts.
SHED_POLICIES = ("reject", "shed-oldest", "cost-aware")

#: Default request-body bound (1 MiB — generous for source + config).
DEFAULT_MAX_BODY_BYTES = 1_048_576

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class CampaignRecord:
    """One submitted campaign as the service tracks it."""

    id: str
    name: str
    digest: str
    source: str
    config: Dict[str, Any]
    status: str = STATUS_QUEUED
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    events: List[Dict[str, Any]] = field(default_factory=list)
    cost: int = 1

    def summary(self) -> Dict[str, Any]:
        out = {
            "id": self.id,
            "name": self.name,
            "digest": self.digest,
            "status": self.status,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.result is not None:
            out["result"] = self.result
        return out


class CampaignService:
    """The queue + worker + cache core, independent of the HTTP layer.

    Usable without a running event loop: :meth:`submit` is synchronous
    (it only validates, consults the cache, and enqueues), and
    :meth:`process_one` drains one queued campaign inline — which is
    how the tests (and the bench smoke) drive the service
    deterministically.  The HTTP layer adds a worker coroutine that
    does the same draining in an executor thread.
    """

    def __init__(
        self,
        *,
        queue_size: int = 8,
        cache_capacity: int = 128,
        cache_path: Optional[str] = None,
        policy: str = "reject",
        max_pending_cost: Optional[int] = None,
    ) -> None:
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown load-shedding policy {policy!r} "
                f"(known: {', '.join(SHED_POLICIES)})"
            )
        if max_pending_cost is not None and max_pending_cost < 1:
            raise ValueError("max_pending_cost must be >= 1")
        if policy == "cost-aware" and max_pending_cost is None:
            raise ValueError("cost-aware policy needs max_pending_cost")
        self.queue: "asyncio.Queue[CampaignRecord]" = asyncio.Queue(
            maxsize=queue_size
        )
        self.cache = ResultCache(cache_capacity, path=cache_path)
        self.policy = policy
        self.max_pending_cost = max_pending_cost
        self.campaigns: Dict[str, CampaignRecord] = {}
        #: Subject executions performed by campaigns this service ran —
        #: the number a cache hit must leave untouched.
        self.runs_executed_total = 0
        #: Campaigns dropped by the shed-oldest policy.
        self.shed_total = 0
        #: True once a graceful shutdown began: admission stops (503),
        #: cache hits are still served, in-flight campaigns finish.
        self.draining = False
        self._ids = itertools.count(1)
        self._events_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._pending_cost = 0
        self._wall_ema: Optional[float] = None

    # -- submission --------------------------------------------------------

    def submit(
        self,
        source: str,
        config: Optional[Dict[str, Any]] = None,
        name: str = "subject",
    ) -> Tuple[Dict[str, Any], int]:
        """Accept one submission; returns ``(response payload, status)``.

        * cached result -> ``(payload, 200)`` with ``cached: true`` —
          the campaign is *not* re-run (even while draining);
        * accepted -> ``(queued summary, 202)``;
        * draining, queue full (``reject``), or over the cost budget
          (``cost-aware``) -> ``(error, 503)`` with a ``retry_after``
          hint; under ``shed-oldest`` a full queue instead drops the
          oldest queued campaign (terminal ``shed`` event) and admits
          the newcomer;
        * invalid source/config -> :class:`SubmissionError` (the HTTP
          layer maps it to ``400``).
        """
        if not isinstance(source, str) or not source.strip():
            raise SubmissionError("source must be non-empty Python source")
        cfg = canonical_config(config)
        # Compile eagerly so a broken submission is a 400 at submit
        # time, not a failed campaign discovered via polling.
        build_subject(source, name)
        digest = submission_digest(source, cfg)
        cached = self.cache.get(digest)
        if cached is not None:
            persisted = self.cache.is_persisted(digest)
            return self._cached_response(cached, persisted=persisted), 200
        if self.draining:
            return self._unavailable("service is draining for shutdown"), 503
        cost = estimate_cost(source, cfg)
        if self.policy == "cost-aware":
            with self._state_lock:
                pending = self._pending_cost
            # An idle service admits any single campaign, however big —
            # the budget bounds *accumulation*, not ambition.
            if pending > 0 and pending + cost > self.max_pending_cost:
                return (
                    self._unavailable(
                        f"estimated cost {cost} does not fit the pending "
                        f"budget ({pending}/{self.max_pending_cost})"
                    ),
                    503,
                )
        record = CampaignRecord(
            id=f"c{next(self._ids)}",
            name=name,
            digest=digest,
            source=source,
            config=cfg,
            cost=cost,
        )
        try:
            self.queue.put_nowait(record)
        except asyncio.QueueFull:
            if self.policy != "shed-oldest" or not self._shed_oldest():
                return (
                    self._unavailable("campaign queue is full, retry later"),
                    503,
                )
            self.queue.put_nowait(record)
        with self._state_lock:
            self._pending_cost += cost
        self.campaigns[record.id] = record
        self._emit(record, {"event": "queued", "digest": digest})
        return record.summary(), 202

    def _shed_oldest(self) -> bool:
        """Drop the oldest *queued* campaign to admit a newer one.

        The shed record gets a terminal status and event (so pollers
        and open ``/events`` streams see a definitive outcome, not a
        silent disappearance) and its reserved cost is released.
        """
        try:
            victim = self.queue.get_nowait()
        except asyncio.QueueEmpty:
            return False  # everything queued is already running
        self.queue.task_done()
        with self._state_lock:
            self._pending_cost = max(0, self._pending_cost - victim.cost)
        self.shed_total += 1
        victim.status = STATUS_SHED
        victim.error = "shed under load (shed-oldest policy)"
        self._emit(victim, {"event": "shed", "error": victim.error})
        return True

    def _unavailable(self, message: str) -> Dict[str, Any]:
        """The body of every 503: why, plus how long to back off."""
        payload: Dict[str, Any] = {
            "error": message,
            "queue_depth": self.queue.qsize(),
            "queue_capacity": self.queue.maxsize,
            "retry_after": self.retry_after_seconds(),
        }
        if self.draining:
            payload["draining"] = True
        return payload

    def retry_after_seconds(self) -> int:
        """A ``Retry-After`` estimate: observed mean campaign wall time
        times the queue depth ahead of the client, clamped to [1, 120]."""
        base = self._wall_ema if self._wall_ema is not None else 1.0
        estimate = base * (self.queue.qsize() + 1)
        return int(max(1, min(120, math.ceil(estimate))))

    def begin_drain(self) -> None:
        """Stop admitting new campaigns; already-queued work continues."""
        self.draining = True

    def _cached_response(
        self, payload: Dict[str, Any], *, persisted: bool = False
    ) -> Dict[str, Any]:
        # Deep copy via JSON so the cached entry stays pristine, then
        # mark the copy: this answer cost zero subject executions.
        response = json.loads(json.dumps(payload))
        response["cached"] = True
        telemetry = response.setdefault("telemetry", {})
        telemetry["result_cache_hits"] = 1
        telemetry["result_cache_misses"] = 0
        if persisted:
            # The entry survived a server restart on disk — this very
            # lookup is what cache_persist_hits counts.
            telemetry["cache_persist_hits"] = 1
        return response

    # -- execution ---------------------------------------------------------

    def process_one(self) -> Optional[CampaignRecord]:
        """Drain and run one queued campaign inline (test/bench path)."""
        try:
            record = self.queue.get_nowait()
        except asyncio.QueueEmpty:
            return None
        try:
            self._run(record)
        finally:
            self.queue.task_done()
        return record

    def _emit(self, record: CampaignRecord, event: Dict[str, Any]) -> None:
        payload = {"id": record.id}
        payload.update(event)
        with self._events_lock:
            record.events.append(payload)

    def _run(self, record: CampaignRecord) -> None:
        """Run one campaign (called from the worker's executor thread)."""
        started = time.perf_counter()
        try:
            self._run_inner(record)
        finally:
            with self._state_lock:
                self._pending_cost = max(0, self._pending_cost - record.cost)
                wall = time.perf_counter() - started
                # EMA of campaign wall times feeds Retry-After.
                if self._wall_ema is None:
                    self._wall_ema = wall
                else:
                    self._wall_ema = 0.3 * wall + 0.7 * self._wall_ema

    def _run_inner(self, record: CampaignRecord) -> None:
        record.status = STATUS_RUNNING
        self._emit(record, {"event": "started"})
        cfg = record.config

        def progress(done: int, total: int) -> None:
            self._emit(
                record,
                {"event": "progress", "runs_done": done, "runs_total": total},
            )

        try:
            program = build_subject(record.source, record.name)
            if cfg["rounds"] > 1:
                program = program.scaled(cfg["rounds"])
            program_ref = None
            if cfg["workers"] is not None:
                # Worker processes rebuild the subject from the picklable
                # (source, name) recipe; rounds re-applies the scaling.
                program_ref = ProgramRef(
                    factory=subject_factory(record.source, record.name),
                    rounds=cfg["rounds"],
                )
            outcome = run_app_campaign(
                program,
                stride=cfg["stride"],
                capture_args=cfg["capture_args"],
                workers=cfg["workers"],
                timeout=cfg["timeout"],
                retries=cfg["retries"],
                state_backend=cfg["state_backend"],
                static_prune=cfg["static_prune"],
                trace_derive=cfg["trace_derive"],
                instrumentor=cfg["instrumentor"],
                fingerprint_cache=cfg["fingerprint_cache"],
                progress=progress,
                program_ref=program_ref,
            )
        except Exception as exc:  # the campaign, not the service, failed
            record.status = STATUS_FAILED
            record.error = f"{type(exc).__name__}: {exc}"
            self._emit(record, {"event": "failed", "error": record.error})
            return

        detection = outcome.detection
        telemetry = detection.telemetry
        if telemetry is not None:
            telemetry.result_cache_misses = 1
        self.runs_executed_total += detection.runs_executed
        payload = {
            "id": record.id,
            "name": record.name,
            "digest": record.digest,
            "config": dict(cfg),
            "cached": False,
            "total_points": detection.total_points,
            "runs_executed": detection.runs_executed,
            "genuine_failures": list(detection.genuine_failures),
            "classes": outcome.report.class_count,
            "methods": outcome.report.method_count,
            "injections": outcome.report.injection_count,
            "classification": json.loads(outcome.classification.to_json()),
            "log": json.loads(detection.log.to_json()),
            "telemetry": telemetry.to_dict() if telemetry is not None else {},
        }
        self.cache.put(record.digest, payload)
        record.result = payload
        record.status = STATUS_DONE
        self._emit(
            record,
            {
                "event": "completed",
                "runs_executed": detection.runs_executed,
                "total_points": detection.total_points,
            },
        )

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._state_lock:
            pending_cost = self._pending_cost
        out = {
            "queue_depth": self.queue.qsize(),
            "queue_capacity": self.queue.maxsize,
            "campaigns": len(self.campaigns),
            "runs_executed_total": self.runs_executed_total,
            "result_cache": self.cache.stats(),
            "policy": self.policy,
            "draining": self.draining,
            "shed_total": self.shed_total,
            "pending_cost": pending_cost,
        }
        if self.max_pending_cost is not None:
            out["max_pending_cost"] = self.max_pending_cost
        return out

    def snapshot_events(
        self, record: CampaignRecord, start: int
    ) -> Tuple[List[Dict[str, Any]], str]:
        """Events from *start* on, plus the status observed *after* the
        copy — so a streamer that sees a terminal status with no newer
        events knows the stream is complete."""
        with self._events_lock:
            events = list(record.events[start:])
        return events, record.status


# ---------------------------------------------------------------------------
# HTTP layer
# ---------------------------------------------------------------------------


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServiceServer:
    """The asyncio HTTP/1.1 front end around a :class:`CampaignService`."""

    def __init__(
        self,
        service: Optional[CampaignService] = None,
        *,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        **kwargs,
    ) -> None:
        if max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        self.service = service or CampaignService(**kwargs)
        self.max_body_bytes = max_body_bytes
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker: Optional[asyncio.Task] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind, start the worker coroutine, return the bound port."""
        self._worker = asyncio.ensure_future(self._work())
        self._server = await asyncio.start_server(self._handle, host, port)
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
            self._worker = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def shutdown(self, timeout: Optional[float] = None) -> None:
        """Graceful shutdown: drain, then stop.

        Stops admission (new submissions get 503 + Retry-After; cache
        hits are still answered), waits for every queued and running
        campaign to finish — their terminal events close any open
        ``/events`` streams — then tears the listener and worker down.
        A *timeout* bounds the drain; on expiry the remaining work is
        abandoned (their journals, if any, allow a later resume).
        """
        self.service.begin_drain()
        try:
            if timeout is None:
                await self.service.queue.join()
            else:
                await asyncio.wait_for(self.service.queue.join(), timeout)
        except asyncio.TimeoutError:
            pass
        await self.stop()

    async def _work(self) -> None:
        """Drain the queue forever, one campaign at a time.

        The campaign runs in an executor thread so the event loop keeps
        serving requests — and so per-run timeouts take the
        non-main-thread watchdog path (SIGALRM is unavailable there).
        """
        loop = asyncio.get_event_loop()
        while True:
            record = await self.queue_get()
            try:
                await loop.run_in_executor(None, self.service._run, record)
            finally:
                self.service.queue.task_done()

    async def queue_get(self) -> CampaignRecord:
        return await self.service.queue.get()

    # -- request handling --------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, headers = await self._read_request_head(reader)
                body = await self._read_body(reader, headers, method)
                await self._route(method, path, body, writer)
            except _HttpError as exc:
                await self._send_json(
                    writer, exc.status, {"error": str(exc)}
                )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request_head(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str]]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 3:
            raise _HttpError(400, "malformed request line")
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return method, path, headers

    async def _read_body(
        self,
        reader: asyncio.StreamReader,
        headers: Dict[str, str],
        method: str,
    ) -> bytes:
        """Read (and bound) the request body.

        The declared length is not trusted: a body-bearing method must
        declare one (``411`` otherwise), it must be a number (``400``),
        and it must fit ``max_body_bytes`` (``413``) — checked *before*
        a single body byte is read, so an oversized client costs the
        server a request head, not a buffer.
        """
        raw = headers.get("content-length")
        if raw is None or raw == "":
            if method in ("POST", "PUT", "PATCH"):
                raise _HttpError(
                    411, f"{method} requires a Content-Length header"
                )
            return b""
        try:
            length = int(raw)
        except ValueError:
            raise _HttpError(400, f"invalid Content-Length {raw!r}")
        if length < 0:
            raise _HttpError(400, f"invalid Content-Length {raw!r}")
        if length > self.max_body_bytes:
            raise _HttpError(
                413,
                f"body of {length} bytes exceeds the "
                f"{self.max_body_bytes}-byte limit",
            )
        if length == 0:
            return b""
        return await reader.readexactly(length)

    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        if path == "/campaigns" and method == "POST":
            await self._post_campaign(body, writer)
        elif path == "/stats" and method == "GET":
            await self._send_json(writer, 200, self.service.stats())
        elif path.startswith("/campaigns/") and method == "GET":
            rest = path[len("/campaigns/"):]
            if rest.endswith("/events"):
                await self._stream_events(rest[: -len("/events")].rstrip("/"), writer)
            else:
                record = self._find(rest)
                await self._send_json(writer, 200, record.summary())
        elif path in ("/campaigns", "/stats") or path.startswith("/campaigns/"):
            raise _HttpError(405, f"method {method} not allowed on {path}")
        else:
            raise _HttpError(404, f"no route for {path}")

    def _find(self, campaign_id: str) -> CampaignRecord:
        record = self.service.campaigns.get(campaign_id)
        if record is None:
            raise _HttpError(404, f"no campaign {campaign_id!r}")
        return record

    async def _post_campaign(
        self, body: bytes, writer: asyncio.StreamWriter
    ) -> None:
        try:
            data = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"body is not JSON: {exc}")
        if not isinstance(data, dict):
            raise _HttpError(400, "body must be a JSON object")
        try:
            payload, status = self.service.submit(
                data.get("source", ""),
                data.get("config"),
                name=str(data.get("name", "subject")),
            )
        except SubmissionError as exc:
            raise _HttpError(400, str(exc))
        headers = None
        if status == 503 and "retry_after" in payload:
            headers = {"Retry-After": str(payload["retry_after"])}
        await self._send_json(writer, status, payload, headers=headers)

    async def _stream_events(
        self, campaign_id: str, writer: asyncio.StreamWriter
    ) -> None:
        """NDJSON progress stream: one event per line, closed at the
        campaign's terminal event (``Connection: close`` framing)."""
        record = self._find(campaign_id)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        await writer.drain()
        sent = 0
        while True:
            events, status = self.service.snapshot_events(record, sent)
            for event in events:
                # Chaos seam: an armed disconnect fault raises
                # ConnectionResetError here, exactly like a subscriber
                # vanishing mid-stream; _handle absorbs it and the
                # campaign (and every other connection) carries on.
                _fault_site("stream.write")
                writer.write(
                    json.dumps(event, sort_keys=True).encode("utf-8") + b"\n"
                )
            if events:
                await writer.drain()
                sent += len(events)
            elif status in TERMINAL:
                break
            else:
                await asyncio.sleep(0.02)

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        reason = _REASONS.get(status, "OK")
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: close\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()


def serve(
    host: str = "127.0.0.1",
    port: int = 8642,
    *,
    queue_size: int = 8,
    cache_capacity: int = 128,
    cache_path: Optional[str] = None,
    policy: str = "reject",
    max_pending_cost: Optional[int] = None,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> None:
    """Blocking entry point for ``repro serve``.

    ``SIGTERM`` and ``SIGINT`` (Ctrl-C) both trigger a graceful drain:
    admission stops, in-flight campaigns finish and emit their terminal
    events, then the process exits.  A second Ctrl-C aborts the drain.
    """

    async def _main() -> None:
        server = ServiceServer(
            queue_size=queue_size,
            cache_capacity=cache_capacity,
            cache_path=cache_path,
            policy=policy,
            max_pending_cost=max_pending_cost,
            max_body_bytes=max_body_bytes,
        )
        bound = await server.start(host, port)
        print(f"repro service listening on http://{host}:{bound}")
        print("POST /campaigns  GET /campaigns/<id>[/events]  GET /stats")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread / platform without handlers
        try:
            await stop.wait()
        finally:
            depth = server.service.queue.qsize()
            if depth:
                print(f"draining {depth} queued campaign(s) ...")
            await server.shutdown()
            print("repro service stopped")

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
