"""Digest-keyed campaign result cache.

A detection campaign is a pure function of ``(subject source, campaign
config)``: the profiling run is deterministic and the plan, the sweep
and the classification all derive from it.  That makes whole campaign
results content-addressable — the same trick PR 7's
:class:`~repro.core.state.FingerprintCache` plays per-frame, lifted to
whole campaigns.  The service keys its cache on a 128-bit BLAKE2b digest
of the submitted source plus the *canonicalized* config (defaults
filled, keys sorted), so two submissions that mean the same campaign hit
the same entry even when they spell the config differently.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Any, Dict, Mapping, Optional

__all__ = ["ResultCache", "submission_digest"]


def submission_digest(source: str, config: Mapping[str, Any]) -> str:
    """The cache key of one submission: BLAKE2b-128 over source + config.

    *config* must already be canonical (see
    :func:`repro.service.subjects.canonical_config`); it is serialized
    with sorted keys and compact separators so the digest is independent
    of dict ordering and whitespace.
    """
    canonical = json.dumps(
        dict(config), sort_keys=True, separators=(",", ":")
    )
    digest = hashlib.blake2b(digest_size=16)
    digest.update(source.encode("utf-8"))
    digest.update(b"\x00")  # unambiguous source/config boundary
    digest.update(canonical.encode("utf-8"))
    return digest.hexdigest()


class ResultCache:
    """Bounded LRU of finished campaign payloads, keyed by digest.

    Thread-safe: the service worker inserts from its executor thread
    while the asyncio handlers look up from the event loop.  Counters
    mirror the fingerprint cache's hit/miss telemetry and feed the
    ``result_cache_hits``/``result_cache_misses`` fields of
    :class:`~repro.core.telemetry.CampaignTelemetry`.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Look up a finished campaign; counts a hit or a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def peek(self, key: str) -> Optional[Dict[str, Any]]:
        """Look up without touching the counters or the LRU order."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
            }
