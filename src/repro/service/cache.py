"""Digest-keyed campaign result cache, with crash-safe disk persistence.

A detection campaign is a pure function of ``(subject source, campaign
config)``: the profiling run is deterministic and the plan, the sweep
and the classification all derive from it.  That makes whole campaign
results content-addressable — the same trick PR 7's
:class:`~repro.core.state.FingerprintCache` plays per-frame, lifted to
whole campaigns.  The service keys its cache on a 128-bit BLAKE2b digest
of the submitted source plus the *canonicalized* config (defaults
filled, keys sorted), so two submissions that mean the same campaign hit
the same entry even when they spell the config differently.

Passing ``path=`` adds a persistence layer: every ``put`` appends one
``{"kind": "entry", "digest": ..., "payload": ...}`` line to an
append-only JSONL journal (fsync'd, same crash-safe format as the
campaign journal), and a fresh cache replays the journal on
construction — so a restarted ``repro serve`` answers repeat
submissions with **zero** subject executions.  The replay reuses the
torn-tail-repair machinery from
:class:`~repro.experiments.parallel.CampaignJournal`: a server killed
mid-append leaves a partial final line that is dropped *and* durably
truncated, so the next append starts on a fresh line.  A failed append
(disk full, injected chaos fault) degrades the cache to in-memory for
that entry instead of failing the campaign; the failure is counted in
``persist_errors``.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from typing import Any, Dict, Mapping, Optional

from repro.resilience.chaos import fire as _fault_site

__all__ = ["ResultCache", "submission_digest"]

#: Cache journal schema version; bump when the line format changes.
CACHE_JOURNAL_VERSION = 1


def submission_digest(source: str, config: Mapping[str, Any]) -> str:
    """The cache key of one submission: BLAKE2b-128 over source + config.

    *config* must already be canonical (see
    :func:`repro.service.subjects.canonical_config`); it is serialized
    with sorted keys and compact separators so the digest is independent
    of dict ordering and whitespace.
    """
    canonical = json.dumps(
        dict(config), sort_keys=True, separators=(",", ":")
    )
    digest = hashlib.blake2b(digest_size=16)
    digest.update(source.encode("utf-8"))
    digest.update(b"\x00")  # unambiguous source/config boundary
    digest.update(canonical.encode("utf-8"))
    return digest.hexdigest()


class ResultCache:
    """Bounded LRU of finished campaign payloads, keyed by digest.

    Thread-safe: the service worker inserts from its executor thread
    while the asyncio handlers look up from the event loop.  Counters
    mirror the fingerprint cache's hit/miss telemetry and feed the
    ``result_cache_hits``/``result_cache_misses`` fields of
    :class:`~repro.core.telemetry.CampaignTelemetry`.

    With ``path=`` the cache is persistent: entries are journaled to
    disk as they are inserted and replayed on construction (see the
    module docstring).  ``persist_hits`` counts lookups answered by an
    entry that survived a restart — the ``cache_persist_hits``
    telemetry field.
    """

    def __init__(self, capacity: int = 128, path: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.path = path
        self.hits = 0
        self.misses = 0
        self.persist_hits = 0
        self.persist_errors = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        #: Digests replayed from the journal (vs inserted this process).
        self._persisted: set = set()
        if path is not None:
            self._replay()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Look up a finished campaign; counts a hit or a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            if key in self._persisted:
                self.persist_hits += 1
            return entry

    def peek(self, key: str) -> Optional[Dict[str, Any]]:
        """Look up without touching the counters or the LRU order."""
        with self._lock:
            return self._entries.get(key)

    def is_persisted(self, key: str) -> bool:
        """True when *key*'s entry was replayed from the disk journal
        (i.e. it survived a restart rather than being computed here)."""
        with self._lock:
            return key in self._persisted

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            self._persisted.discard(key)
            while len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                self._persisted.discard(evicted)
            if self.path is not None:
                self._append(key, payload)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            out = {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
            }
            if self.path is not None:
                out["persisted_entries"] = len(self._persisted)
                out["persist_hits"] = self.persist_hits
                out["persist_errors"] = self.persist_errors
            return out

    # -- persistence -------------------------------------------------

    def _append(self, key: str, payload: Dict[str, Any]) -> None:
        """Journal one entry; a write failure degrades to in-memory.

        Called with the lock held.  The campaign already ran — losing
        the durable copy must not lose the result, so every ``OSError``
        (a full disk, an injected chaos fault) is absorbed and counted.
        """
        line = json.dumps(
            {"kind": "entry", "digest": key, "payload": payload},
            sort_keys=True,
        )
        try:
            _fault_site("cache.persist", self.path)
            fresh = not os.path.exists(self.path)
            with open(self.path, "a", encoding="utf-8") as handle:
                if fresh:
                    handle.write(
                        json.dumps(
                            {
                                "kind": "header",
                                "format": "result-cache",
                                "version": CACHE_JOURNAL_VERSION,
                            },
                            sort_keys=True,
                        )
                        + "\n"
                    )
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:
            self.persist_errors += 1

    def _replay(self) -> None:
        """Load the journal written by a previous process, repairing a
        torn tail durably (truncate back to the last complete line)."""
        from repro.experiments.parallel import repair_jsonl_tail, scan_jsonl

        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return
        if not data:
            return
        entries, valid_end = scan_jsonl(data)
        try:
            repair_jsonl_tail(self.path, data, valid_end)
        except OSError:
            self.persist_errors += 1
        for entry in entries:
            if entry.get("kind") != "entry":
                continue  # header (and future line kinds) skipped
            digest = entry.get("digest")
            payload = entry.get("payload")
            if not isinstance(digest, str) or not isinstance(payload, dict):
                continue
            # Later lines win (a re-run overwrote the entry), and the
            # LRU capacity applies to the replay exactly like to puts.
            self._entries[digest] = payload
            self._entries.move_to_end(digest)
            self._persisted.add(digest)
            while len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                self._persisted.discard(evicted)
