"""Pike VM: lockstep NFA simulation with capture groups.

An alternative execution engine for the same compiled programs as
:mod:`repro.regexp.matcher`: all live threads advance over the input in
lockstep, so matching is O(len(text) × len(program)) regardless of the
pattern — the pathological backtracking cases (``(a|aa)+b`` on a long
non-match) run in linear time.

Thread priority (list order) encodes the same greedy/leftmost preferences
the backtracking engine explores depth-first, so both engines agree on
the selected match.  The epsilon closure carries a bitmask of the loop
MARKs executed at the current position, so PROGRESS can recognise an
iteration that consumed no input and divert it to the loop exit — the
same empty-iteration rule the backtracking engine (and CPython's ``re``)
applies.  Only ``mark == pos`` matters (older marks all mean "progress
was made"), so the mask resets whenever a thread consumes a character;
closure states stay bounded by program size, preserving linear matching.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from .errors import RegexpError
from .matcher import MatchResult
from .program import (
    OP_ANY,
    OP_BOL,
    OP_CHAR,
    OP_CLASS,
    OP_EOL,
    OP_JUMP,
    OP_MARK,
    OP_MATCH,
    OP_PROGRESS,
    OP_SAVE,
    OP_SPLIT,
    OP_WORDB,
    Program,
)

__all__ = ["PikeMatcher"]


def _is_word(char: str) -> bool:
    return char.isalnum() or char == "_"


class _Thread:
    __slots__ = ("pc", "slots")

    def __init__(self, pc: int, slots: Tuple[Optional[int], ...]) -> None:
        self.pc = pc
        self.slots = slots


class PikeMatcher:
    """Executes compiled programs by breadth-first thread simulation."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.runs = 0
        self.max_threads = 0

    # -- the epsilon closure ------------------------------------------------

    def _add_thread(
        self,
        threads: List[_Thread],
        visited: Set[Tuple[int, int]],
        pc: int,
        pos: int,
        text: str,
        slots: Tuple[Optional[int], ...],
        fresh_marks: int = 0,
    ) -> None:
        """Add *pc* (and its epsilon closure) in priority order.

        *fresh_marks* is a bitmask of the loop marks executed at *pos*
        within the current closure; a thread entering via character
        consumption starts with 0 (all its marks predate *pos*).
        """
        stack = [(pc, slots, fresh_marks)]
        instructions = self.program.instructions
        while stack:
            current_pc, current_slots, current_fresh = stack.pop()
            # key on (pc, fresh marks): the same pc reached with a
            # different set of at-this-position marks is a different
            # continuation — PROGRESS may loop for one and exit for the
            # other — so neither may prune the other
            key = (current_pc, current_fresh)
            if key in visited:
                continue
            visited.add(key)
            instruction = instructions[current_pc]
            op = instruction.op
            if op == OP_JUMP:
                stack.append((instruction.target, current_slots, current_fresh))
            elif op == OP_SPLIT:
                # preserve priority: target first, alt second — push alt
                # onto a recursive call so ordering matches depth-first
                self._add_thread(
                    threads, visited, instruction.target, pos, text,
                    current_slots, current_fresh,
                )
                stack.append((instruction.alt, current_slots, current_fresh))
            elif op == OP_SAVE:
                updated = list(current_slots)
                updated[instruction.slot] = pos
                stack.append((current_pc + 1, tuple(updated), current_fresh))
            elif op == OP_MARK:
                stack.append((
                    current_pc + 1,
                    current_slots,
                    current_fresh | (1 << instruction.slot),
                ))
            elif op == OP_PROGRESS:
                if current_fresh & (1 << instruction.slot):
                    # empty iteration: divert to the loop exit at this
                    # thread's priority (CPython's empty-repeat rule)
                    stack.append((instruction.target, current_slots, current_fresh))
                else:
                    stack.append((current_pc + 1, current_slots, current_fresh))
            elif op == OP_BOL:
                if pos == 0:
                    stack.append((current_pc + 1, current_slots, current_fresh))
            elif op == OP_EOL:
                if pos == len(text):
                    stack.append((current_pc + 1, current_slots, current_fresh))
            elif op == OP_WORDB:
                before = pos > 0 and _is_word(text[pos - 1])
                after = pos < len(text) and _is_word(text[pos])
                if (before != after) != instruction.negated:
                    stack.append((current_pc + 1, current_slots, current_fresh))
            else:
                threads.append(_Thread(current_pc, current_slots))

    # -- matching -------------------------------------------------------------

    def match_at(self, text: str, position: int) -> Optional[MatchResult]:
        """Match anchored at *position* (same contract as Matcher)."""
        if not self.program.sealed:
            raise RegexpError("program was not sealed before matching")
        self.runs += 1
        instructions = self.program.instructions
        slots: Tuple[Optional[int], ...] = (None,) * self.program.slot_count
        current: List[_Thread] = []
        self._add_thread(current, set(), 0, position, text, slots)
        matched: Optional[Tuple[Optional[int], ...]] = None
        pos = position
        while current:
            self.max_threads = max(self.max_threads, len(current))
            following: List[_Thread] = []
            visited: Set[Tuple[int, int]] = set()
            char = text[pos] if pos < len(text) else None
            for thread in current:
                instruction = instructions[thread.pc]
                op = instruction.op
                if op == OP_MATCH:
                    # record and cut every *lower*-priority thread; the
                    # surviving (already-advanced) threads have higher
                    # priority and may still yield the match the
                    # depth-first engine would prefer — later matches
                    # therefore overwrite this one
                    matched = thread.slots
                    break
                if char is None:
                    continue
                advanced = (
                    (op == OP_CHAR and char == instruction.char)
                    or (op == OP_CLASS and instruction.class_matches(char))
                    or op == OP_ANY
                )
                if advanced:
                    self._add_thread(
                        following, visited, thread.pc + 1, pos + 1, text,
                        thread.slots,
                    )
            current = following
            pos += 1
        if matched is not None:
            return MatchResult(text, matched)
        return None

    def search(self, text: str, start: int = 0) -> Optional[MatchResult]:
        """Leftmost match at or after *start*, or None."""
        for position in range(start, len(text) + 1):
            result = self.match_at(text, position)
            if result is not None:
                return result
        return None
