"""Errors of the regular-expression engine."""

from __future__ import annotations

__all__ = ["RegexpError", "RegexpSyntaxError", "CompileError"]


class RegexpError(Exception):
    """Base class of all regexp-engine errors."""


class RegexpSyntaxError(RegexpError):
    """The pattern text is not a valid regular expression."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position


class CompileError(RegexpError):
    """The AST could not be lowered to a program."""
