"""Compiled regexp programs: a linear instruction encoding.

A program is a sequence of simple instructions executed by the
backtracking matcher.  The compiler builds programs incrementally through
:meth:`Program.emit` / :meth:`Program.patch`, which gives the compilation
path observable intermediate state — the kind of multi-step construction
the paper's injection campaign interrupts.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .errors import CompileError

__all__ = [
    "Instruction",
    "Program",
    "OP_CHAR",
    "OP_CLASS",
    "OP_ANY",
    "OP_SPLIT",
    "OP_JUMP",
    "OP_SAVE",
    "OP_MATCH",
    "OP_BOL",
    "OP_EOL",
    "OP_MARK",
    "OP_PROGRESS",
    "OP_WORDB",
]

OP_CHAR = "char"      # match one specific character
OP_CLASS = "class"    # match one character from ranges
OP_ANY = "any"        # match any one character
OP_SPLIT = "split"    # try target, on failure try alt
OP_JUMP = "jump"      # unconditional jump to target
OP_SAVE = "save"      # record current position into a capture slot
OP_MATCH = "match"    # accept
OP_BOL = "bol"        # assert beginning of input
OP_EOL = "eol"        # assert end of input
OP_MARK = "mark"      # record current position into a loop mark
OP_PROGRESS = "progress"  # jump to target (loop exit) if no progress made
OP_WORDB = "wordb"    # assert a word boundary (negated: non-boundary)

_OPS = frozenset(
    {
        OP_CHAR,
        OP_CLASS,
        OP_ANY,
        OP_SPLIT,
        OP_JUMP,
        OP_SAVE,
        OP_MATCH,
        OP_BOL,
        OP_EOL,
        OP_MARK,
        OP_PROGRESS,
        OP_WORDB,
    }
)


class Instruction:
    """One program instruction.

    Fields (used depending on ``op``):
        char: the character for OP_CHAR.
        ranges / negated: the class for OP_CLASS.
        target / alt: jump targets for OP_SPLIT / OP_JUMP.
        slot: capture slot index for OP_SAVE.
    """

    __slots__ = ("op", "char", "ranges", "negated", "target", "alt", "slot")

    def __init__(
        self,
        op: str,
        *,
        char: Optional[str] = None,
        ranges: Optional[List[Tuple[str, str]]] = None,
        negated: bool = False,
        target: int = -1,
        alt: int = -1,
        slot: int = -1,
    ) -> None:
        if op not in _OPS:
            raise CompileError(f"unknown opcode {op!r}")
        self.op = op
        self.char = char
        self.ranges = ranges
        self.negated = negated
        self.target = target
        self.alt = alt
        self.slot = slot

    def class_matches(self, char: str) -> bool:
        inside = any(low <= char <= high for low, high in self.ranges)
        return inside != self.negated

    def describe(self) -> str:
        if self.op == OP_CHAR:
            return f"char {self.char!r}"
        if self.op == OP_CLASS:
            parts = "".join(
                low if low == high else f"{low}-{high}" for low, high in self.ranges
            )
            return f"class [{'^' if self.negated else ''}{parts}]"
        if self.op == OP_SPLIT:
            return f"split -> {self.target}, {self.alt}"
        if self.op == OP_JUMP:
            return f"jump -> {self.target}"
        if self.op == OP_SAVE:
            return f"save slot {self.slot}"
        if self.op == OP_MARK:
            return f"mark {self.slot}"
        if self.op == OP_PROGRESS:
            return f"progress {self.slot} -> {self.target}"
        if self.op == OP_WORDB:
            return "wordb (negated)" if self.negated else "wordb"
        return self.op


class Program:
    """A growable instruction sequence with back-patching support."""

    def __init__(self, group_count: int = 0) -> None:
        self.instructions: List[Instruction] = []
        self.group_count = group_count
        self.mark_count = 0  # loop marks used by OP_MARK/OP_PROGRESS
        self.sealed = False

    def new_mark(self) -> int:
        """Allocate a fresh loop-progress mark; return its id."""
        if self.sealed:
            raise CompileError("cannot allocate marks in a sealed program")
        mark = self.mark_count
        self.mark_count += 1
        return mark

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def slot_count(self) -> int:
        """Capture slots: two per group plus two for the whole match."""
        return 2 * (self.group_count + 1)

    def emit(self, instruction: Instruction) -> int:
        """Append an instruction; return its address."""
        if self.sealed:
            raise CompileError("cannot emit into a sealed program")
        self.instructions.append(instruction)
        return len(self.instructions) - 1

    def patch(self, address: int, *, target: Optional[int] = None, alt: Optional[int] = None) -> None:
        """Back-patch the jump fields of the instruction at *address*."""
        if self.sealed:
            raise CompileError("cannot patch a sealed program")
        instruction = self.instructions[address]
        if target is not None:
            instruction.target = target
        if alt is not None:
            instruction.alt = alt

    def seal(self) -> None:
        """Finish construction; verify every jump target is in range."""
        for address, instruction in enumerate(self.instructions):
            if instruction.op in (OP_SPLIT, OP_JUMP, OP_PROGRESS):
                if not 0 <= instruction.target <= len(self.instructions):
                    raise CompileError(
                        f"instruction {address}: target {instruction.target} "
                        "out of range"
                    )
                if instruction.op == OP_SPLIT and not (
                    0 <= instruction.alt <= len(self.instructions)
                ):
                    raise CompileError(
                        f"instruction {address}: alt {instruction.alt} out of range"
                    )
        self.sealed = True

    def dump(self) -> str:
        """Human-readable listing of the program."""
        lines = [
            f"{address:4d}  {instruction.describe()}"
            for address, instruction in enumerate(self.instructions)
        ]
        return "\n".join(lines)
