"""The backtracking matcher (virtual machine) for compiled programs.

A depth-first backtracking interpreter with an explicit stack of
alternatives.  Capture slots are carried as immutable tuples so that
abandoning a branch restores them for free.  A step budget bounds
pathological backtracking (``(a*)*`` style patterns), turning potential
non-termination into a :class:`RegexpError` — the matcher is a test
subject of the injection campaign and must always return.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .errors import RegexpError
from .program import (
    OP_ANY,
    OP_BOL,
    OP_CHAR,
    OP_CLASS,
    OP_EOL,
    OP_JUMP,
    OP_MARK,
    OP_MATCH,
    OP_PROGRESS,
    OP_SAVE,
    OP_SPLIT,
    OP_WORDB,
    Program,
)

__all__ = ["MatchResult", "Matcher"]

_DEFAULT_STEP_BUDGET = 1_000_000


def _is_word(char: str) -> bool:
    """Word characters for ``\\b``: letters, digits, underscore."""
    return char.isalnum() or char == "_"


class MatchResult:
    """A successful match: the whole span plus every group span."""

    def __init__(self, text: str, slots: Tuple[Optional[int], ...]) -> None:
        self._text = text
        self._slots = slots

    @property
    def start(self) -> int:
        return self._slots[0]

    @property
    def end(self) -> int:
        return self._slots[1]

    def group(self, index: int = 0) -> Optional[str]:
        """Text of group *index* (0 = whole match), or None if unset."""
        low = self._slots[2 * index] if 2 * index < len(self._slots) else None
        high = (
            self._slots[2 * index + 1]
            if 2 * index + 1 < len(self._slots)
            else None
        )
        if low is None or high is None:
            return None
        return self._text[low:high]

    def span(self, index: int = 0) -> Optional[Tuple[int, int]]:
        low = self._slots[2 * index] if 2 * index < len(self._slots) else None
        high = (
            self._slots[2 * index + 1]
            if 2 * index + 1 < len(self._slots)
            else None
        )
        if low is None or high is None:
            return None
        return (low, high)

    def groups(self) -> List[Optional[str]]:
        """All group texts (1..n), like ``re.Match.groups()``."""
        count = len(self._slots) // 2 - 1
        return [self.group(index) for index in range(1, count + 1)]

    def __repr__(self) -> str:
        return f"<MatchResult span=({self.start}, {self.end}) {self.group()!r}>"


class Matcher:
    """Executes a program against input text.

    The matcher keeps per-run statistics (steps consumed, deepest stack)
    as instance state — realistic mutable bookkeeping for the atomicity
    experiments.
    """

    def __init__(self, program: Program, step_budget: int = _DEFAULT_STEP_BUDGET):
        self.program = program
        self.step_budget = step_budget
        self.steps_used = 0
        self.max_stack_depth = 0
        self.runs = 0

    def match_at(self, text: str, position: int) -> Optional[MatchResult]:
        """Match anchored at *position*; return the result or None."""
        if not self.program.sealed:
            raise RegexpError("program was not sealed before matching")
        self.runs += 1
        slots: Tuple[Optional[int], ...] = (None,) * self.program.slot_count
        marks: Tuple[int, ...] = (-1,) * self.program.mark_count
        stack = [(0, position, slots, marks)]
        steps = 0
        instructions = self.program.instructions
        while stack:
            self.max_stack_depth = max(self.max_stack_depth, len(stack))
            pc, pos, slots, marks = stack.pop()
            while True:
                steps += 1
                if steps > self.step_budget:
                    self.steps_used += steps
                    raise RegexpError(
                        f"step budget exceeded ({self.step_budget}): "
                        "pattern backtracks excessively"
                    )
                instruction = instructions[pc]
                op = instruction.op
                if op == OP_CHAR:
                    if pos < len(text) and text[pos] == instruction.char:
                        pc += 1
                        pos += 1
                        continue
                    break
                if op == OP_CLASS:
                    if pos < len(text) and instruction.class_matches(text[pos]):
                        pc += 1
                        pos += 1
                        continue
                    break
                if op == OP_ANY:
                    if pos < len(text):
                        pc += 1
                        pos += 1
                        continue
                    break
                if op == OP_SPLIT:
                    stack.append((instruction.alt, pos, slots, marks))
                    pc = instruction.target
                    continue
                if op == OP_JUMP:
                    pc = instruction.target
                    continue
                if op == OP_SAVE:
                    updated = list(slots)
                    updated[instruction.slot] = pos
                    slots = tuple(updated)
                    pc += 1
                    continue
                if op == OP_MARK:
                    updated_marks = list(marks)
                    updated_marks[instruction.slot] = pos
                    marks = tuple(updated_marks)
                    pc += 1
                    continue
                if op == OP_PROGRESS:
                    if pos > marks[instruction.slot]:
                        pc += 1
                        continue
                    # empty iteration: end the loop here (CPython's rule),
                    # leaving the iteration's alternatives as backtrack
                    # points in case the continuation fails
                    pc = instruction.target
                    continue
                if op == OP_WORDB:
                    before = pos > 0 and _is_word(text[pos - 1])
                    after = pos < len(text) and _is_word(text[pos])
                    if (before != after) != instruction.negated:
                        pc += 1
                        continue
                    break
                if op == OP_BOL:
                    if pos == 0:
                        pc += 1
                        continue
                    break
                if op == OP_EOL:
                    if pos == len(text):
                        pc += 1
                        continue
                    break
                if op == OP_MATCH:
                    self.steps_used += steps
                    return MatchResult(text, slots)
                raise RegexpError(f"unknown opcode {op!r}")  # pragma: no cover
        self.steps_used += steps
        return None

    def search(self, text: str, start: int = 0) -> Optional[MatchResult]:
        """Leftmost match at or after *start*, or None."""
        for position in range(start, len(text) + 1):
            result = self.match_at(text, position)
            if result is not None:
                return result
        return None
