"""AST node classes of the regular-expression engine.

The parser produces a tree of these nodes; the compiler lowers them to a
linear instruction program.  Nodes are immutable after construction.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

__all__ = [
    "Node",
    "Empty",
    "Literal",
    "AnyChar",
    "CharClass",
    "Concat",
    "Alternate",
    "Repeat",
    "Group",
    "Anchor",
    "WordBoundary",
]


class Node:
    """Base class of all AST nodes."""

    def children(self) -> List["Node"]:
        return []

    def describe(self) -> str:
        """One-line structural description (used in error messages)."""
        return type(self).__name__


class Empty(Node):
    """Matches the empty string."""


class Literal(Node):
    """Matches one specific character."""

    def __init__(self, char: str) -> None:
        self.char = char

    def describe(self) -> str:
        return f"Literal({self.char!r})"


class AnyChar(Node):
    """Matches any single character (``.``)."""


class CharClass(Node):
    """Matches one character from a set of ranges (``[a-z0-9]``)."""

    def __init__(self, ranges: List[Tuple[str, str]], negated: bool = False):
        self.ranges = list(ranges)
        self.negated = negated

    def matches(self, char: str) -> bool:
        inside = any(low <= char <= high for low, high in self.ranges)
        return inside != self.negated

    def describe(self) -> str:
        parts = "".join(
            low if low == high else f"{low}-{high}" for low, high in self.ranges
        )
        prefix = "^" if self.negated else ""
        return f"CharClass([{prefix}{parts}])"


class Concat(Node):
    """Matches a sequence of sub-patterns."""

    def __init__(self, parts: List[Node]) -> None:
        self.parts = list(parts)

    def children(self) -> List[Node]:
        return list(self.parts)


class Alternate(Node):
    """Matches either branch (``a|b``)."""

    def __init__(self, left: Node, right: Node) -> None:
        self.left = left
        self.right = right

    def children(self) -> List[Node]:
        return [self.left, self.right]


class Repeat(Node):
    """Matches a sub-pattern repeated between *minimum* and *maximum* times.

    ``maximum is None`` means unbounded.  ``greedy`` selects whether the
    repetition prefers more (default) or fewer iterations.
    """

    def __init__(
        self,
        body: Node,
        minimum: int,
        maximum: Optional[int],
        greedy: bool = True,
    ) -> None:
        self.body = body
        self.minimum = minimum
        self.maximum = maximum
        self.greedy = greedy

    def children(self) -> List[Node]:
        return [self.body]

    def describe(self) -> str:
        bound = "" if self.maximum is None else str(self.maximum)
        suffix = "" if self.greedy else "?"
        return f"Repeat{{{self.minimum},{bound}}}{suffix}"


class Group(Node):
    """A capturing group ``( ... )`` with a 1-based index."""

    def __init__(self, index: int, body: Node) -> None:
        self.index = index
        self.body = body

    def children(self) -> List[Node]:
        return [self.body]

    def describe(self) -> str:
        return f"Group({self.index})"


class Anchor(Node):
    """Start (``^``) or end (``$``) of input."""

    START = "start"
    END = "end"

    def __init__(self, kind: str) -> None:
        self.kind = kind

    def describe(self) -> str:
        return f"Anchor({self.kind})"


class WordBoundary(Node):
    """``\\b`` (or ``\\B`` when negated): a word/non-word transition."""

    def __init__(self, negated: bool = False) -> None:
        self.negated = negated

    def describe(self) -> str:
        return "WordBoundary(\\B)" if self.negated else "WordBoundary(\\b)"
