"""Regular-expression engine (the paper's ``RegExp`` Java test subject).

A complete pipeline built from scratch: recursive-descent
:mod:`parser <repro.regexp.parser>` → :mod:`AST <repro.regexp.nodes>` →
:mod:`compiler <repro.regexp.compiler>` →
:mod:`backtracking VM <repro.regexp.matcher>`.  The :class:`Regexp` facade
mirrors the Jakarta Regexp API surface (compile once, then match / search
/ findall / substitute / split).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Union

from .compiler import Compiler, compile_pattern
from .errors import CompileError, RegexpError, RegexpSyntaxError
from .matcher import Matcher, MatchResult
from .nodes import Node
from .parser import Parser, parse
from .pikevm import PikeMatcher
from .program import Instruction, Program

__all__ = [
    "Regexp",
    "Parser",
    "parse",
    "Compiler",
    "compile_pattern",
    "Program",
    "Instruction",
    "Matcher",
    "PikeMatcher",
    "MatchResult",
    "RegexpError",
    "RegexpSyntaxError",
    "CompileError",
    "Node",
]

#: Execution engines selectable on :class:`Regexp`.
ENGINES = {
    "backtracking": Matcher,
    "pike": PikeMatcher,
}


class Regexp:
    """A compiled regular expression.

    The constructor parses and compiles the pattern through the mutable
    :class:`Program` builder — a multi-step construction that the
    injection campaign can interrupt, making the constructor itself a
    detection subject.

    Args:
        engine: ``"backtracking"`` (default; depth-first with a step
            budget) or ``"pike"`` (lockstep NFA simulation, linear time,
            immune to pathological backtracking).  Both run the same
            compiled program and agree on every match.
    """

    def __init__(self, pattern: str, engine: str = "backtracking") -> None:
        self.pattern = pattern
        if engine not in ENGINES:
            raise RegexpError(
                f"unknown engine {engine!r}; choose from {sorted(ENGINES)}"
            )
        self.engine = engine
        parser = Parser(pattern)
        root = parser.parse()
        self.group_count = parser.group_count
        self.program = Compiler(parser.group_count).compile(root)
        self._matcher = ENGINES[engine](self.program)

    # -- matching ------------------------------------------------------------

    def match(self, text: str, position: int = 0) -> Optional[MatchResult]:
        """Match anchored at *position* (like ``re.match`` at an offset)."""
        return self._matcher.match_at(text, position)

    def search(self, text: str, start: int = 0) -> Optional[MatchResult]:
        """Leftmost match at or after *start* (like ``re.search``)."""
        return self._matcher.search(text, start)

    def fullmatch(self, text: str) -> Optional[MatchResult]:
        """Match consuming the entire text."""
        result = self.match(text, 0)
        if result is not None and result.end == len(text):
            return result
        return None

    def findall(self, text: str) -> List[str]:
        """All non-overlapping match texts, left to right."""
        return [m.group() for m in self.finditer(text)]

    def finditer(self, text: str) -> List[MatchResult]:
        """All non-overlapping matches, left to right."""
        results: List[MatchResult] = []
        position = 0
        while position <= len(text):
            result = self.search(text, position)
            if result is None:
                break
            results.append(result)
            # empty matches advance by one to guarantee progress
            position = result.end if result.end > result.start else result.end + 1
        return results

    def substitute(
        self, text: str, replacement: Union[str, Callable[[MatchResult], str]]
    ) -> str:
        """Replace every match with *replacement* (string or callable)."""
        pieces: List[str] = []
        last = 0
        for result in self.finditer(text):
            pieces.append(text[last : result.start])
            if callable(replacement):
                pieces.append(replacement(result))
            else:
                pieces.append(replacement)
            last = result.end
        pieces.append(text[last:])
        return "".join(pieces)

    def split(self, text: str) -> List[str]:
        """Split *text* around every match."""
        pieces: List[str] = []
        last = 0
        for result in self.finditer(text):
            pieces.append(text[last : result.start])
            last = result.end
        pieces.append(text[last:])
        return pieces

    # -- diagnostics -----------------------------------------------------------

    def dump_program(self) -> str:
        """Instruction listing of the compiled program."""
        return self.program.dump()

    def __repr__(self) -> str:
        return f"Regexp({self.pattern!r})"
