"""Lowering of regexp ASTs to instruction programs.

Uses the classic Thompson-style encoding: alternation and repetition
become SPLIT instructions whose priority order implements greediness.
Counted repetitions are expanded structurally (``a{2,4}`` becomes
``aaa?a?``), which keeps the matcher simple at the cost of program size.
"""

from __future__ import annotations

from .errors import CompileError
from .nodes import (
    Alternate,
    Anchor,
    AnyChar,
    CharClass,
    Concat,
    Empty,
    Group,
    Literal,
    Node,
    Repeat,
    WordBoundary,
)
from .parser import Parser
from .program import (
    OP_ANY,
    OP_BOL,
    OP_CHAR,
    OP_CLASS,
    OP_EOL,
    OP_JUMP,
    OP_MARK,
    OP_MATCH,
    OP_PROGRESS,
    OP_SAVE,
    OP_SPLIT,
    OP_WORDB,
    Instruction,
    Program,
)

__all__ = ["Compiler", "compile_pattern"]

#: Guard against structurally exploding counted repetitions.
_MAX_EXPANSION = 1000


class Compiler:
    """Compiles one AST into a :class:`Program`."""

    def __init__(self, group_count: int) -> None:
        self.program = Program(group_count)

    def compile(self, root: Node) -> Program:
        """Emit ``save(0) <root> save(1) match`` and seal the program."""
        self.program.emit(Instruction(OP_SAVE, slot=0))
        self._emit_node(root)
        self.program.emit(Instruction(OP_SAVE, slot=1))
        self.program.emit(Instruction(OP_MATCH))
        self.program.seal()
        return self.program

    # -- node dispatch -----------------------------------------------------

    def _emit_node(self, node: Node) -> None:
        if isinstance(node, Empty):
            return
        if isinstance(node, Literal):
            self.program.emit(Instruction(OP_CHAR, char=node.char))
        elif isinstance(node, AnyChar):
            self.program.emit(Instruction(OP_ANY))
        elif isinstance(node, CharClass):
            self.program.emit(
                Instruction(OP_CLASS, ranges=node.ranges, negated=node.negated)
            )
        elif isinstance(node, Anchor):
            op = OP_BOL if node.kind == Anchor.START else OP_EOL
            self.program.emit(Instruction(op))
        elif isinstance(node, WordBoundary):
            self.program.emit(Instruction(OP_WORDB, negated=node.negated))
        elif isinstance(node, Concat):
            for part in node.parts:
                self._emit_node(part)
        elif isinstance(node, Alternate):
            self._emit_alternate(node)
        elif isinstance(node, Group):
            self.program.emit(Instruction(OP_SAVE, slot=2 * node.index))
            self._emit_node(node.body)
            self.program.emit(Instruction(OP_SAVE, slot=2 * node.index + 1))
        elif isinstance(node, Repeat):
            self._emit_repeat(node)
        else:
            raise CompileError(f"unknown node {node.describe()}")

    def _emit_alternate(self, node: Alternate) -> None:
        split = self.program.emit(Instruction(OP_SPLIT))
        self.program.patch(split, target=len(self.program))
        self._emit_node(node.left)
        jump = self.program.emit(Instruction(OP_JUMP))
        self.program.patch(split, alt=len(self.program))
        self._emit_node(node.right)
        self.program.patch(jump, target=len(self.program))

    def _emit_repeat(self, node: Repeat) -> None:
        minimum, maximum = node.minimum, node.maximum
        if (maximum or minimum) > _MAX_EXPANSION:
            raise CompileError(
                f"counted repetition too large (> {_MAX_EXPANSION})"
            )
        for _ in range(minimum):
            self._emit_node(node.body)
        if maximum is None:
            self._emit_star(node.body, node.greedy)
        else:
            self._emit_optionals(node.body, maximum - minimum, node.greedy)

    def _emit_star(self, body: Node, greedy: bool) -> None:
        """``e*``: split / mark / body / progress / jump-back.

        The MARK/PROGRESS pair ends the loop when an iteration consumed
        no input: PROGRESS jumps straight to the exit instead of looping,
        matching CPython's rule that a repeat stops after an empty body
        match without trying the body's remaining alternatives first.
        Stars over empty-matching bodies (``(a?)*``) therefore terminate.
        """
        mark = self.program.new_mark()
        split = self.program.emit(Instruction(OP_SPLIT))
        body_start = len(self.program)
        self.program.emit(Instruction(OP_MARK, slot=mark))
        self._emit_node(body)
        progress = self.program.emit(Instruction(OP_PROGRESS, slot=mark))
        self.program.emit(Instruction(OP_JUMP, target=split))
        after = len(self.program)
        self.program.patch(progress, target=after)
        if greedy:
            self.program.patch(split, target=body_start, alt=after)
        else:
            self.program.patch(split, target=after, alt=body_start)

    def _emit_optionals(self, body: Node, count: int, greedy: bool) -> None:
        """``e{0,count}``: nested optional copies (all-or-prefix)."""
        splits = []
        for _ in range(count):
            split = self.program.emit(Instruction(OP_SPLIT))
            body_start = len(self.program)
            if greedy:
                self.program.patch(split, target=body_start)
            else:
                self.program.patch(split, alt=body_start)
            self._emit_node(body)
            splits.append(split)
        after = len(self.program)
        for split in splits:
            if greedy:
                self.program.patch(split, alt=after)
            else:
                self.program.patch(split, target=after)


def compile_pattern(pattern: str) -> Program:
    """Parse and compile *pattern* into a sealed program."""
    parser = Parser(pattern)
    root = parser.parse()
    return Compiler(parser.group_count).compile(root)
