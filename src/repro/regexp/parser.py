"""Recursive-descent parser for the regular-expression dialect.

Supported syntax (a practical subset of the Jakarta Regexp dialect the
paper tested):

* literals, ``.``, escapes ``\\d \\D \\w \\W \\s \\S`` and escaped
  metacharacters,
* character classes ``[a-z0-9_]`` with negation ``[^...]`` and ranges,
* grouping ``( ... )`` (capturing, numbered left to right),
* alternation ``|``,
* repetition ``* + ?`` and counted ``{m}``, ``{m,}``, ``{m,n}``, each
  with an optional non-greedy ``?`` suffix,
* anchors ``^`` and ``$``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .errors import RegexpSyntaxError
from .nodes import (
    Alternate,
    Anchor,
    AnyChar,
    CharClass,
    Concat,
    Empty,
    Group,
    Literal,
    Node,
    Repeat,
    WordBoundary,
)

__all__ = ["Parser", "parse"]

_METACHARS = set("()[]{}|*+?.^$\\")

_ESCAPE_CLASSES = {
    "d": ([("0", "9")], False),
    "D": ([("0", "9")], True),
    "w": ([("a", "z"), ("A", "Z"), ("0", "9"), ("_", "_")], False),
    "W": ([("a", "z"), ("A", "Z"), ("0", "9"), ("_", "_")], True),
    "s": ([(" ", " "), ("\t", "\t"), ("\n", "\n"), ("\r", "\r"), ("\f", "\f"), ("\v", "\v")], False),
    "S": ([(" ", " "), ("\t", "\t"), ("\n", "\n"), ("\r", "\r"), ("\f", "\f"), ("\v", "\v")], True),
}

_ESCAPE_LITERALS = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "f": "\f",
    "v": "\v",
    "0": "\0",
}


class Parser:
    """Parses one pattern string into an AST."""

    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self.position = 0
        self.group_count = 0

    # -- plumbing ----------------------------------------------------------

    def _peek(self) -> Optional[str]:
        if self.position < len(self.pattern):
            return self.pattern[self.position]
        return None

    def _next(self) -> str:
        char = self._peek()
        if char is None:
            raise RegexpSyntaxError("unexpected end of pattern", self.position)
        self.position += 1
        return char

    def _expect(self, char: str) -> None:
        if self._peek() != char:
            raise RegexpSyntaxError(f"expected {char!r}", self.position)
        self.position += 1

    def _error(self, message: str) -> RegexpSyntaxError:
        return RegexpSyntaxError(message, self.position)

    # -- grammar -------------------------------------------------------------

    def parse(self) -> Node:
        """``pattern := alternation`` (must consume all input)."""
        node = self._alternation()
        if self.position != len(self.pattern):
            raise self._error(f"unexpected {self._peek()!r}")
        return node

    def _alternation(self) -> Node:
        node = self._concat()
        while self._peek() == "|":
            self._next()
            node = Alternate(node, self._concat())
        return node

    def _concat(self) -> Node:
        parts: List[Node] = []
        while True:
            char = self._peek()
            if char is None or char in ")|":
                break
            parts.append(self._repetition())
        if not parts:
            return Empty()
        if len(parts) == 1:
            return parts[0]
        return Concat(parts)

    def _repetition(self) -> Node:
        atom = self._atom()
        char = self._peek()
        if char == "*":
            self._next()
            return Repeat(atom, 0, None, greedy=self._greedy())
        if char == "+":
            self._next()
            return Repeat(atom, 1, None, greedy=self._greedy())
        if char == "?":
            self._next()
            return Repeat(atom, 0, 1, greedy=self._greedy())
        if char == "{":
            return self._counted(atom)
        return atom

    def _greedy(self) -> bool:
        if self._peek() == "?":
            self._next()
            return False
        return True

    def _counted(self, atom: Node) -> Node:
        start = self.position
        self._expect("{")
        minimum = self._number()
        maximum: Optional[int] = minimum
        if self._peek() == ",":
            self._next()
            if self._peek() == "}":
                maximum = None
            else:
                maximum = self._number()
        self._expect("}")
        if maximum is not None and maximum < minimum:
            raise RegexpSyntaxError("repeat bounds out of order", start)
        return Repeat(atom, minimum, maximum, greedy=self._greedy())

    def _number(self) -> int:
        digits = []
        while (char := self._peek()) is not None and char.isdigit():
            digits.append(self._next())
        if not digits:
            raise self._error("expected a number")
        return int("".join(digits))

    def _atom(self) -> Node:
        char = self._peek()
        if char == "(":
            self._next()
            self.group_count += 1
            index = self.group_count
            body = self._alternation()
            self._expect(")")
            return Group(index, body)
        if char == "[":
            return self._char_class()
        if char == ".":
            self._next()
            return AnyChar()
        if char == "^":
            self._next()
            return Anchor(Anchor.START)
        if char == "$":
            self._next()
            return Anchor(Anchor.END)
        if char == "\\":
            return self._escape()
        if char in "*+?{":
            raise self._error(f"nothing to repeat with {char!r}")
        if char in ")|" or char is None:
            raise self._error("expected an atom")
        return Literal(self._next())

    def _escape(self) -> Node:
        self._expect("\\")
        char = self._next()
        if char == "b":
            return WordBoundary()
        if char == "B":
            return WordBoundary(negated=True)
        if char in _ESCAPE_CLASSES:
            ranges, negated = _ESCAPE_CLASSES[char]
            return CharClass(ranges, negated)
        if char in _ESCAPE_LITERALS:
            return Literal(_ESCAPE_LITERALS[char])
        if char in _METACHARS:
            return Literal(char)
        raise RegexpSyntaxError(f"unknown escape \\{char}", self.position - 1)

    def _char_class(self) -> Node:
        start = self.position
        self._expect("[")
        negated = False
        if self._peek() == "^":
            self._next()
            negated = True
        ranges: List[Tuple[str, str]] = []
        first = True
        while True:
            char = self._peek()
            if char is None:
                raise RegexpSyntaxError("unterminated character class", start)
            if char == "]" and not first:
                self._next()
                break
            first = False
            low = self._class_char()
            if self._peek() == "-" and self._lookahead(1) not in (None, "]"):
                self._next()
                high = self._class_char()
                if high < low:
                    raise RegexpSyntaxError("range out of order", self.position)
                ranges.append((low, high))
            else:
                ranges.append((low, low))
        if not ranges:
            raise RegexpSyntaxError("empty character class", start)
        return CharClass(ranges, negated)

    def _class_char(self) -> str:
        char = self._next()
        if char != "\\":
            return char
        escaped = self._next()
        if escaped in _ESCAPE_LITERALS:
            return _ESCAPE_LITERALS[escaped]
        return escaped

    def _lookahead(self, offset: int) -> Optional[str]:
        index = self.position + offset
        if index < len(self.pattern):
            return self.pattern[index]
        return None


def parse(pattern: str) -> Node:
    """Parse *pattern*; return the AST root."""
    return Parser(pattern).parse()
