"""A small mutable DOM: elements with attributes, children, and text.

The Self\\* XML applications build and transform these trees; element
mutation methods are multi-step (attribute dict + child list + parent
backlinks), which makes them natural detection subjects.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .errors import XmlStructureError

__all__ = ["Element", "Document"]


class Element:
    """One XML element: tag, attributes, text, and child elements."""

    def __init__(self, tag: str, text: str = "") -> None:
        if not tag or not _valid_name(tag):
            raise XmlStructureError(f"invalid tag name {tag!r}")
        self.tag = tag
        self.text = text
        self.attributes: Dict[str, str] = {}
        self.children: List["Element"] = []
        self.parent: Optional["Element"] = None

    # -- attributes --------------------------------------------------------

    def set_attribute(self, name: str, value: str) -> None:
        if not _valid_name(name):
            raise XmlStructureError(f"invalid attribute name {name!r}")
        self.attributes[name] = str(value)

    def get_attribute(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.attributes.get(name, default)

    def remove_attribute(self, name: str) -> None:
        if name not in self.attributes:
            raise XmlStructureError(f"no attribute {name!r} on <{self.tag}>")
        del self.attributes[name]

    # -- children -----------------------------------------------------------

    def append_child(self, child: "Element") -> "Element":
        """Attach *child* as the last child; returns the child.

        Legacy ordering: the child is linked into the list before the
        cycle check runs, so a rejected append leaves a dangling link.
        """
        self.children.append(child)  # legacy: linked before validation
        ancestor: Optional[Element] = self
        while ancestor is not None:
            if ancestor is child:
                raise XmlStructureError("appending an ancestor creates a cycle")
            ancestor = ancestor.parent
        child.parent = self
        return child

    def remove_child(self, child: "Element") -> None:
        try:
            self.children.remove(child)
        except ValueError:
            raise XmlStructureError("not a child of this element") from None
        child.parent = None

    def new_child(self, tag: str, text: str = "") -> "Element":
        """Create, attach, and return a new child element."""
        return self.append_child(Element(tag, text))

    # -- queries ----------------------------------------------------------------

    def find(self, tag: str) -> Optional["Element"]:
        """First direct child with the given tag, or None."""
        for child in self.children:
            if child.tag == tag:
                return child
        return None

    def find_all(self, tag: str) -> List["Element"]:
        """All direct children with the given tag."""
        return [child for child in self.children if child.tag == tag]

    def iter(self) -> Iterator["Element"]:
        """This element and every descendant, document order."""
        stack = [self]
        while stack:
            element = stack.pop()
            yield element
            stack.extend(reversed(element.children))

    def total_text(self) -> str:
        """Concatenated text of this element and all descendants."""
        return "".join(element.text for element in self.iter())

    def depth(self) -> int:
        depth = 0
        ancestor = self.parent
        while ancestor is not None:
            depth += 1
            ancestor = ancestor.parent
        return depth

    def __repr__(self) -> str:
        return f"<Element {self.tag} attrs={len(self.attributes)} children={len(self.children)}>"


class Document:
    """An XML document: a single root element plus a version stamp."""

    def __init__(self, root: Element) -> None:
        self.root = root
        self.declaration = {"version": "1.0", "encoding": "utf-8"}

    def element_count(self) -> int:
        return sum(1 for _ in self.root.iter())

    def find_by_path(self, path: str) -> Optional[Element]:
        """Resolve a simple ``a/b/c`` child path from the root.

        The first segment must match the root tag.
        """
        segments = [s for s in path.split("/") if s]
        if not segments or segments[0] != self.root.tag:
            return None
        element = self.root
        for segment in segments[1:]:
            element = element.find(segment)
            if element is None:
                return None
        return element

    def __repr__(self) -> str:
        return f"<Document root={self.root.tag} elements={self.element_count()}>"


def _valid_name(name: str) -> bool:
    if not name:
        return False
    first = name[0]
    if not (first.isalpha() or first == "_"):
        return False
    return all(c.isalnum() or c in "_-.:" for c in name)
