"""A small well-formedness-checking XML parser.

Supports elements, attributes, text content, self-closing tags, comments,
processing declarations, and the five predefined entities.  No DTDs,
namespaces, or CDATA — the Self\\* applications only need plain element
trees.
"""

from __future__ import annotations

from typing import Optional

from .dom import Document, Element
from .errors import XmlSyntaxError

__all__ = ["XmlParser", "parse_document"]

_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}


class XmlParser:
    """Parses one document string (single use)."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.position = 0

    # -- plumbing ----------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Optional[str]:
        index = self.position + ahead
        if index < len(self.text):
            return self.text[index]
        return None

    def _advance(self, count: int = 1) -> None:
        self.position += count

    def _error(self, message: str) -> XmlSyntaxError:
        return XmlSyntaxError(message, self.position)

    def _skip_whitespace(self) -> None:
        while (c := self._peek()) is not None and c.isspace():
            self._advance()

    def _starts_with(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.position)

    # -- grammar -------------------------------------------------------------

    def parse(self) -> Document:
        """Parse the whole text into a Document."""
        self._skip_whitespace()
        self._skip_prolog()
        root = self._parse_element()
        self._skip_whitespace()
        self._skip_comments()
        if self.position != len(self.text):
            raise self._error("content after the root element")
        return Document(root)

    def _skip_prolog(self) -> None:
        while True:
            self._skip_whitespace()
            if self._starts_with("<?"):
                end = self.text.find("?>", self.position)
                if end < 0:
                    raise self._error("unterminated declaration")
                self.position = end + 2
            elif self._starts_with("<!--"):
                self._skip_one_comment()
            else:
                return

    def _skip_comments(self) -> None:
        while self._starts_with("<!--"):
            self._skip_one_comment()
            self._skip_whitespace()

    def _skip_one_comment(self) -> None:
        end = self.text.find("-->", self.position)
        if end < 0:
            raise self._error("unterminated comment")
        self.position = end + 3

    def _parse_element(self) -> Element:
        if self._peek() != "<":
            raise self._error("expected '<'")
        self._advance()
        tag = self._parse_name()
        element = Element(tag)
        self._parse_attributes(element)
        self._skip_whitespace()
        if self._starts_with("/>"):
            self._advance(2)
            return element
        if self._peek() != ">":
            raise self._error("expected '>'")
        self._advance()
        self._parse_content(element)
        self._expect_closing_tag(tag)
        return element

    def _parse_attributes(self, element: Element) -> None:
        while True:
            self._skip_whitespace()
            c = self._peek()
            if c is None:
                raise self._error("unterminated start tag")
            if c in (">", "/"):
                return
            name = self._parse_name()
            self._skip_whitespace()
            if self._peek() != "=":
                raise self._error("expected '=' after attribute name")
            self._advance()
            self._skip_whitespace()
            element.set_attribute(name, self._parse_quoted())

    def _parse_quoted(self) -> str:
        quote = self._peek()
        if quote not in ('"', "'"):
            raise self._error("expected a quoted attribute value")
        self._advance()
        chars = []
        while True:
            c = self._peek()
            if c is None:
                raise self._error("unterminated attribute value")
            if c == quote:
                self._advance()
                return "".join(chars)
            if c == "&":
                chars.append(self._parse_entity())
            else:
                chars.append(c)
                self._advance()

    def _parse_content(self, element: Element) -> None:
        text_parts = []
        while True:
            c = self._peek()
            if c is None:
                raise self._error(f"unterminated element <{element.tag}>")
            if c == "<":
                if self._starts_with("<!--"):
                    self._skip_one_comment()
                    continue
                if self._starts_with("<![CDATA["):
                    text_parts.append(self._parse_cdata())
                    continue
                if self._starts_with("</"):
                    element.text = "".join(text_parts).strip()
                    return
                element.append_child(self._parse_element())
            elif c == "&":
                text_parts.append(self._parse_entity())
            else:
                text_parts.append(c)
                self._advance()

    def _expect_closing_tag(self, tag: str) -> None:
        if not self._starts_with("</"):
            raise self._error(f"expected closing tag for <{tag}>")
        self._advance(2)
        closing = self._parse_name()
        if closing != tag:
            raise self._error(
                f"mismatched closing tag </{closing}> for <{tag}>"
            )
        self._skip_whitespace()
        if self._peek() != ">":
            raise self._error("expected '>' in closing tag")
        self._advance()

    def _parse_name(self) -> str:
        start = self.position
        c = self._peek()
        if c is None or not (c.isalpha() or c == "_"):
            raise self._error("expected a name")
        while (c := self._peek()) is not None and (c.isalnum() or c in "_-.:"):
            self._advance()
        return self.text[start : self.position]

    def _parse_cdata(self) -> str:
        """``<![CDATA[ ... ]]>``: literal text, no entity processing."""
        start = self.position
        self._advance(len("<![CDATA["))
        end = self.text.find("]]>", self.position)
        if end < 0:
            raise XmlSyntaxError("unterminated CDATA section", start)
        content = self.text[self.position : end]
        self.position = end + 3
        return content

    def _parse_entity(self) -> str:
        if self._peek() != "&":
            raise self._error("expected '&'")
        end = self.text.find(";", self.position)
        if end < 0:
            raise self._error("unterminated entity")
        name = self.text[self.position + 1 : end]
        if name not in _ENTITIES:
            raise self._error(f"unknown entity &{name};")
        self.position = end + 1
        return _ENTITIES[name]


def parse_document(text: str) -> Document:
    """Parse *text*; return the Document."""
    return XmlParser(text).parse()
