"""Serialization of DOM trees back to XML text."""

from __future__ import annotations

from typing import List

from .dom import Document, Element

__all__ = ["XmlWriter", "write_document"]

_ESCAPES = [
    ("&", "&amp;"),
    ("<", "&lt;"),
    (">", "&gt;"),
]
_ATTR_ESCAPES = _ESCAPES + [('"', "&quot;")]


def _escape_text(text: str) -> str:
    for raw, escaped in _ESCAPES:
        text = text.replace(raw, escaped)
    return text


def _escape_attr(text: str) -> str:
    for raw, escaped in _ATTR_ESCAPES:
        text = text.replace(raw, escaped)
    return text


class XmlWriter:
    """Serializes documents, optionally pretty-printed.

    The writer accumulates output in an internal buffer across calls —
    mutable state that makes serialization methods detection subjects.
    """

    def __init__(self, indent: int = 0) -> None:
        self.indent = indent
        self._pieces: List[str] = []

    def write(self, document: Document) -> str:
        """Serialize *document*; return the XML text."""
        self._pieces = []
        declaration = document.declaration
        self._pieces.append(
            f'<?xml version="{declaration["version"]}" '
            f'encoding="{declaration["encoding"]}"?>'
        )
        if self.indent:
            self._pieces.append("\n")
        self._write_element(document.root, 0)
        return "".join(self._pieces)

    def write_fragment(self, element: Element) -> str:
        """Serialize a single element subtree without a declaration."""
        self._pieces = []
        self._write_element(element, 0)
        return "".join(self._pieces)

    def _write_element(self, element: Element, depth: int) -> None:
        pad = " " * (self.indent * depth) if self.indent else ""
        newline = "\n" if self.indent else ""
        attrs = "".join(
            f' {name}="{_escape_attr(value)}"'
            for name, value in element.attributes.items()
        )
        if not element.children and not element.text:
            self._pieces.append(f"{pad}<{element.tag}{attrs}/>{newline}")
            return
        self._pieces.append(f"{pad}<{element.tag}{attrs}>")
        if element.text:
            self._pieces.append(_escape_text(element.text))
        if element.children:
            self._pieces.append(newline)
            for child in element.children:
                self._write_element(child, depth + 1)
            self._pieces.append(pad)
        self._pieces.append(f"</{element.tag}>{newline}")


def write_document(document: Document, indent: int = 0) -> str:
    """Serialize *document* with an optional pretty-print indent."""
    return XmlWriter(indent).write(document)
