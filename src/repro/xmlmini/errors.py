"""Errors of the minimal XML substrate."""

from __future__ import annotations

__all__ = ["XmlError", "XmlSyntaxError", "XmlStructureError"]


class XmlError(Exception):
    """Base class of all XML errors."""


class XmlSyntaxError(XmlError):
    """The document text is not well-formed."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class XmlStructureError(XmlError):
    """A DOM operation violates document structure."""
