"""Minimal XML substrate: parser, DOM, and writer.

Stands in for the XML tooling the paper's Self\\* applications consume
(``xml2Ctcp``, ``xml2Cviasc``, ``xml2xml``).  Supports plain element
trees with attributes, text, comments, and the five predefined entities.
"""

from .dom import Document, Element
from .errors import XmlError, XmlStructureError, XmlSyntaxError
from .parser import XmlParser, parse_document
from .writer import XmlWriter, write_document

__all__ = [
    "Document",
    "Element",
    "XmlParser",
    "parse_document",
    "XmlWriter",
    "write_document",
    "XmlError",
    "XmlSyntaxError",
    "XmlStructureError",
]
