"""Red-black tree (``RBTree``): a balanced ordered bag of elements.

A CLRS-style red-black tree with parent pointers and a per-tree NIL
sentinel.  Rebalancing runs through instrumented helper methods
(rotations, fixups), so the injection campaign can interrupt an insertion
or deletion *between* structural steps — the situation where a half
rebalanced tree is reachable from the caller and rollback genuinely
matters.  ``check_implementation`` verifies all four red-black invariants
and is used heavily by the property-based tests.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional

from repro.core.exceptions import throws

from .base import UpdatableCollection
from .errors import (
    CorruptedStateError,
    EmptyCollectionError,
    NoSuchElementError,
)

__all__ = ["RBCell", "RBTree", "RED", "BLACK"]

RED = True
BLACK = False

#: Three-way comparator: negative, zero, positive like ``cmp``.
Comparator = Callable[[Any, Any], int]


def default_comparator(a: Any, b: Any) -> int:
    """Natural ordering via ``<``/``>``."""
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


class RBCell:
    """One node of a red-black tree."""

    __slots__ = ("element", "left", "right", "parent", "color")

    def __init__(self, element: Any) -> None:
        self.element = element
        self.left: Optional["RBCell"] = None
        self.right: Optional["RBCell"] = None
        self.parent: Optional["RBCell"] = None
        self.color = RED


class RBTree(UpdatableCollection):
    """An ordered bag of elements balanced as a red-black tree."""

    def __init__(self, comparator: Optional[Comparator] = None, screener=None):
        super().__init__(screener)
        self._compare = comparator or default_comparator
        nil = RBCell(None)
        nil.color = BLACK
        nil.left = nil
        nil.right = nil
        nil.parent = nil
        self._nil = nil
        self._root = nil

    # -- queries ---------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        """In-order traversal (ascending), iterative to bound stack use."""
        stack: List[RBCell] = []
        cell = self._root
        while stack or cell is not self._nil:
            while cell is not self._nil:
                stack.append(cell)
                cell = cell.left
            cell = stack.pop()
            yield cell.element
            cell = cell.right

    def contains(self, element: Any) -> bool:
        return self._find(element) is not self._nil

    @throws(EmptyCollectionError)
    def minimum(self) -> Any:
        if self._root is self._nil:
            raise EmptyCollectionError("minimum() on empty tree")
        return self._subtree_min(self._root).element

    @throws(EmptyCollectionError)
    def maximum(self) -> Any:
        if self._root is self._nil:
            raise EmptyCollectionError("maximum() on empty tree")
        cell = self._root
        while cell.right is not self._nil:
            cell = cell.right
        return cell.element

    def height(self) -> int:
        """Length of the longest root-to-leaf path (0 for empty)."""
        best = 0
        stack = [(self._root, 0)]
        while stack:
            cell, depth = stack.pop()
            if cell is self._nil:
                best = max(best, depth)
                continue
            stack.append((cell.left, depth + 1))
            stack.append((cell.right, depth + 1))
        return best

    # -- updates -----------------------------------------------------------

    def insert(self, element: Any) -> None:
        """Insert an element (duplicates allowed, they lean left).

        Legacy ordering: the count is bumped before the cell allocation
        and the fixup — both fallible — run.
        """
        self._check_element(element)
        self._count += 1  # legacy: counted before the fallible steps
        cell = RBCell(element)
        cell.left = self._nil
        cell.right = self._nil
        parent = self._nil
        walk = self._root
        while walk is not self._nil:
            parent = walk
            if self._compare(element, walk.element) <= 0:
                walk = walk.left
            else:
                walk = walk.right
        cell.parent = parent
        if parent is self._nil:
            self._root = cell
        elif self._compare(element, parent.element) <= 0:
            parent.left = cell
        else:
            parent.right = cell
        self._insert_fixup(cell)
        self._bump_version()

    @throws(NoSuchElementError)
    def remove(self, element: Any) -> None:
        """Remove one occurrence of *element* (safe ordering up front)."""
        cell = self._find(element)
        if cell is self._nil:
            raise NoSuchElementError(f"{element!r} not in tree")
        self._delete_cell(cell)
        self._count -= 1
        self._bump_version()

    @throws(EmptyCollectionError)
    def take_minimum(self) -> Any:
        """Remove and return the smallest element.

        Legacy ordering: the count is decremented before the structural
        deletion (the fallible fixup path).
        """
        if self._root is self._nil:
            raise EmptyCollectionError("take_minimum() on empty tree")
        self._count -= 1  # legacy: decremented first
        cell = self._subtree_min(self._root)
        self._delete_cell(cell)
        self._bump_version()
        return cell.element

    def extend(self, elements) -> None:
        """Insert every element (partial progress on failure: pure)."""
        for element in elements:
            self.insert(element)

    def clear(self) -> None:
        self._root = self._nil
        self._count = 0
        self._bump_version()

    # -- search helpers ------------------------------------------------------

    def _find(self, element: Any) -> RBCell:
        cell = self._root
        while cell is not self._nil:
            order = self._compare(element, cell.element)
            if order == 0:
                return cell
            cell = cell.left if order < 0 else cell.right
        return self._nil

    def _subtree_min(self, cell: RBCell) -> RBCell:
        while cell.left is not self._nil:
            cell = cell.left
        return cell

    # -- structural helpers ----------------------------------------------------

    def _rotate_left(self, pivot: RBCell) -> None:
        """Left rotation around *pivot* (pivot.right becomes its parent)."""
        riser = pivot.right
        pivot.right = riser.left
        if riser.left is not self._nil:
            riser.left.parent = pivot
        riser.parent = pivot.parent
        if pivot.parent is self._nil:
            self._root = riser
        elif pivot is pivot.parent.left:
            pivot.parent.left = riser
        else:
            pivot.parent.right = riser
        riser.left = pivot
        pivot.parent = riser

    def _rotate_right(self, pivot: RBCell) -> None:
        """Right rotation around *pivot* (mirror of :meth:`_rotate_left`)."""
        riser = pivot.left
        pivot.left = riser.right
        if riser.right is not self._nil:
            riser.right.parent = pivot
        riser.parent = pivot.parent
        if pivot.parent is self._nil:
            self._root = riser
        elif pivot is pivot.parent.right:
            pivot.parent.right = riser
        else:
            pivot.parent.left = riser
        riser.right = pivot
        pivot.parent = riser

    def _insert_fixup(self, cell: RBCell) -> None:
        """Restore red-black invariants after inserting a red *cell*."""
        while cell.parent.color == RED:
            grandparent = cell.parent.parent
            if cell.parent is grandparent.left:
                uncle = grandparent.right
                if uncle.color == RED:
                    cell.parent.color = BLACK
                    uncle.color = BLACK
                    grandparent.color = RED
                    cell = grandparent
                else:
                    if cell is cell.parent.right:
                        cell = cell.parent
                        self._rotate_left(cell)
                    cell.parent.color = BLACK
                    grandparent.color = RED
                    self._rotate_right(grandparent)
            else:
                uncle = grandparent.left
                if uncle.color == RED:
                    cell.parent.color = BLACK
                    uncle.color = BLACK
                    grandparent.color = RED
                    cell = grandparent
                else:
                    if cell is cell.parent.left:
                        cell = cell.parent
                        self._rotate_right(cell)
                    cell.parent.color = BLACK
                    grandparent.color = RED
                    self._rotate_left(grandparent)
        self._root.color = BLACK

    def _transplant(self, old: RBCell, new: RBCell) -> None:
        """Replace subtree *old* with subtree *new* in old's parent."""
        if old.parent is self._nil:
            self._root = new
        elif old is old.parent.left:
            old.parent.left = new
        else:
            old.parent.right = new
        new.parent = old.parent

    def _delete_cell(self, cell: RBCell) -> None:
        """CLRS red-black deletion of *cell*, then sentinel cleanup."""
        removed_color_holder = cell
        removed_color = cell.color
        if cell.left is self._nil:
            successor_child = cell.right
            self._transplant(cell, cell.right)
        elif cell.right is self._nil:
            successor_child = cell.left
            self._transplant(cell, cell.left)
        else:
            successor = self._subtree_min(cell.right)
            removed_color = successor.color
            successor_child = successor.right
            if successor.parent is cell:
                successor_child.parent = successor
            else:
                self._transplant(successor, successor.right)
                successor.right = cell.right
                successor.right.parent = successor
            self._transplant(cell, successor)
            successor.left = cell.left
            successor.left.parent = successor
            successor.color = cell.color
        if removed_color == BLACK:
            self._delete_fixup(successor_child)
        # detach the sentinel from whatever the fixup hung it on, so two
        # logically equal trees always have equal object graphs
        self._nil.parent = self._nil
        del removed_color_holder

    def _delete_fixup(self, cell: RBCell) -> None:
        """Restore invariants after removing a black cell."""
        while cell is not self._root and cell.color == BLACK:
            if cell is cell.parent.left:
                sibling = cell.parent.right
                if sibling.color == RED:
                    sibling.color = BLACK
                    cell.parent.color = RED
                    self._rotate_left(cell.parent)
                    sibling = cell.parent.right
                if sibling.left.color == BLACK and sibling.right.color == BLACK:
                    sibling.color = RED
                    cell = cell.parent
                else:
                    if sibling.right.color == BLACK:
                        sibling.left.color = BLACK
                        sibling.color = RED
                        self._rotate_right(sibling)
                        sibling = cell.parent.right
                    sibling.color = cell.parent.color
                    cell.parent.color = BLACK
                    sibling.right.color = BLACK
                    self._rotate_left(cell.parent)
                    cell = self._root
            else:
                sibling = cell.parent.left
                if sibling.color == RED:
                    sibling.color = BLACK
                    cell.parent.color = RED
                    self._rotate_right(cell.parent)
                    sibling = cell.parent.left
                if sibling.right.color == BLACK and sibling.left.color == BLACK:
                    sibling.color = RED
                    cell = cell.parent
                else:
                    if sibling.left.color == BLACK:
                        sibling.right.color = BLACK
                        sibling.color = RED
                        self._rotate_left(sibling)
                        sibling = cell.parent.left
                    sibling.color = cell.parent.color
                    cell.parent.color = BLACK
                    sibling.left.color = BLACK
                    self._rotate_right(cell.parent)
                    cell = self._root
        cell.color = BLACK

    # -- invariants ------------------------------------------------------------

    def check_implementation(self) -> None:
        """Verify the four red-black invariants, ordering, and the count."""
        if self._root.color != BLACK and self._root is not self._nil:
            raise CorruptedStateError("root is not black")
        count = self._check_subtree(self._root, None, None)[1]
        if count != self._count:
            raise CorruptedStateError(
                f"count {self._count} but {count} reachable cells"
            )

    def _check_subtree(self, cell, low, high):
        """Return (black_height, node_count) of the subtree at *cell*."""
        if cell is self._nil:
            return (1, 0)
        element = cell.element
        if low is not None and self._compare(element, low) < 0:
            raise CorruptedStateError("ordering violated (too small)")
        if high is not None and self._compare(element, high) > 0:
            raise CorruptedStateError("ordering violated (too large)")
        if cell.color == RED:
            if cell.left.color == RED or cell.right.color == RED:
                raise CorruptedStateError("red cell with red child")
        for child in (cell.left, cell.right):
            if child is not self._nil and child.parent is not cell:
                raise CorruptedStateError("broken parent pointer")
        left_black, left_count = self._check_subtree(cell.left, low, element)
        right_black, right_count = self._check_subtree(cell.right, element, high)
        if left_black != right_black:
            raise CorruptedStateError("black heights differ")
        black = left_black + (1 if cell.color == BLACK else 0)
        return (black, left_count + right_count + 1)
