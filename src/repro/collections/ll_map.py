"""Association-list map (``LLMap``): a linked chain of key/value pairs.

The simplest map in the library; used by the paper's campaign as a small
subject whose methods call into the shared pair cells.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.core.exceptions import throws

from .base import UpdatableCollection
from .errors import (
    CorruptedStateError,
    IllegalElementError,
    NoSuchElementError,
)
from .hashed_map import LLPair

__all__ = ["LLMap"]


class LLMap(UpdatableCollection):
    """A map backed by an unordered singly-linked list of pairs."""

    def __init__(self, screener=None) -> None:
        super().__init__(screener)
        self._head: Optional[LLPair] = None

    # -- queries ---------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        pair = self._head
        while pair is not None:
            yield pair.key
            pair = pair.next

    def keys(self) -> List[Any]:
        return list(self)

    def values(self) -> List[Any]:
        return [value for _, value in self.items()]

    def items(self) -> List[Tuple[Any, Any]]:
        result = []
        pair = self._head
        while pair is not None:
            result.append((pair.key, pair.value))
            pair = pair.next
        return result

    def contains_key(self, key: Any) -> bool:
        return self._find_pair(key) is not None

    @throws(NoSuchElementError)
    def get(self, key: Any) -> Any:
        pair = self._find_pair(key)
        if pair is None:
            raise NoSuchElementError(f"no mapping for {key!r}")
        return pair.value

    def get_or_default(self, key: Any, default: Any = None) -> Any:
        pair = self._find_pair(key)
        return default if pair is None else pair.value

    # -- updates -----------------------------------------------------------

    @throws(IllegalElementError)
    def put(self, key: Any, value: Any) -> Optional[Any]:
        """Insert or replace; return the previous value.

        Legacy ordering: on a fresh key the count is bumped before the
        pair allocation.
        """
        self._check_element(value)
        pair = self._find_pair(key)
        if pair is not None:
            old = pair.value
            pair.value = value
            self._bump_version()
            return old
        self._count += 1  # legacy: counted before the fallible allocation
        self._head = LLPair(key, value, self._head)
        self._bump_version()
        return None

    @throws(NoSuchElementError)
    def remove_key(self, key: Any) -> Any:
        """Remove a mapping; return its value (safe ordering)."""
        previous = None
        pair = self._head
        while pair is not None:
            if pair.key == key:
                if previous is None:
                    self._head = pair.next
                else:
                    previous.next = pair.next
                self._count -= 1
                self._bump_version()
                return pair.value
            previous = pair
            pair = pair.next
        raise NoSuchElementError(f"no mapping for {key!r}")

    @throws(IllegalElementError)
    def update(self, mapping) -> None:
        """Put every (key, value) (partial progress on failure: pure)."""
        for key, value in mapping.items():
            self.put(key, value)

    @throws(IllegalElementError)
    def replace_values(self, old: Any, new: Any) -> int:
        """Replace every value equal to *old* with *new*.

        Legacy ordering: the new value is screened only when the first
        occurrence is found, after earlier pairs may have been rewritten.
        """
        replaced = 0
        pair = self._head
        while pair is not None:
            if pair.value == old:
                self._check_element(new)  # legacy: screened mid-walk
                pair.value = new
                replaced += 1
            pair = pair.next
        if replaced:
            self._bump_version()
        return replaced

    def clear(self) -> None:
        self._head = None
        self._count = 0
        self._bump_version()

    # -- internals -----------------------------------------------------------

    def _find_pair(self, key: Any) -> Optional[LLPair]:
        pair = self._head
        while pair is not None:
            if pair.key == key:
                return pair
            pair = pair.next
        return None

    def check_implementation(self) -> None:
        walked = 0
        seen_keys = []
        pair = self._head
        while pair is not None:
            walked += 1
            if walked > self._count:
                raise CorruptedStateError("chain longer than count")
            if pair.key in seen_keys:
                raise CorruptedStateError(f"duplicate key {pair.key!r}")
            seen_keys.append(pair.key)
            pair = pair.next
        if walked != self._count:
            raise CorruptedStateError(
                f"count {self._count} but {walked} reachable pairs"
            )
