"""Chained hash map (``HashedMap``): bucket array of linked pair chains.

The resize path relinks existing pairs into a fresh bucket array and
consults the (instrumented) ``_bucket_index`` helper per pair — a failure
mid-relink therefore leaves the map half-migrated, which is precisely the
kind of rarely-executed, failure non-atomic code path the paper's
injection campaign is designed to reach (Section 6.1 notes that the
problematic methods are the infrequently called ones).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.core.exceptions import throws

from .base import UpdatableCollection
from .errors import (
    CorruptedStateError,
    IllegalElementError,
    NoSuchElementError,
)

__all__ = ["LLPair", "HashedMap"]

_DEFAULT_CAPACITY = 8
_LOAD_FACTOR = 0.75


class LLPair:
    """A key/value pair in a bucket chain."""

    __slots__ = ("key", "value", "next")

    def __init__(self, key: Any, value: Any, next_pair: Optional["LLPair"] = None):
        self.key = key
        self.value = value
        self.next = next_pair


class HashedMap(UpdatableCollection):
    """A hash map with separate chaining."""

    def __init__(self, capacity: int = _DEFAULT_CAPACITY, screener=None) -> None:
        super().__init__(screener)
        self._buckets: List[Optional[LLPair]] = [None] * max(capacity, 1)

    # -- queries ---------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        return iter(self.keys())

    def keys(self) -> List[Any]:
        return [key for key, _ in self.items()]

    def values(self) -> List[Any]:
        return [value for _, value in self.items()]

    def items(self) -> List[Tuple[Any, Any]]:
        result = []
        for chain in self._buckets:
            pair = chain
            while pair is not None:
                result.append((pair.key, pair.value))
                pair = pair.next
        return result

    def contains_key(self, key: Any) -> bool:
        return self._find_pair(key) is not None

    @throws(NoSuchElementError)
    def get(self, key: Any) -> Any:
        pair = self._find_pair(key)
        if pair is None:
            raise NoSuchElementError(f"no mapping for {key!r}")
        return pair.value

    def get_or_default(self, key: Any, default: Any = None) -> Any:
        pair = self._find_pair(key)
        return default if pair is None else pair.value

    # -- updates -----------------------------------------------------------

    @throws(IllegalElementError)
    def put(self, key: Any, value: Any) -> Optional[Any]:
        """Insert or replace a mapping; return the previous value.

        Legacy ordering: on a fresh key the count is bumped before the
        pair is allocated and before any needed resize, so a failure in
        either step leaves the size wrong — pure failure non-atomic.
        """
        self._check_element(value)
        pair = self._find_pair(key)
        if pair is not None:
            old = pair.value
            pair.value = value
            self._bump_version()
            return old
        self._count += 1  # legacy: counted before the fallible steps
        if self._count > _LOAD_FACTOR * len(self._buckets):
            self._grow()
        index = self._bucket_index(key, len(self._buckets))
        self._buckets[index] = LLPair(key, value, self._buckets[index])
        self._bump_version()
        return None

    @throws(NoSuchElementError)
    def remove_key(self, key: Any) -> Any:
        """Remove a mapping; return its value (safe ordering)."""
        index = self._bucket_index(key, len(self._buckets))
        previous = None
        pair = self._buckets[index]
        while pair is not None:
            if pair.key == key:
                if previous is None:
                    self._buckets[index] = pair.next
                else:
                    previous.next = pair.next
                self._count -= 1
                self._bump_version()
                return pair.value
            previous = pair
            pair = pair.next
        raise NoSuchElementError(f"no mapping for {key!r}")

    @throws(IllegalElementError)
    def update(self, mapping) -> None:
        """Put every (key, value) of *mapping* (partial progress: pure)."""
        for key, value in mapping.items():
            self.put(key, value)

    def clear(self) -> None:
        self._buckets = [None] * _DEFAULT_CAPACITY
        self._count = 0
        self._bump_version()

    # -- internals -----------------------------------------------------------

    def _find_pair(self, key: Any) -> Optional[LLPair]:
        index = self._bucket_index(key, len(self._buckets))
        pair = self._buckets[index]
        while pair is not None:
            if pair.key == key:
                return pair
            pair = pair.next
        return None

    def _bucket_index(self, key: Any, bucket_count: int) -> int:
        """Bucket of *key* in a table of *bucket_count* buckets."""
        return hash(key) % bucket_count

    def _grow(self) -> None:
        """Double the bucket array, relinking existing pairs.

        The new bucket array is installed *before* the pairs are migrated
        (legacy ordering): a failure mid-migration loses the un-migrated
        chains — failure non-atomic, and only reachable on the rare
        resize path.
        """
        old_buckets = self._buckets
        self._buckets = [None] * (len(old_buckets) * 2)  # legacy: install first
        for chain in old_buckets:
            pair = chain
            while pair is not None:
                following = pair.next
                index = self._bucket_index(pair.key, len(self._buckets))
                pair.next = self._buckets[index]
                self._buckets[index] = pair
                pair = following

    def check_implementation(self) -> None:
        walked = 0
        for index, chain in enumerate(self._buckets):
            pair = chain
            while pair is not None:
                walked += 1
                home = self._bucket_index(pair.key, len(self._buckets))
                if home != index:
                    raise CorruptedStateError(
                        f"key {pair.key!r} in bucket {index}, belongs in {home}"
                    )
                pair = pair.next
        if walked != self._count:
            raise CorruptedStateError(
                f"count {self._count} but {walked} reachable pairs"
            )
