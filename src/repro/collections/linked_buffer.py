"""Chunked character buffer (``LinkedBuffer``).

Stores text as a chain of fixed-size chunks, like the Java original used
for incremental I/O.  Appends that cross a chunk boundary allocate new
chunks mid-operation — injection points in the middle of a logical write.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.exceptions import throws

from .base import UpdatableCollection
from .errors import (
    CorruptedStateError,
    EmptyCollectionError,
    IllegalElementError,
    NoSuchElementError,
)

__all__ = ["BufferChunk", "LinkedBuffer"]

_CHUNK_SIZE = 16


class BufferChunk:
    """A fixed-capacity run of characters."""

    __slots__ = ("data", "used", "next")

    def __init__(self, capacity: int = _CHUNK_SIZE) -> None:
        self.data = [""] * capacity
        self.used = 0
        self.next: Optional["BufferChunk"] = None

    def room(self) -> int:
        return len(self.data) - self.used

    def put(self, char: str) -> None:
        self.data[self.used] = char
        self.used += 1

    def text(self) -> str:
        return "".join(self.data[: self.used])


class LinkedBuffer(UpdatableCollection):
    """An append-mostly character buffer backed by chained chunks."""

    def __init__(self, chunk_size: int = _CHUNK_SIZE, screener=None) -> None:
        super().__init__(screener)
        self._chunk_size = max(chunk_size, 1)
        self._head: Optional[BufferChunk] = None
        self._tail: Optional[BufferChunk] = None

    # -- queries ---------------------------------------------------------

    def __iter__(self) -> Iterator[str]:
        chunk = self._head
        while chunk is not None:
            for index in range(chunk.used):
                yield chunk.data[index]
            chunk = chunk.next

    def text(self) -> str:
        """The whole buffer as one string."""
        return "".join(self)

    @throws(EmptyCollectionError)
    def peek(self) -> str:
        """The first character without removing it."""
        if self._head is None or self._head.used == 0:
            raise EmptyCollectionError("peek() on empty buffer")
        return self._head.data[0]

    def chunk_count(self) -> int:
        count = 0
        chunk = self._head
        while chunk is not None:
            count += 1
            chunk = chunk.next
        return count

    # -- updates -----------------------------------------------------------

    @throws(IllegalElementError)
    def append_char(self, char: str) -> None:
        """Append one character.

        Legacy ordering: the length is counted before a new chunk may
        need to be allocated (the fallible step).
        """
        if len(char) != 1:
            raise IllegalElementError("append_char() takes a single character")
        self._check_element(char)
        self._count += 1  # legacy: counted before the fallible allocation
        if self._tail is None or self._tail.room() == 0:
            self._add_chunk()
        self._tail.put(char)
        self._bump_version()

    @throws(IllegalElementError)
    def append_text(self, text: str) -> None:
        """Append a string character by character (partial progress: pure)."""
        for char in text:
            self.append_char(char)

    @throws(EmptyCollectionError)
    def take_char(self) -> str:
        """Remove and return the first character (safe ordering)."""
        if self._head is None or self._head.used == 0:
            raise EmptyCollectionError("take_char() on empty buffer")
        char = self._head.data[0]
        self._head.data[: self._head.used - 1] = self._head.data[1 : self._head.used]
        self._head.used -= 1
        if self._head.used == 0:
            self._head = self._head.next
            if self._head is None:
                self._tail = None
        self._count -= 1
        self._bump_version()
        return char

    @throws(NoSuchElementError)
    def take_text(self, length: int) -> str:
        """Remove and return the first *length* characters.

        Legacy ordering: characters are taken one by one, so failing past
        the buffer's end loses the characters already taken.
        """
        taken = []
        for _ in range(length):
            if self._count == 0:  # legacy: checked per character, not up front
                raise NoSuchElementError(
                    f"requested {length} characters, buffer exhausted"
                )
            taken.append(self.take_char())
        return "".join(taken)

    def compact(self) -> None:
        """Re-pack all characters into the fewest chunks (safe ordering).

        A fully new chain is built before a single pointer swap installs
        it, so a failure mid-build leaves the buffer untouched.
        """
        text = self.text()
        head: Optional[BufferChunk] = None
        tail: Optional[BufferChunk] = None
        for start in range(0, len(text), self._chunk_size):
            chunk = BufferChunk(self._chunk_size)
            for char in text[start : start + self._chunk_size]:
                chunk.put(char)
            if head is None:
                head = chunk
            else:
                tail.next = chunk
            tail = chunk
        self._head = head
        self._tail = tail
        self._bump_version()

    def clear(self) -> None:
        self._head = None
        self._tail = None
        self._count = 0
        self._bump_version()

    # -- internals -----------------------------------------------------------

    def _add_chunk(self) -> None:
        chunk = BufferChunk(self._chunk_size)
        if self._tail is None:
            self._head = chunk
        else:
            self._tail.next = chunk
        self._tail = chunk

    def check_implementation(self) -> None:
        total = 0
        chunk = self._head
        last = None
        while chunk is not None:
            if chunk.used > len(chunk.data):
                raise CorruptedStateError("chunk used beyond capacity")
            total += chunk.used
            last = chunk
            chunk = chunk.next
        if total != self._count:
            raise CorruptedStateError(
                f"count {self._count} but {total} stored characters"
            )
        if last is not self._tail:
            raise CorruptedStateError("tail pointer does not match chain")
