"""Exception hierarchy of the container library.

Mirrors the checked/unchecked split of the Java collections the paper
evaluates: operations declare the specific errors they may raise (via
:func:`repro.core.exceptions.throws`), while any method may additionally
fail with a generic runtime error injected by the detection phase.
"""

from __future__ import annotations

__all__ = [
    "CollectionsError",
    "NoSuchElementError",
    "EmptyCollectionError",
    "CapacityError",
    "IllegalElementError",
    "CorruptedStateError",
    "CorruptedIterationError",
]


class CollectionsError(Exception):
    """Base class of all container-library errors."""


class NoSuchElementError(CollectionsError):
    """A requested element, key, or index does not exist."""


class EmptyCollectionError(NoSuchElementError):
    """An element was requested from an empty collection."""


class CapacityError(CollectionsError):
    """A bounded collection cannot grow any further."""


class IllegalElementError(CollectionsError):
    """An element violates the collection's element constraint."""


class CorruptedStateError(CollectionsError):
    """An internal consistency check failed."""


class CorruptedIterationError(CollectionsError):
    """The collection was modified while a fail-fast iterator was open."""
