"""Common container protocol, element screening, and version stamps.

Modeled on the interface layer of Doug Lea's ``collections`` package (the
paper's Java test subject): every updatable collection tracks a *version*
number bumped on successful mutation, supports an element *screener*
predicate, and exposes a ``check_implementation`` consistency probe used
by the test suites.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional

from repro.core.exceptions import exception_free

from .errors import CorruptedIterationError, IllegalElementError

__all__ = ["UpdatableCollection", "FailFastIterator", "ElementScreener"]

#: Predicate deciding whether an element may enter a collection.
ElementScreener = Callable[[Any], bool]


class UpdatableCollection:
    """Base class of every container in :mod:`repro.collections`.

    Subclasses must maintain ``_count`` and ``_version`` and implement
    :meth:`__iter__` plus :meth:`check_implementation`.
    """

    def __init__(self, screener: Optional[ElementScreener] = None) -> None:
        self._screener = screener
        self._count = 0
        self._version = 0

    # -- queries ---------------------------------------------------------

    @exception_free
    def size(self) -> int:
        """Number of elements currently held."""
        return self._count

    @exception_free
    def is_empty(self) -> bool:
        return self._count == 0

    @exception_free
    def version(self) -> int:
        """Mutation stamp: bumped by every successful update."""
        return self._version

    def can_include(self, element: Any) -> bool:
        """True if the element passes this collection's screener."""
        return self._screener is None or bool(self._screener(element))

    def contains(self, element: Any) -> bool:
        for item in self:
            if item == element:
                return True
        return False

    def occurrences_of(self, element: Any) -> int:
        return sum(1 for item in self if item == element)

    def to_list(self) -> List[Any]:
        """Elements in iteration order, as a plain list."""
        return list(self)

    def iterator(self) -> "FailFastIterator":
        """A fail-fast iterator: any mutation of the collection after the
        iterator is created makes its next step raise
        :class:`CorruptedIterationError` (the version-checked
        enumerations of the original Java library)."""
        return FailFastIterator(self)

    # -- helpers for subclasses ------------------------------------------

    def _check_element(self, element: Any) -> None:
        """Raise IllegalElementError if the screener rejects *element*."""
        if not self.can_include(element):
            raise IllegalElementError(f"screener rejected {element!r}")

    @exception_free
    def _bump_version(self) -> None:
        # a bare integer increment cannot raise: declared exception-free
        # so the policy layer discards injections placed here (§4.3)
        self._version += 1

    # -- contract ----------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        raise NotImplementedError

    def __len__(self) -> int:
        return self.size()

    def check_implementation(self) -> None:
        """Verify internal invariants; raise CorruptedStateError if broken."""
        raise NotImplementedError


class FailFastIterator:
    """Version-checked iteration over an :class:`UpdatableCollection`.

    Captures the collection's version stamp at creation; every step
    re-checks it, so a mutation performed mid-iteration — including one
    caused by an exception handler poking at the collection — surfaces
    immediately instead of yielding stale or skipped elements.
    """

    def __init__(self, collection: UpdatableCollection) -> None:
        self._collection = collection
        self._expected_version = collection.version()
        self._inner = iter(collection)
        self._consumed = 0

    def __iter__(self) -> "FailFastIterator":
        return self

    def __next__(self) -> Any:
        if self._collection.version() != self._expected_version:
            raise CorruptedIterationError(
                f"collection modified after {self._consumed} element(s) "
                "were yielded"
            )
        value = next(self._inner)
        self._consumed += 1
        return value

    @property
    def consumed(self) -> int:
        """Number of elements yielded so far."""
        return self._consumed
