"""Ordered map on a red-black tree (``RBMap``).

Pairs are stored in an :class:`~repro.collections.rb_tree.RBTree` ordered
by key.  Map operations therefore *call into* the tree's instrumented
methods — the textbook source of conditional failure non-atomicity: a
``put`` that fails because the underlying ``insert`` failed is atomic as
soon as the insert is masked (Definition 3).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.core.exceptions import throws

from .base import UpdatableCollection
from .errors import IllegalElementError, NoSuchElementError
from .rb_tree import Comparator, RBTree, default_comparator

__all__ = ["KVPair", "RBMap"]


class KVPair:
    """A key/value pair ordered by key."""

    __slots__ = ("key", "value")

    def __init__(self, key: Any, value: Any = None) -> None:
        self.key = key
        self.value = value


def _pair_comparator(compare_keys: Comparator) -> Comparator:
    def compare(a: KVPair, b: KVPair) -> int:
        return compare_keys(a.key, b.key)

    return compare


class RBMap(UpdatableCollection):
    """A sorted map with O(log n) operations."""

    def __init__(
        self,
        key_comparator: Optional[Comparator] = None,
        screener=None,
    ) -> None:
        super().__init__(screener)
        self._compare_keys = key_comparator or default_comparator
        self._tree = RBTree(_pair_comparator(self._compare_keys))

    # -- queries ---------------------------------------------------------

    def size(self) -> int:
        return self._tree.size()

    def is_empty(self) -> bool:
        return self._tree.is_empty()

    def __iter__(self) -> Iterator[Any]:
        for pair in self._tree:
            yield pair.key

    def keys(self) -> List[Any]:
        """All keys in ascending order."""
        return list(self)

    def values(self) -> List[Any]:
        return [pair.value for pair in self._tree]

    def items(self) -> List[Tuple[Any, Any]]:
        return [(pair.key, pair.value) for pair in self._tree]

    def contains_key(self, key: Any) -> bool:
        return self._find_pair(key) is not None

    @throws(NoSuchElementError)
    def get(self, key: Any) -> Any:
        pair = self._find_pair(key)
        if pair is None:
            raise NoSuchElementError(f"no mapping for {key!r}")
        return pair.value

    def get_or_default(self, key: Any, default: Any = None) -> Any:
        pair = self._find_pair(key)
        return default if pair is None else pair.value

    @throws(NoSuchElementError)
    def first_key(self) -> Any:
        """The smallest key."""
        if self.is_empty():
            raise NoSuchElementError("first_key() on empty map")
        return self._tree.minimum().key

    @throws(NoSuchElementError)
    def last_key(self) -> Any:
        """The largest key."""
        if self.is_empty():
            raise NoSuchElementError("last_key() on empty map")
        return self._tree.maximum().key

    # -- updates -----------------------------------------------------------

    @throws(IllegalElementError)
    def put(self, key: Any, value: Any) -> Optional[Any]:
        """Insert or replace a mapping; return the previous value.

        Conditionally failure non-atomic: all mutation is delegated to
        the tree, so masking the tree's methods makes ``put`` atomic.
        """
        self._check_element(value)
        pair = self._find_pair(key)
        if pair is not None:
            old = pair.value
            pair.value = value
            self._bump_version()
            return old
        self._tree.insert(KVPair(key, value))
        self._bump_version()
        return None

    @throws(NoSuchElementError)
    def remove_key(self, key: Any) -> Any:
        """Remove a mapping; return its value."""
        pair = self._find_pair(key)
        if pair is None:
            raise NoSuchElementError(f"no mapping for {key!r}")
        self._tree.remove(pair)
        self._bump_version()
        return pair.value

    @throws(IllegalElementError)
    def update(self, mapping) -> None:
        """Put every (key, value) (partial progress on failure: pure)."""
        for key, value in mapping.items():
            self.put(key, value)

    def clear(self) -> None:
        self._tree.clear()
        self._bump_version()

    # -- internals -----------------------------------------------------------

    def _find_pair(self, key: Any) -> Optional[KVPair]:
        probe = KVPair(key)
        cell = self._tree._find(probe)
        if cell is self._tree._nil:
            return None
        return cell.element

    def check_implementation(self) -> None:
        self._tree.check_implementation()
        keys = self.keys()
        for earlier, later in zip(keys, keys[1:]):
            if self._compare_keys(earlier, later) >= 0:
                from .errors import CorruptedStateError

                raise CorruptedStateError("keys not strictly ascending")
