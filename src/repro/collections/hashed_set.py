"""Open-addressing hash set (``HashedSet``): linear probing.

Uses tombstones for deletion.  The resize path re-probes every live
element through the instrumented ``_probe`` helper, creating injection
points in the middle of the migration.
"""

from __future__ import annotations

from typing import Any, Iterator, List

from repro.core.exceptions import throws

from .base import UpdatableCollection
from .errors import (
    CorruptedStateError,
    IllegalElementError,
    NoSuchElementError,
)

__all__ = ["HashedSet"]

_DEFAULT_CAPACITY = 8
_LOAD_FACTOR = 0.66


class _Tombstone:
    """Marks a slot whose element was deleted (probe chains continue)."""

    def __repr__(self) -> str:
        return "<deleted>"


_DELETED = _Tombstone()
_EMPTY = None


class HashedSet(UpdatableCollection):
    """A set with open addressing and linear probing."""

    def __init__(self, capacity: int = _DEFAULT_CAPACITY, screener=None) -> None:
        super().__init__(screener)
        self._slots: List[Any] = [_EMPTY] * max(capacity, 2)
        self._used = 0  # live elements + tombstones

    # -- queries ---------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        for slot in self._slots:
            if slot is not _EMPTY and slot is not _DELETED:
                yield slot

    def contains(self, element: Any) -> bool:
        return self._find_slot(element) >= 0

    def capacity(self) -> int:
        return len(self._slots)

    # -- updates -----------------------------------------------------------

    @throws(IllegalElementError)
    def add(self, element: Any) -> bool:
        """Add an element; return True if it was not already present.

        Legacy ordering: the count is bumped before the (fallible) resize
        and probe steps.
        """
        self._check_element(element)
        if self._find_slot(element) >= 0:
            return False
        self._count += 1  # legacy: counted before the fallible steps
        self._used += 1
        if self._used > _LOAD_FACTOR * len(self._slots):
            self._grow()
        index = self._probe(element, self._slots)
        self._slots[index] = element
        self._bump_version()
        return True

    @throws(NoSuchElementError)
    def remove(self, element: Any) -> None:
        """Remove an element, leaving a tombstone (safe ordering)."""
        index = self._find_slot(element)
        if index < 0:
            raise NoSuchElementError(f"{element!r} not in set")
        self._slots[index] = _DELETED
        self._count -= 1
        self._bump_version()

    def discard(self, element: Any) -> bool:
        """Remove if present; return True if an element was removed."""
        index = self._find_slot(element)
        if index < 0:
            return False
        self._slots[index] = _DELETED
        self._count -= 1
        self._bump_version()
        return True

    @throws(IllegalElementError)
    def union_update(self, elements) -> int:
        """Add every element (partial progress on failure: pure)."""
        added = 0
        for element in elements:
            if self.add(element):
                added += 1
        return added

    def intersection_update(self, elements) -> int:
        """Keep only elements present in *elements* (safe per removal)."""
        keep = list(elements)
        removed = 0
        for element in self.to_list():
            if element not in keep:
                self.discard(element)
                removed += 1
        return removed

    def clear(self) -> None:
        self._slots = [_EMPTY] * _DEFAULT_CAPACITY
        self._count = 0
        self._used = 0
        self._bump_version()

    # -- internals -----------------------------------------------------------

    def _find_slot(self, element: Any) -> int:
        """Index of *element*'s slot, or -1 if absent."""
        length = len(self._slots)
        index = hash(element) % length
        for _ in range(length):
            slot = self._slots[index]
            if slot is _EMPTY:
                return -1
            if slot is not _DELETED and slot == element:
                return index
            index = (index + 1) % length
        return -1

    def _probe(self, element: Any, slots: List[Any]) -> int:
        """First free slot for *element* in *slots* (linear probing)."""
        length = len(slots)
        index = hash(element) % length
        for _ in range(length):
            slot = slots[index]
            if slot is _EMPTY or slot is _DELETED:
                return index
            index = (index + 1) % length
        raise CorruptedStateError("probe found no free slot")

    def _grow(self) -> None:
        """Double the table, dropping tombstones.

        Legacy ordering: the new table is installed before the elements
        are migrated, so a failure mid-migration loses elements.
        """
        old_slots = self._slots
        self._slots = [_EMPTY] * (len(old_slots) * 2)  # legacy: install first
        self._used = self._count
        for slot in old_slots:
            if slot is not _EMPTY and slot is not _DELETED:
                index = self._probe(slot, self._slots)
                self._slots[index] = slot

    def check_implementation(self) -> None:
        live = sum(
            1
            for slot in self._slots
            if slot is not _EMPTY and slot is not _DELETED
        )
        if live != self._count:
            raise CorruptedStateError(
                f"count {self._count} but {live} live slots"
            )
        for element in self:
            if self._find_slot(element) < 0:
                raise CorruptedStateError(
                    f"{element!r} stored but unreachable by probing"
                )
