"""Growable array with explicit capacity management (``Dynarray``).

Backed by a fixed-size slot buffer that is reallocated on demand, like
the Java original.  The growth path runs through helper methods, which is
exactly what makes callers conditionally failure non-atomic: a failure
inside ``_ensure_capacity`` interrupts an ``append`` whose bookkeeping
has already been updated (legacy ordering).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List

from repro.core.exceptions import throws

from .base import UpdatableCollection
from .errors import (
    CapacityError,
    CorruptedStateError,
    IllegalElementError,
    NoSuchElementError,
)

__all__ = ["Dynarray"]

_DEFAULT_CAPACITY = 8


class Dynarray(UpdatableCollection):
    """A growable array of elements with amortized O(1) append."""

    def __init__(self, capacity: int = _DEFAULT_CAPACITY, screener=None) -> None:
        super().__init__(screener)
        if capacity < 1:
            raise CapacityError("initial capacity must be >= 1")
        self._data: List[Any] = [None] * capacity

    # -- queries ---------------------------------------------------------

    def capacity(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Any]:
        for index in range(self._count):
            yield self._data[index]

    @throws(NoSuchElementError)
    def get_at(self, index: int) -> Any:
        self._check_index(index)
        return self._data[index]

    def index_of(self, element: Any) -> int:
        for index in range(self._count):
            if self._data[index] == element:
                return index
        return -1

    # -- updates -----------------------------------------------------------

    @throws(IllegalElementError, CapacityError)
    def append(self, element: Any) -> None:
        """Append an element.

        Legacy ordering: the count is bumped before the (fallible) growth
        step, so an interrupted growth leaves ``size() == count`` pointing
        one past the populated region — pure failure non-atomic.
        """
        self._check_element(element)
        self._count += 1  # legacy: counted before capacity is ensured
        self._ensure_capacity(self._count)
        self._data[self._count - 1] = element
        self._bump_version()

    @throws(NoSuchElementError, IllegalElementError, CapacityError)
    def insert_at(self, index: int, element: Any) -> None:
        """Insert at *index*, shifting the tail right.

        Legacy ordering: the tail is shifted before the element is
        screened, so a rejected element leaves a duplicated slot.
        """
        if index != self._count:
            self._check_index(index)
        self._ensure_capacity(self._count + 1)
        for position in range(self._count, index, -1):  # legacy: shift first
            self._data[position] = self._data[position - 1]
        self._check_element(element)  # legacy: screened after the shift
        self._data[index] = element
        self._count += 1
        self._bump_version()

    @throws(NoSuchElementError)
    def remove_at(self, index: int) -> Any:
        """Remove the element at *index*, shifting the tail left (safe)."""
        self._check_index(index)
        element = self._data[index]
        for position in range(index, self._count - 1):
            self._data[position] = self._data[position + 1]
        self._data[self._count - 1] = None
        self._count -= 1
        self._bump_version()
        return element

    @throws(NoSuchElementError, IllegalElementError)
    def replace_at(self, index: int, element: Any) -> Any:
        self._check_index(index)
        self._check_element(element)
        old = self._data[index]
        self._data[index] = element
        self._bump_version()
        return old

    @throws(IllegalElementError, CapacityError)
    def extend(self, elements: Iterable[Any]) -> None:
        """Append every element (partial progress on failure: pure)."""
        for element in elements:
            self.append(element)

    def remove_element(self, element: Any) -> bool:
        index = self.index_of(element)
        if index < 0:
            return False
        self.remove_at(index)
        return True

    def clear(self) -> None:
        for index in range(self._count):
            self._data[index] = None
        self._count = 0
        self._bump_version()

    @throws(CapacityError)
    def trim_to_size(self) -> None:
        """Shrink the backing buffer to exactly the current count."""
        self._data = self._data[: max(self._count, 1)]
        self._bump_version()

    def sort(self) -> None:
        """In-place insertion sort (stable, safe ordering)."""
        for index in range(1, self._count):
            value = self._data[index]
            position = index - 1
            while position >= 0 and self._data[position] > value:
                self._data[position + 1] = self._data[position]
                position -= 1
            self._data[position + 1] = value
        if self._count:
            self._bump_version()

    # -- internals -----------------------------------------------------------

    @throws(CapacityError)
    def _ensure_capacity(self, needed: int) -> None:
        """Grow the backing buffer to hold at least *needed* slots.

        The reallocation itself is atomic: a new buffer is fully built
        before the single rebinding of ``_data``.
        """
        if needed <= len(self._data):
            return
        new_capacity = max(len(self._data) * 2, needed)
        new_data = [None] * new_capacity
        new_data[: self._count] = self._data[: self._count]
        self._data = new_data

    @throws(NoSuchElementError)
    def _check_index(self, index: int) -> None:
        if index < 0 or index >= self._count:
            raise NoSuchElementError(f"index {index} out of range")

    def check_implementation(self) -> None:
        if self._count > len(self._data):
            raise CorruptedStateError("count exceeds capacity")
        for index in range(self._count, len(self._data)):
            if self._data[index] is not None:
                raise CorruptedStateError(
                    f"unpopulated slot {index} holds a value"
                )
