"""Singly-linked list (the paper's ``LinkedList`` Java test subject).

The implementation deliberately preserves the update orderings found in
legacy container code: several methods modify bookkeeping state *before*
the step that may fail (allocation of a cell, screening of an element, a
partial bulk operation).  Those methods are exactly the pure failure
non-atomic methods the paper's detection phase flags; Section 6.1 reports
reducing them from 18 to 3 in ``LinkedList`` by trivial reordering — the
reordered variants live in :class:`FixedLinkedList`.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

from repro.core.exceptions import throws

from .base import UpdatableCollection
from .errors import (
    CorruptedStateError,
    EmptyCollectionError,
    IllegalElementError,
    NoSuchElementError,
)

__all__ = ["LLCell", "LinkedList", "FixedLinkedList"]


class LLCell:
    """One cell of a singly-linked chain."""

    __slots__ = ("element", "next")

    def __init__(self, element: Any, next_cell: Optional["LLCell"] = None) -> None:
        self.element = element
        self.next = next_cell

    def nth_next(self, n: int) -> "LLCell":
        """The cell *n* links further down the chain."""
        cell = self
        for _ in range(n):
            if cell.next is None:
                raise NoSuchElementError("chain shorter than requested hop")
            cell = cell.next
        return cell


class LinkedList(UpdatableCollection):
    """A singly-linked list with head and tail pointers."""

    def __init__(self, screener=None) -> None:
        super().__init__(screener)
        self._head: Optional[LLCell] = None
        self._tail: Optional[LLCell] = None

    # -- queries ---------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        cell = self._head
        while cell is not None:
            yield cell.element
            cell = cell.next

    @throws(EmptyCollectionError)
    def first(self) -> Any:
        """The element at the head of the list."""
        if self._head is None:
            raise EmptyCollectionError("first() on empty list")
        return self._head.element

    @throws(EmptyCollectionError)
    def last(self) -> Any:
        """The element at the tail of the list."""
        if self._tail is None:
            raise EmptyCollectionError("last() on empty list")
        return self._tail.element

    @throws(NoSuchElementError)
    def get_at(self, index: int) -> Any:
        """The element at position *index* (0-based)."""
        return self._cell_at(index).element

    def index_of(self, element: Any) -> int:
        """Position of the first occurrence, or -1."""
        for index, item in enumerate(self):
            if item == element:
                return index
        return -1

    # -- single-element updates -------------------------------------------

    @throws(IllegalElementError)
    def insert_first(self, element: Any) -> None:
        """Prepend an element (safe ordering: link, then count)."""
        self._check_element(element)
        cell = LLCell(element, self._head)
        self._head = cell
        if self._tail is None:
            self._tail = cell
        self._count += 1
        self._bump_version()

    @throws(IllegalElementError)
    def insert_last(self, element: Any) -> None:
        """Append an element.

        Legacy ordering: the count is updated *before* the cell is
        allocated, so a failure during allocation leaves the size wrong —
        a pure failure non-atomic method.
        """
        self._check_element(element)
        self._count += 1  # legacy: counted before the fallible allocation
        cell = LLCell(element)
        if self._tail is None:
            self._head = cell
        else:
            self._tail.next = cell
        self._tail = cell
        self._bump_version()

    @throws(NoSuchElementError, IllegalElementError)
    def insert_at(self, index: int, element: Any) -> None:
        """Insert so the element ends up at position *index*.

        Legacy ordering: the predecessor is unlinked from its successor
        before the new cell exists.
        """
        self._check_element(element)
        if index == 0:
            self.insert_first(element)
            return
        predecessor = self._cell_at(index - 1)
        rest = predecessor.next
        predecessor.next = None  # legacy: chain broken before allocation
        cell = LLCell(element, rest)
        predecessor.next = cell
        if rest is None:
            self._tail = cell
        self._count += 1
        self._bump_version()

    @throws(EmptyCollectionError)
    def remove_first(self) -> Any:
        """Remove and return the head element (safe ordering)."""
        if self._head is None:
            raise EmptyCollectionError("remove_first() on empty list")
        cell = self._head
        self._head = cell.next
        if self._head is None:
            self._tail = None
        self._count -= 1
        self._bump_version()
        return cell.element

    @throws(EmptyCollectionError)
    def remove_last(self) -> Any:
        """Remove and return the tail element.

        Legacy ordering: the count is decremented before the O(n) walk to
        the predecessor, which can fail on a corrupted chain.
        """
        if self._tail is None:
            raise EmptyCollectionError("remove_last() on empty list")
        self._count -= 1  # legacy: decremented before the fallible walk
        element = self._tail.element
        if self._head is self._tail:
            self._head = None
            self._tail = None
        else:
            predecessor = self._head
            while predecessor.next is not self._tail:
                if predecessor.next is None:
                    raise CorruptedStateError("tail unreachable from head")
                predecessor = predecessor.next
            predecessor.next = None
            self._tail = predecessor
        self._bump_version()
        return element

    @throws(NoSuchElementError)
    def remove_at(self, index: int) -> Any:
        """Remove and return the element at *index* (safe ordering)."""
        if index == 0:
            return self.remove_first()
        predecessor = self._cell_at(index - 1)
        target = predecessor.next
        if target is None:
            raise NoSuchElementError(f"index {index} out of range")
        predecessor.next = target.next
        if target is self._tail:
            self._tail = predecessor
        self._count -= 1
        self._bump_version()
        return target.element

    def remove_element(self, element: Any) -> bool:
        """Remove the first occurrence; return True if found."""
        previous = None
        cell = self._head
        while cell is not None:
            if cell.element == element:
                if previous is None:
                    self._head = cell.next
                else:
                    previous.next = cell.next
                if cell is self._tail:
                    self._tail = previous
                self._count -= 1
                self._bump_version()
                return True
            previous = cell
            cell = cell.next
        return False

    @throws(NoSuchElementError, IllegalElementError)
    def replace_at(self, index: int, element: Any) -> Any:
        """Replace the element at *index*; return the old element."""
        self._check_element(element)
        cell = self._cell_at(index)
        old = cell.element
        cell.element = element
        self._bump_version()
        return old

    # -- bulk updates -------------------------------------------------------

    @throws(IllegalElementError)
    def extend(self, elements: Iterable[Any]) -> None:
        """Append every element.

        Pure failure non-atomic by construction: each successful append is
        visible even if a later one fails — the partial progress cannot be
        reverted by the callees being atomic (Definition 3 discussion).
        """
        for element in elements:
            self.insert_last(element)

    @throws(IllegalElementError)
    def replace_all(self, old: Any, new: Any) -> int:
        """Replace every occurrence of *old* with *new*; return the count.

        Legacy ordering: replacement happens cell by cell, screening *new*
        only when the first occurrence is reached.
        """
        replaced = 0
        cell = self._head
        while cell is not None:
            if cell.element == old:
                self._check_element(new)  # legacy: screened mid-walk
                cell.element = new
                replaced += 1
            cell = cell.next
        if replaced:
            self._bump_version()
        return replaced

    def removed_duplicates(self) -> "LinkedList":
        """A new list with duplicates removed (this list is unchanged)."""
        result = LinkedList(self._screener)
        seen = []
        for element in self:
            if element not in seen:
                seen.append(element)
                result.insert_last(element)
        return result

    def reverse(self) -> None:
        """Reverse the list in place (safe: pointer rotation only)."""
        previous = None
        cell = self._head
        self._tail = self._head
        while cell is not None:
            following = cell.next
            cell.next = previous
            previous = cell
            cell = following
        self._head = previous
        if self._count:
            self._bump_version()

    def clear(self) -> None:
        """Drop every element (safe: single rebinding)."""
        self._head = None
        self._tail = None
        self._count = 0
        self._bump_version()

    # -- internals -----------------------------------------------------------

    @throws(NoSuchElementError)
    def _cell_at(self, index: int) -> LLCell:
        if index < 0 or index >= self._count or self._head is None:
            raise NoSuchElementError(f"index {index} out of range")
        return self._head.nth_next(index)

    def check_implementation(self) -> None:
        """Walk the chain and verify counts and tail linkage."""
        walked = 0
        cell = self._head
        last = None
        while cell is not None:
            walked += 1
            if walked > self._count:
                raise CorruptedStateError("chain longer than count")
            last = cell
            cell = cell.next
        if walked != self._count:
            raise CorruptedStateError(
                f"count {self._count} but {walked} reachable cells"
            )
        if last is not self._tail:
            raise CorruptedStateError("tail pointer does not match chain")


class FixedLinkedList(LinkedList):
    """The list after the paper's "trivial modifications" (Section 6.1).

    Each override re-orders statements so that all fallible steps precede
    the first state mutation, turning the pure failure non-atomic methods
    of :class:`LinkedList` into failure atomic ones without wrappers.
    """

    @throws(IllegalElementError)
    def insert_last(self, element: Any) -> None:
        """Append an element (fixed ordering: allocate, link, then count)."""
        self._check_element(element)
        cell = LLCell(element)
        if self._tail is None:
            self._head = cell
        else:
            self._tail.next = cell
        self._tail = cell
        self._count += 1
        self._bump_version()

    @throws(NoSuchElementError, IllegalElementError)
    def insert_at(self, index: int, element: Any) -> None:
        """Insert at *index* (fixed: allocate before relinking)."""
        self._check_element(element)
        if index == 0:
            self.insert_first(element)
            return
        predecessor = self._cell_at(index - 1)
        cell = LLCell(element, predecessor.next)
        predecessor.next = cell
        if cell.next is None:
            self._tail = cell
        self._count += 1
        self._bump_version()

    @throws(EmptyCollectionError)
    def remove_last(self) -> Any:
        """Remove the tail element (fixed: walk before any mutation)."""
        if self._tail is None:
            raise EmptyCollectionError("remove_last() on empty list")
        element = self._tail.element
        if self._head is self._tail:
            self._head = None
            self._tail = None
        else:
            predecessor = self._head
            while predecessor.next is not self._tail:
                if predecessor.next is None:
                    raise CorruptedStateError("tail unreachable from head")
                predecessor = predecessor.next
            predecessor.next = None
            self._tail = predecessor
        self._count -= 1
        self._bump_version()
        return element

    @throws(IllegalElementError)
    def replace_all(self, old: Any, new: Any) -> int:
        """Replace occurrences (fixed: screen the new element up front)."""
        self._check_element(new)
        replaced = 0
        cell = self._head
        while cell is not None:
            if cell.element == old:
                cell.element = new
                replaced += 1
            cell = cell.next
        if replaced:
            self._bump_version()
        return replaced
