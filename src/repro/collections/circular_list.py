"""Doubly-linked circular list (the paper's ``CircularList`` subject).

Cells form a closed ring; the list holds one pointer into it.  Like the
other containers, a few update methods keep the orderings of legacy code
(mutate, then risk failure), which the detection phase will flag.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.core.exceptions import throws

from .base import UpdatableCollection
from .errors import (
    CorruptedStateError,
    EmptyCollectionError,
    IllegalElementError,
    NoSuchElementError,
)

__all__ = ["CLCell", "CircularList"]


class CLCell:
    """One cell of a doubly-linked ring."""

    __slots__ = ("element", "prev", "next")

    def __init__(self, element: Any) -> None:
        self.element = element
        self.prev = self
        self.next = self

    def link_after(self, anchor: "CLCell") -> None:
        """Splice this cell into the ring right after *anchor*."""
        self.prev = anchor
        self.next = anchor.next
        anchor.next.prev = self
        anchor.next = self

    def unlink(self) -> None:
        """Remove this cell from its ring (the cell closes on itself)."""
        self.prev.next = self.next
        self.next.prev = self.prev
        self.prev = self
        self.next = self


class CircularList(UpdatableCollection):
    """A circular doubly-linked list with O(1) rotation."""

    def __init__(self, screener=None) -> None:
        super().__init__(screener)
        self._entry: Optional[CLCell] = None  # current head of the ring

    # -- queries ---------------------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        if self._entry is None:
            return
        cell = self._entry
        for _ in range(self._count):
            yield cell.element
            cell = cell.next

    @throws(EmptyCollectionError)
    def first(self) -> Any:
        if self._entry is None:
            raise EmptyCollectionError("first() on empty ring")
        return self._entry.element

    @throws(EmptyCollectionError)
    def last(self) -> Any:
        if self._entry is None:
            raise EmptyCollectionError("last() on empty ring")
        return self._entry.prev.element

    @throws(NoSuchElementError)
    def get_at(self, index: int) -> Any:
        return self._cell_at(index).element

    def index_of(self, element: Any) -> int:
        for index, item in enumerate(self):
            if item == element:
                return index
        return -1

    # -- updates -----------------------------------------------------------

    @throws(IllegalElementError)
    def insert_first(self, element: Any) -> None:
        """Prepend: splice before the entry point and move the entry."""
        self._check_element(element)
        cell = CLCell(element)
        if self._entry is not None:
            cell.link_after(self._entry.prev)
        self._entry = cell
        self._count += 1
        self._bump_version()

    @throws(IllegalElementError)
    def insert_last(self, element: Any) -> None:
        """Append: splice before the entry point, entry unchanged.

        Legacy ordering: the version stamp is bumped before the cell is
        allocated, so a failed append still invalidates iterators.
        """
        self._check_element(element)
        self._bump_version()  # legacy: stamped before the fallible splice
        cell = CLCell(element)
        if self._entry is None:
            self._entry = cell
        else:
            cell.link_after(self._entry.prev)
        self._count += 1

    @throws(NoSuchElementError, IllegalElementError)
    def insert_at(self, index: int, element: Any) -> None:
        """Insert so the element ends up at position *index*."""
        if index == 0 or self._entry is None:
            if index != 0:
                raise NoSuchElementError(f"index {index} out of range")
            self.insert_first(element)
            return
        self._check_element(element)
        anchor = self._cell_at(index - 1)
        cell = CLCell(element)
        cell.link_after(anchor)
        self._count += 1
        self._bump_version()

    @throws(EmptyCollectionError)
    def remove_first(self) -> Any:
        """Remove the entry-point element (safe ordering)."""
        if self._entry is None:
            raise EmptyCollectionError("remove_first() on empty ring")
        cell = self._entry
        element = cell.element
        if self._count == 1:
            self._entry = None
        else:
            self._entry = cell.next
            cell.unlink()
        self._count -= 1
        self._bump_version()
        return element

    @throws(EmptyCollectionError)
    def remove_last(self) -> Any:
        """Remove the element before the entry point.

        Legacy ordering: the count is decremented before unlinking, which
        goes through the (fallible) cell constructor-free path but is
        still interruptible by failures in unlink bookkeeping.
        """
        if self._entry is None:
            raise EmptyCollectionError("remove_last() on empty ring")
        self._count -= 1  # legacy: decremented first
        cell = self._entry.prev
        element = cell.element
        if self._count == 0:
            self._entry = None
        else:
            cell.unlink()
        self._bump_version()
        return element

    @throws(NoSuchElementError)
    def remove_at(self, index: int) -> Any:
        if index == 0:
            return self.remove_first()
        cell = self._cell_at(index)
        cell.unlink()
        self._count -= 1
        self._bump_version()
        return cell.element

    def remove_element(self, element: Any) -> bool:
        cell = self._entry
        for _ in range(self._count):
            if cell.element == element:
                if self._count == 1:
                    self._entry = None
                else:
                    if cell is self._entry:
                        self._entry = cell.next
                    cell.unlink()
                self._count -= 1
                self._bump_version()
                return True
            cell = cell.next
        return False

    @throws(NoSuchElementError, IllegalElementError)
    def replace_at(self, index: int, element: Any) -> Any:
        self._check_element(element)
        cell = self._cell_at(index)
        old = cell.element
        cell.element = element
        self._bump_version()
        return old

    @throws(EmptyCollectionError)
    def rotate(self, steps: int = 1) -> None:
        """Move the entry point *steps* cells forward (may be negative)."""
        if self._entry is None:
            raise EmptyCollectionError("rotate() on empty ring")
        steps %= self._count
        for _ in range(steps):
            self._entry = self._entry.next
        if steps:
            self._bump_version()

    def extend(self, elements) -> None:
        """Append every element (partial progress on failure: pure)."""
        for element in elements:
            self.insert_last(element)

    def clear(self) -> None:
        self._entry = None
        self._count = 0
        self._bump_version()

    # -- internals -----------------------------------------------------------

    @throws(NoSuchElementError)
    def _cell_at(self, index: int) -> CLCell:
        if index < 0 or index >= self._count or self._entry is None:
            raise NoSuchElementError(f"index {index} out of range")
        cell = self._entry
        for _ in range(index):
            cell = cell.next
        return cell

    def check_implementation(self) -> None:
        """Verify the ring is closed, consistent, and sized correctly."""
        if self._entry is None:
            if self._count != 0:
                raise CorruptedStateError("empty ring with non-zero count")
            return
        cell = self._entry
        for _ in range(self._count):
            if cell.next.prev is not cell:
                raise CorruptedStateError("broken prev/next symmetry")
            cell = cell.next
        if cell is not self._entry:
            raise CorruptedStateError("ring does not close after count cells")
