"""Comparator combinators for the ordered containers.

The red-black tree and map order elements through three-way comparators
(like the Java originals).  These helpers build and combine them without
hand-writing comparison boilerplate.
"""

from __future__ import annotations

from typing import Any, Callable

from .rb_tree import Comparator, default_comparator

__all__ = [
    "default_comparator",
    "reverse_comparator",
    "by_key",
    "chained",
    "natural",
]


def natural() -> Comparator:
    """The natural ``<``/``>`` ordering (same as ``default_comparator``)."""
    return default_comparator


def reverse_comparator(inner: Comparator = default_comparator) -> Comparator:
    """Invert an ordering: largest first."""

    def compare(a: Any, b: Any) -> int:
        return inner(b, a)

    return compare


def by_key(
    key: Callable[[Any], Any], inner: Comparator = default_comparator
) -> Comparator:
    """Order elements by a derived key (like ``sorted(key=...)``)."""

    def compare(a: Any, b: Any) -> int:
        return inner(key(a), key(b))

    return compare


def chained(*comparators: Comparator) -> Comparator:
    """Lexicographic combination: later comparators break earlier ties."""
    if not comparators:
        raise ValueError("chained() needs at least one comparator")

    def compare(a: Any, b: Any) -> int:
        for comparator in comparators:
            order = comparator(a, b)
            if order != 0:
                return order
        return 0

    return compare
