"""Container library: the paper's Java test subjects, rebuilt in Python.

Nine containers modeled on Doug Lea's ``collections`` package — the exact
applications of the paper's Java evaluation (Table 1): CircularList,
Dynarray, HashedMap, HashedSet, LLMap, LinkedBuffer, LinkedList, RBMap,
and RBTree.

The implementations are real data structures (probing, chaining,
red-black rebalancing, chunked buffers) whose update methods keep the
statement orderings of legacy code: some mutate bookkeeping state before
a step that may fail.  Those methods are the failure non-atomic subjects
the detection phase of :mod:`repro.core` is evaluated on; the ``Fixed*``
variants apply the paper's "trivial modifications" (Section 6.1).
"""

from .base import FailFastIterator, UpdatableCollection
from .circular_list import CircularList, CLCell
from .dynarray import Dynarray
from .errors import (
    CapacityError,
    CollectionsError,
    CorruptedIterationError,
    CorruptedStateError,
    EmptyCollectionError,
    IllegalElementError,
    NoSuchElementError,
)
from .hashed_map import HashedMap, LLPair
from .hashed_set import HashedSet
from .linked_buffer import BufferChunk, LinkedBuffer
from .linked_list import FixedLinkedList, LinkedList, LLCell
from .ll_map import LLMap
from .rb_map import KVPair, RBMap
from .rb_tree import BLACK, RED, RBCell, RBTree, default_comparator

__all__ = [
    "UpdatableCollection",
    "FailFastIterator",
    "CorruptedIterationError",
    "CircularList",
    "CLCell",
    "Dynarray",
    "HashedMap",
    "LLPair",
    "HashedSet",
    "LinkedBuffer",
    "BufferChunk",
    "LinkedList",
    "FixedLinkedList",
    "LLCell",
    "LLMap",
    "RBMap",
    "KVPair",
    "RBTree",
    "RBCell",
    "RED",
    "BLACK",
    "default_comparator",
    "CollectionsError",
    "NoSuchElementError",
    "EmptyCollectionError",
    "CapacityError",
    "IllegalElementError",
    "CorruptedStateError",
]
