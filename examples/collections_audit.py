"""Audit the container library exactly like the paper's Java evaluation.

Runs the detection campaign on three containers, prints the Table-1 row
and the per-method classification for each, then demonstrates the
masking phase closing the loop: the pure failure non-atomic methods are
wrapped and a mid-operation failure no longer corrupts the container.

Run:  python examples/collections_audit.py
"""

from repro.collections import (
    IllegalElementError,
    LinkedList,
    LLCell,
    UpdatableCollection,
)
from repro.core import Masker, WrapPolicy, capture, graphs_equal, render_bars
from repro.core.policy import select_methods_to_wrap
from repro.experiments import program_by_name, run_app_campaign, table1


def audit(app_name: str):
    outcome = run_app_campaign(program_by_name(app_name))
    print(f"\n=== {app_name} ===")
    print(table1([outcome]))
    print()
    print(render_bars(outcome.report.fractions_by_methods()))
    nonatomic = [
        key
        for key, mc in sorted(outcome.classification.methods.items())
        if mc.is_nonatomic
    ]
    print(f"failure non-atomic methods: {nonatomic}")
    return outcome


def demonstrate_masking(outcome):
    to_wrap = select_methods_to_wrap(outcome.classification, WrapPolicy())
    print(f"\nmasking pure failure non-atomic methods: {to_wrap}")

    masker = Masker(to_wrap)
    with masker:
        masker.mask_class(UpdatableCollection)
        masker.mask_class(LinkedList)
        masker.mask_class(LLCell)

        # a screener failure in the middle of a bulk extend: without the
        # wrapper the first elements stay behind; with it, full rollback
        lst = LinkedList(screener=lambda e: isinstance(e, int))
        lst.extend([1, 2, 3])
        before = capture(lst)
        try:
            lst.extend([4, 5, "not-an-int", 6])
        except IllegalElementError:
            pass
        restored = graphs_equal(before, capture(lst))
        print(f"masked extend failure rolled back: {restored} "
              f"(contents: {lst.to_list()})")
        assert restored

    # the raw library corrupts
    lst = LinkedList(screener=lambda e: isinstance(e, int))
    lst.extend([1, 2, 3])
    try:
        lst.extend([4, 5, "not-an-int", 6])
    except IllegalElementError:
        pass
    print(f"unmasked extend failure leaves partial state: {lst.to_list()}")


def main():
    for app in ("HashedSet", "RBTree"):
        audit(app)
    outcome = audit("LinkedList")
    demonstrate_masking(outcome)


if __name__ == "__main__":
    main()
