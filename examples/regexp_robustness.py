"""Hardening the regexp engine with detection + masking.

The compile pipeline of the regexp engine (parser -> compiler -> program)
is a chain of multi-step stateful constructions: interrupted mid-way it
leaves half-built programs behind.  The campaign finds those methods and
the masking phase wraps them, so a failing compile leaves the shared
converter state exactly as it was.

Run:  python examples/regexp_robustness.py
"""

from repro.core import Masker, WrapPolicy, capture, graphs_equal, render_bars
from repro.core.policy import select_methods_to_wrap
from repro.experiments import program_by_name, run_app_campaign
from repro.regexp import Compiler, Matcher, Parser, Regexp
from repro.regexp.program import Instruction, Program
from repro.selfstar import XmlToCConverter
from repro.xmlmini import parse_document


def campaign_summary():
    outcome = run_app_campaign(program_by_name("RegExp"))
    print("=== RegExp detection campaign ===")
    print(f"classes: {outcome.report.class_count}  "
          f"methods: {outcome.report.method_count}  "
          f"injections: {outcome.report.injection_count}")
    print(render_bars(outcome.report.fractions_by_methods()))
    return outcome


def demonstrate_symbol_table_protection():
    """A ProcessingError mid-conversion must not poison the symbol table."""
    converter = XmlToCConverter()
    converter.convert(parse_document("<config><a/></config>"))
    before = capture(converter)

    masker = Masker({"XmlToCConverter.convert", "XmlToCConverter.mangle"})
    with masker:
        masker.mask_class(XmlToCConverter)
        try:
            # <struct> mangles to a reserved C keyword: conversion fails
            converter.convert(parse_document("<struct><b/></struct>"))
        except Exception as exc:
            print(f"conversion failed as expected: {exc}")
        restored = graphs_equal(before, capture(converter))
        print(f"converter state rolled back: {restored}")
        assert restored
        # the converter is still usable afterwards
        converter.convert(parse_document("<followup/>"))
        print("follow-up conversion succeeded on the restored state")


def demonstrate_matcher_still_correct(outcome):
    to_wrap = select_methods_to_wrap(outcome.classification, WrapPolicy())
    masker = Masker(to_wrap)
    with masker:
        for cls in (Regexp, Parser, Compiler, Program, Instruction, Matcher):
            masker.mask_class(cls)
        regexp = Regexp("(a|b)+c")
        assert regexp.match("abac").group() == "abac"
        assert regexp.search("zzabc").span() == (2, 5)
        print(f"masked engine still matches correctly "
              f"({masker.stats.wrapped_calls} wrapped calls)")


def main():
    outcome = campaign_summary()
    demonstrate_symbol_table_protection()
    demonstrate_matcher_still_correct(outcome)


if __name__ == "__main__":
    main()
