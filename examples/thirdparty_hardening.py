"""Harden a module you have no source control over (the Java flavor).

The paper's Java infrastructure instruments compiled classes at load
time, with no access to their source.  This example writes a "third
party" module to a temporary directory, imports it through the
LoadTimeWeaver import hook so its classes are instrumented transparently,
runs the detection campaign, and masks the findings — all without editing
the module.

Run:  python examples/thirdparty_hardening.py
"""

import sys
import tempfile
import textwrap
from pathlib import Path

from repro.core import (
    CallableProgram,
    Detector,
    InjectionCampaign,
    LoadTimeWeaver,
    Masker,
    WrapPolicy,
    classify,
    make_injection_wrapper,
    select_methods_to_wrap,
)

THIRD_PARTY_SOURCE = '''
"""A vendored session cache we cannot edit."""

class SessionCache:
    def __init__(self, capacity):
        self.capacity = capacity
        self.sessions = {}
        self.evictions = 0

    def store(self, key, session):
        if len(self.sessions) >= self.capacity:
            self.evictions += 1          # counted before the eviction...
            oldest = next(iter(self.sessions))
            del self.sessions[oldest]
        self.sessions[key] = self._validated(session)   # ...which may fail

    def fetch(self, key):
        return self.sessions[key]

    def _validated(self, session):
        if not isinstance(session, dict):
            raise TypeError("sessions must be dicts")
        return dict(session)
'''


def main():
    with tempfile.TemporaryDirectory() as tmp:
        (Path(tmp) / "vendored_cache.py").write_text(
            textwrap.dedent(THIRD_PARTY_SOURCE)
        )
        sys.path.insert(0, tmp)
        try:
            campaign = InjectionCampaign()
            hook = LoadTimeWeaver(
                lambda spec: make_injection_wrapper(spec, campaign),
                module_filter=lambda name: name == "vendored_cache",
            )
            hook.install()
            try:
                import vendored_cache  # woven transparently on import
            finally:
                hook.uninstall()

            def workload():
                cache = vendored_cache.SessionCache(capacity=2)
                cache.store("a", {"user": 1})
                cache.store("b", {"user": 2})
                cache.store("c", {"user": 3})  # forces an eviction
                cache.fetch("c")
                try:
                    cache.store("d", "not-a-dict")
                except TypeError:
                    pass

            result = Detector(
                CallableProgram("cache", workload), campaign
            ).detect()
            hook.unweave_all()

            classification = classify(result.log)
            print("load-time campaign over the vendored module:")
            for key in sorted(classification.methods):
                mc = classification.methods[key]
                print(f"  {mc.category:12s} {key}")
                if mc.category != "atomic":
                    print(f"      {classification.explain(key)}")

            to_wrap = select_methods_to_wrap(classification, WrapPolicy())
            print(f"\nmasking without source access: {to_wrap}")
            masker = Masker(to_wrap)
            with masker:
                masker.mask_class(vendored_cache.SessionCache)
                cache = vendored_cache.SessionCache(capacity=1)
                cache.store("a", {"user": 1})
                try:
                    cache.store("b", "bad session")  # eviction then failure
                except TypeError:
                    pass
                print(
                    "after masked failed store: evictions="
                    f"{cache.evictions}, sessions={list(cache.sessions)}"
                )
                assert cache.evictions == 0
                assert list(cache.sessions) == ["a"]
                print("rollback preserved the evicted session: OK")
        finally:
            sys.path.remove(tmp)
            sys.modules.pop("vendored_cache", None)


if __name__ == "__main__":
    main()
