"""Capstone: a log-processing service hardened end to end.

Combines the substrates the way a real adopter would: log lines are
parsed with the regexp engine, routed by severity through a Self*
dataflow graph, and aggregated into a sorted RBMap — then the aggregate
component is run through ``harden()`` so that a malformed line can never
leave the statistics half-updated, and a supervisor retries transient
sink failures safely.

Run:  python examples/log_pipeline.py
"""

from repro.collections import RBMap
from repro.core import harden
from repro.regexp import Regexp
from repro.selfstar import (
    Component,
    ProcessingError,
    RetryPolicy,
    RouterAdaptor,
    Sink,
    Source,
    Supervisor,
)

LOG_LINES = [
    "2026-07-04 10:00:01 INFO  startup complete",
    "2026-07-04 10:00:05 WARN  disk usage 81%",
    "2026-07-04 10:00:09 ERROR connection lost to node-3",
    "2026-07-04 10:00:09 INFO  retrying node-3",
    "this line is garbage",
    "2026-07-04 10:00:12 ERROR connection lost to node-7",
    "2026-07-04 10:00:15 INFO  node-3 recovered",
]

_LINE_PATTERN = Regexp(
    "^(\\d{4}-\\d{2}-\\d{2}) (\\d{2}:\\d{2}:\\d{2}) (INFO|WARN|ERROR) +(.+)$"
)


class LogStatistics(Component):
    """Aggregates per-level and per-day counts into sorted maps.

    The two-map update is the classic non-atomic shape: a failure between
    the level update and the day update leaves the totals disagreeing.
    """

    def __init__(self) -> None:
        super().__init__("stats")
        self.by_level = RBMap()
        self.by_day = RBMap()
        self.rejected = 0

    def process(self, event) -> None:
        level, day = event["level"], event["day"]
        self.by_level.put(level, self.by_level.get_or_default(level, 0) + 1)
        if len(day) != 10:
            raise ProcessingError(f"bad day field {day!r}")
        self.by_day.put(day, self.by_day.get_or_default(day, 0) + 1)


def parse_line(line):
    match = _LINE_PATTERN.match(line)
    if match is None:
        raise ProcessingError(f"unparseable line: {line!r}")
    return {
        "day": match.group(1),
        "time": match.group(2),
        "level": match.group(3),
        "message": match.group(4),
    }


def build_graph(stats):
    source = Source("lines")
    router = RouterAdaptor("by-level")
    errors = Sink("errors")
    other = Sink("other")
    router.add_route("errors", lambda e: e["level"] == "ERROR", errors)
    router.set_fallback(other)
    source.connect(router)  # severity routing ...
    source.connect(stats)   # ... and the aggregate, fan-out from the source
    for component in (source, router, errors, other, stats):
        component.start()
    return source, errors, other


def workload():
    """The deterministic campaign workload over the statistics component."""
    stats = LogStatistics()
    stats.start()
    for line in LOG_LINES:
        try:
            stats.accept(parse_line(line))
        except ProcessingError:
            stats.rejected += 1
    # the corrupting path: a parsed event with a malformed day field
    try:
        stats.accept({"level": "INFO", "day": "not-a-day"})
    except ProcessingError:
        pass


def main():
    # 1. harden the aggregate component with a detection campaign
    result = harden([LogStatistics, Component], workload, name="logstats")
    print(result.summary())
    print(result.explain("LogStatistics.process"))

    # 2. run the full dataflow graph with the masked component
    stats = LogStatistics()
    source, errors, other = build_graph(stats)
    supervisor = Supervisor(RetryPolicy(max_attempts=2,
                                        retry_on=(ProcessingError,)))
    rejected = 0
    for line in LOG_LINES:
        try:
            supervisor.supervise(lambda l=line: source.push(parse_line(l)))
        except Exception:
            rejected += 1

    print(f"\nby level : {stats.by_level.items()}")
    print(f"by day   : {stats.by_day.items()}")
    print(f"errors routed: {len(errors.collected)}, "
          f"other: {len(other.collected)}, rejected lines: {rejected}")

    # 3. the masked statistics survive the corrupting event intact
    before_level = stats.by_level.items()
    before_day = stats.by_day.items()
    try:
        stats.accept({"level": "INFO", "day": "bad"})
    except ProcessingError:
        pass
    assert stats.by_level.items() == before_level, "level counts corrupted!"
    assert stats.by_day.items() == before_day
    print("malformed event rolled back: statistics stay consistent")
    result.unmask()


if __name__ == "__main__":
    main()
