"""Measure the masking overhead on your own machine (Figure 5, small).

Prints the overhead grid for a reduced size/ratio grid, plus the
undo-log ("copy-on-write") ablation the paper suggests for very large
objects (Section 6.2).

Run:  python examples/masking_overhead.py
"""

from repro.experiments import (
    format_overhead_table,
    measure_overhead,
    measure_undolog_ablation,
)


def main():
    print("Masking overhead (rows: checkpointed-object size, "
          "cols: % of calls wrapped)\n")
    points = measure_overhead(
        sizes=(4, 32, 256), ratios=(0.0, 0.01, 0.1, 1.0),
        calls=1000, repeats=5,
    )
    print(format_overhead_table(points))

    print("\nCopy-on-write ablation (100% of calls wrapped):\n")
    results = measure_undolog_ablation(sizes=(4, 32, 256), calls=600,
                                       repeats=5)
    print("eager deep-copy checkpoint:")
    print(format_overhead_table(results["eager"]))
    print("\nundo-log checkpoint (cost follows writes, not object size):")
    print(format_overhead_table(results["undolog"]))


if __name__ == "__main__":
    main()
