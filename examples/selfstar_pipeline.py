"""Self* dataflow pipeline under exception injection and masking.

Builds the paper's ``xml2Cviasc1`` topology (parse -> shared queue ->
convert -> sink), runs the detection campaign over the framework classes,
and shows how masking protects a queue hand-off against a failing
consumer.

Run:  python examples/selfstar_pipeline.py
"""

from repro.core import Masker, WrapPolicy, render_bars
from repro.core.policy import select_methods_to_wrap
from repro.experiments import program_by_name, run_app_campaign
from repro.selfstar import Component, ProcessingError, Sink, StdQueue


def campaign_summary():
    outcome = run_app_campaign(program_by_name("xml2Cviasc1"))
    print("=== xml2Cviasc1 detection campaign ===")
    print(f"classes: {outcome.report.class_count}  "
          f"methods: {outcome.report.method_count}  "
          f"injections: {outcome.report.injection_count}")
    print(render_bars(outcome.report.fractions_by_methods()))
    pure = outcome.classification.methods_in("pure")
    print(f"pure failure non-atomic: {pure}\n")
    return outcome


class FlakyConsumer(Component):
    """A consumer that fails on specific messages."""

    def __init__(self):
        super().__init__("flaky")
        self.seen = []

    def process(self, message):
        if message == "poison":
            raise ProcessingError("cannot digest poison")
        self.seen.append(message)


def demonstrate_queue_masking(outcome):
    to_wrap = select_methods_to_wrap(outcome.classification, WrapPolicy())
    print(f"masking: {to_wrap}")
    masker = Masker(to_wrap)
    with masker:
        masker.mask_class(StdQueue)
        masker.mask_class(Component)

        queue = StdQueue("jobs", capacity=8)
        consumer = FlakyConsumer()
        queue.connect(consumer)
        queue.start()
        consumer.start()
        for message in ("a", "poison", "b"):
            queue.enqueue(message)

        delivered = 0
        while queue.depth():
            try:
                queue.pump()
                delivered += 1
            except ProcessingError:
                # pump delivers before dequeuing (the at-least-once ordering
                # the detection campaign certified as conditional, not pure),
                # so the failed message is still queued: dead-letter it
                dead = queue.dequeue()
                print(f"  dead-lettered {dead!r} (queue depth intact: "
                      f"{queue.depth()})")
        print(f"delivered {delivered} messages; consumer saw {consumer.seen}")
        assert consumer.seen == ["a", "b"]


def main():
    outcome = campaign_summary()
    demonstrate_queue_masking(outcome)


if __name__ == "__main__":
    main()
