"""Quickstart: detect and mask non-atomic exception handling.

A bank account whose ``deposit`` updates the audit trail *before*
validating the amount — the classic failure non-atomic method.  The
detection phase finds it automatically; the masking phase makes it
failure atomic without touching its source.

Run:  python examples/quickstart.py
"""

from repro.core import (
    CallableProgram,
    Detector,
    InjectionCampaign,
    Masker,
    Weaver,
    WrapPolicy,
    capture,
    classify,
    graphs_equal,
    make_injection_wrapper,
    select_methods_to_wrap,
)


class Account:
    """A deliberately sloppy account implementation."""

    def __init__(self, balance):
        self.balance = balance
        self.audit_trail = []

    def deposit(self, amount):
        self.audit_trail.append(("deposit", amount))  # mutates first...
        if amount <= 0:
            raise ValueError("deposit must be positive")  # ...fails later
        self.balance += amount

    def withdraw(self, amount):
        if amount <= 0 or amount > self.balance:
            raise ValueError("invalid withdrawal")  # validates first: safe
        self.balance -= amount
        self.audit_trail.append(("withdraw", amount))


def workload():
    """The deterministic test program the campaign re-executes."""
    account = Account(100)
    account.deposit(50)
    account.withdraw(30)
    try:
        account.deposit(-5)  # the genuine error path
    except ValueError:
        pass


def main():
    # Step 1-2: analyze + weave injection wrappers into Account
    campaign = InjectionCampaign()
    weaver = Weaver(lambda spec: make_injection_wrapper(spec, campaign))
    with weaver:
        weaver.weave_class(Account)
        # Step 3: run once per injection point
        result = Detector(CallableProgram("bank", workload), campaign).detect()

    # classification (Definition 3)
    classification = classify(result.log)
    print(f"injections performed : {result.total_injections}")
    for key in sorted(classification.methods):
        mc = classification.methods[key]
        print(f"  {key:22s} -> {mc.category}")

    # Steps 4-5: mask exactly what needs masking
    to_wrap = select_methods_to_wrap(classification, WrapPolicy())
    print(f"\nmasking: {to_wrap}")
    masker = Masker(to_wrap)
    with masker:
        masker.mask_class(Account)

        account = Account(100)
        before = capture(account)
        try:
            account.deposit(-5)
        except ValueError:
            pass
        assert graphs_equal(before, capture(account)), "rollback failed!"
        print("masked deposit(-5): state fully rolled back "
              f"(balance={account.balance}, audit={account.audit_trail})")

    # unmasked, the same failure corrupts the audit trail
    account = Account(100)
    try:
        account.deposit(-5)
    except ValueError:
        pass
    print("unmasked deposit(-5): audit trail corrupted -> "
          f"{account.audit_trail}")


if __name__ == "__main__":
    main()
