"""Figure 4 — class-level distribution (atomic / conditional / pure).

Regenerates both panels and checks the paper's claim that failure
non-atomic methods are "not confined in just a few classes, but spread
across a significant proportion of the classes".
"""

from __future__ import annotations

from repro.core.classify import CATEGORY_ATOMIC
from repro.experiments import figure4, program_by_name, run_app_campaign

from conftest import emit


def bench_fig4(benchmark, cpp_outcomes, java_outcomes):
    figures = figure4(cpp_outcomes, java_outcomes)
    emit("Figure 4(a): class distribution (C++)", figures["a"].rendered)
    emit("Figure 4(b): class distribution (Java)", figures["b"].rendered)
    benchmark.extra_info["fig4a"] = figures["a"].rendered
    benchmark.extra_info["fig4b"] = figures["b"].rendered

    # the paper's spread claim: a significant fraction of classes is
    # failure non-atomic in both language families
    for key in ("a", "b"):
        nonatomic_average = 1.0 - figures[key].average(CATEGORY_ATOMIC)
        assert nonatomic_average > 0.15, (key, nonatomic_average)

    program = program_by_name("RBMap")
    benchmark.pedantic(
        lambda: run_app_campaign(program, stride=4), rounds=3, iterations=1
    )
