"""Figure 2 — method classification of the C++ (Self*) applications.

Regenerates both panels: (a) percentages of methods defined and used,
(b) percentages weighted by number of calls.  The paper's shapes checked
here: the pure failure non-atomic fraction stays small, and the pure
*call* fraction is far smaller than the method fraction (Section 6.1
reports < 0.4% of calls for the worst C++ app at their workload scale).
"""

from __future__ import annotations

from repro.core.classify import CATEGORY_PURE
from repro.experiments import figure2, program_by_name, run_app_campaign

from conftest import emit


def bench_fig2(benchmark, cpp_outcomes):
    figures = figure2(cpp_outcomes)
    emit("Figure 2(a): % of methods defined and used (C++)",
         figures["a"].rendered)
    emit("Figure 2(b): % of method calls (C++)", figures["b"].rendered)
    benchmark.extra_info["fig2a"] = figures["a"].rendered
    benchmark.extra_info["fig2b"] = figures["b"].rendered

    # paper shape: pure methods exist but stay a minority...
    assert 0.0 < figures["a"].average(CATEGORY_PURE) < 0.35
    # ...and calls to them are rarer than their method share
    assert figures["b"].average(CATEGORY_PURE) < figures["a"].average(
        CATEGORY_PURE
    )

    program = program_by_name("stdQ")
    benchmark.pedantic(
        lambda: run_app_campaign(program, stride=4), rounds=3, iterations=1
    )
