"""Benchmark — metamorphic variant corpus over the Table-1 campaign.

The variants subsystem (:mod:`repro.core.variants`) rewrites subject
methods with semantic-preserving transforms and requires every
observable campaign output — run log modulo provenance, classification,
masking fixpoints — to be bit-identical to the original's.  This
benchmark grafts recipe variants onto real Table-1 Java applications
and measures the cost of that invariance evidence:

* transform applications per program (how much the corpus actually
  rewrites), and
* the wall-clock of original-vs-variant campaign pairs.

Zero divergences is an assertion, not a statistic — one diverging
variant fails the run.  Measurements go to ``BENCH_variants.json``.

Modes:

* full (default): all ten Java applications x 3 recipes.
* smoke (``REPRO_BENCH_SMOKE=1``, used by ``make bench-variants``):
  three small applications x 2 recipes; same assertions.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.variants import (
    campaign_bundle,
    diff_bundles,
    grafted_variant,
    make_recipes,
)
from repro.experiments import JAVA_PROGRAMS, program_by_name

from conftest import emit

#: Smoke mode: a small subset for CI sanity runs (make bench-variants).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Where the machine-readable measurements land (consumed by CI logs and
#: docs/BENCHMARKS.md).
REPORT_PATH = os.environ.get(
    "REPRO_BENCH_VARIANTS_OUT", "BENCH_variants.json"
)

SMOKE_NAMES = ("LLMap", "Dynarray", "CircularList")

RECIPE_SEED = 20260806


def bench_variants(benchmark):
    names = SMOKE_NAMES if SMOKE else tuple(p.name for p in JAVA_PROGRAMS)
    recipes = make_recipes(RECIPE_SEED, 2 if SMOKE else 3)
    rows = []
    divergences = []
    total_applied = 0
    total_seconds = 0.0
    for name in names:
        program = program_by_name(name)
        started = time.perf_counter()
        base = campaign_bundle(lambda: program)
        base_seconds = time.perf_counter() - started
        applied = 0
        variant_seconds = 0.0
        checked = 0
        for tag, recipe in enumerate(recipes, start=1):
            started = time.perf_counter()
            with grafted_variant(program, recipe, tag=tag) as grafted:
                if not grafted.applied:
                    continue
                bundle = campaign_bundle(lambda: grafted.program)
            variant_seconds += time.perf_counter() - started
            applied += len(grafted.applied)
            checked += 1
            divergences.extend(
                diff_bundles(
                    base, bundle, subject=name, variant=f"v{tag}"
                )
            )
        total_applied += applied
        total_seconds += base_seconds + variant_seconds
        rows.append(
            {
                "program": name,
                "variants_checked": checked,
                "transform_applications": applied,
                "base_seconds": base_seconds,
                "variant_seconds": variant_seconds,
            }
        )

    report = {
        "workload": "table1-java-grafted-variants",
        "smoke": SMOKE,
        "recipes": [list(recipe) for recipe in recipes],
        "rows": rows,
        "transform_applications": total_applied,
        "divergences": [d.to_dict() for d in divergences],
        "seconds": total_seconds,
    }
    with open(REPORT_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    lines = [
        f"{row['program']:14s} variants={row['variants_checked']}   "
        f"applications={row['transform_applications']:4d}   "
        f"base {row['base_seconds']:.3f}s   "
        f"variants {row['variant_seconds']:.3f}s"
        for row in rows
    ]
    lines.append(
        f"aggregate: {total_applied} transform applications   "
        f"{len(divergences)} divergences   {total_seconds:.3f}s"
    )
    lines.append(f"report: {REPORT_PATH}")
    emit("Variants: grafted Table-1 invariance sweep", "\n".join(lines))

    benchmark.extra_info["transform_applications"] = total_applied
    benchmark.extra_info["divergences"] = len(divergences)
    benchmark.extra_info["seconds"] = total_seconds
    benchmark.extra_info["report_path"] = REPORT_PATH

    assert total_applied > 0, "no recipe applied anywhere — vacuous sweep"
    assert not divergences, [d.to_dict() for d in divergences]

    # the benchmarked unit: one grafted variant campaign pair
    def _pair():
        program = program_by_name("LLMap")
        campaign_bundle(lambda: program, masking=False)
        with grafted_variant(program, recipes[0], tag=99) as grafted:
            campaign_bundle(lambda: grafted.program, masking=False)

    benchmark.pedantic(_pair, rounds=3, iterations=1)
