"""Figure 3 — method classification of the Java applications.

Regenerates both panels for the collections + Regexp subjects and checks
the paper's shapes: the pure failure non-atomic proportion is "pretty
high, averaging 20%" across the Java applications, with a smaller but
significant conditional fraction; call-weighted fractions are lower.
Also reports the Section 6.1 LinkedList narrative (trivial fixes shrink
the pure set).
"""

from __future__ import annotations

from repro.core.classify import CATEGORY_CONDITIONAL, CATEGORY_PURE
from repro.experiments import (
    compare_linkedlist_fixes,
    figure3,
    program_by_name,
    run_app_campaign,
)

from conftest import emit


def bench_fig3(benchmark, java_outcomes):
    figures = figure3(java_outcomes)
    emit("Figure 3(a): % of methods defined and used (Java)",
         figures["a"].rendered)
    emit("Figure 3(b): % of method calls (Java)", figures["b"].rendered)
    benchmark.extra_info["fig3a"] = figures["a"].rendered
    benchmark.extra_info["fig3b"] = figures["b"].rendered

    pure_average = figures["a"].average(CATEGORY_PURE)
    # paper: "averages 20% in the considered applications"
    assert 0.08 < pure_average < 0.35, pure_average
    # a conditional fraction exists somewhere (smaller but significant)
    assert any(
        fractions[CATEGORY_CONDITIONAL] > 0
        for fractions in figures["a"].series.values()
    )
    # call-weighted pure fraction below the method fraction on average
    assert figures["b"].average(CATEGORY_PURE) < pure_average

    comparison = compare_linkedlist_fixes(stride=2)
    emit("Section 6.1: LinkedList trivial fixes", comparison.summary())
    benchmark.extra_info["linkedlist_fixes"] = comparison.summary()
    assert len(comparison.pure_after) < len(comparison.pure_before)

    program = program_by_name("LinkedList")
    benchmark.pedantic(
        lambda: run_app_campaign(program, stride=4), rounds=3, iterations=1
    )
