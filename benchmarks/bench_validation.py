"""Validation harness — the paper's synthetic-benchmark check.

Section 6: the synthetic applications "make sure that our system
correctly detects failure non-atomic methods during the detection phase,
and effectively masks them during the masking phase."  This bench runs
the full detect → mask → re-detect loop on the synthetic suite and on a
real subject, asserts both halves, and reports the loop's cost.
"""

from __future__ import annotations

from repro.experiments import (
    GROUND_TRUTH,
    program_by_name,
    run_app_campaign,
    synthetic_program,
    validate_masking,
)

from conftest import emit


def bench_validation(benchmark):
    # detection correctness: exact ground-truth match
    outcome = run_app_campaign(synthetic_program())
    mismatches = {
        key: (expected, outcome.classification.category_of(key))
        for key, expected in GROUND_TRUTH.items()
        if outcome.classification.category_of(key) != expected
    }
    assert not mismatches, mismatches

    # masking effectiveness: re-detection finds nothing left
    lines = []
    for program in (synthetic_program(), program_by_name("LinkedList")):
        validation = validate_masking(program)
        assert validation.masking_effective, validation.summary()
        lines.append(validation.summary())
    emit("Validation: detect -> mask -> re-detect", "\n".join(lines))
    benchmark.extra_info["validation"] = lines

    benchmark.pedantic(
        lambda: validate_masking(synthetic_program()), rounds=3, iterations=1
    )
