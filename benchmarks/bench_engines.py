"""Ablation — backtracking vs. Pike VM regexp engines.

Both engines execute the same compiled programs and agree on every
match; their cost profiles differ:

* on benign patterns the depth-first backtracker is faster (no thread
  bookkeeping),
* on pathological patterns (``(a|aa)+b`` against a long non-match) the
  backtracker is exponential — its step budget turns the run into an
  error — while the Pike VM stays linear.
"""

from __future__ import annotations

import time

import pytest

from repro.regexp import Matcher, PikeMatcher, RegexpError, compile_pattern

from conftest import emit


def bench_engines(benchmark):
    benign_program = compile_pattern("(a|b)+c")
    benign_text = "ab" * 40 + "c"
    bt = Matcher(benign_program)
    pike = PikeMatcher(benign_program)
    assert bt.match_at(benign_text, 0).group() == pike.match_at(
        benign_text, 0
    ).group()

    pathological_program = compile_pattern("(a|aa)+b")
    pathological_text = "a" * 45 + "c"
    with pytest.raises(RegexpError, match="step budget"):
        Matcher(pathological_program, step_budget=200_000).match_at(
            pathological_text, 0
        )
    start = time.perf_counter()
    assert PikeMatcher(pathological_program).match_at(
        pathological_text, 0
    ) is None
    pike_pathological = time.perf_counter() - start
    emit(
        "Ablation: regexp engines",
        "benign (a|b)+c on 81 chars: both engines agree\n"
        "pathological (a|aa)+b on 46 chars: backtracker exhausts its "
        f"step budget; Pike VM answers in {1e3 * pike_pathological:.2f} ms",
    )
    benchmark.extra_info["pike_pathological_ms"] = 1e3 * pike_pathological
    assert pike_pathological < 0.5

    # the benchmarked unit: the benign match on both engines, alternating
    def match_both():
        bt.match_at(benign_text, 0)
        pike.match_at(benign_text, 0)

    benchmark(match_both)
