"""Benchmark — one-trace-many-points derivation of injection verdicts.

The trace pass (:mod:`repro.core.tracepass`) instruments the single
profiling execution and derives the run record of every trace-decidable
injection point from it — entry captures, escape-time recaptures, and
the write-barrier sequence substitute for re-running the subject once
per point.  Only trace-undecidable points fall back to real execution.

This benchmark runs the Table-1 Java campaign (the Doug Lea collections
plus Jakarta Regexp) twice — fully dynamic and with ``trace_derive=True``
— and asserts the acceptance contract:

* the derived sweep needs at least **5× fewer subject executions**
  (injection runs + baseline + reference trace) than the dynamic one,
  and
* classification and run log are **bit-identical** (modulo the per-run
  ``provenance`` tag that records *how* each point was decided).

Measurements (points derived, executions both ways, wall-clock, per-
program rows) go to ``BENCH_trace_derive.json``.

Modes:

* full (default): all ten Java applications.
* smoke (``REPRO_BENCH_SMOKE=1``, used by ``make bench-trace``): three
  small applications; same assertions, seconds instead of minutes.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.staticpass import log_json_without_provenance
from repro.experiments import JAVA_PROGRAMS, program_by_name, run_app_campaign

from conftest import emit

#: Smoke mode: a small program subset for CI sanity runs (make bench-trace).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Where the machine-readable measurements land (consumed by CI logs and
#: docs/BENCHMARKS.md).
REPORT_PATH = os.environ.get(
    "REPRO_BENCH_TRACE_DERIVE_OUT", "BENCH_trace_derive.json"
)

SMOKE_NAMES = ("LLMap", "Dynarray", "CircularList")

#: The acceptance floor: the dynamic sweep must need at least this many
#: times more subject executions than the trace-derived sweep.
MIN_EXECUTION_RATIO = 5.0


def _timed_sweep(name: str, trace_derive: bool):
    started = time.perf_counter()
    outcome = run_app_campaign(
        program_by_name(name), trace_derive=trace_derive
    )
    return time.perf_counter() - started, outcome


def _executions(outcome) -> int:
    """Subject executions a sweep paid for: injection runs that actually
    ran (includes the baseline re-execution) plus the profiling run."""
    return outcome.detection.telemetry.runs_executed + 1


def bench_trace_derive(benchmark):
    names = SMOKE_NAMES if SMOKE else tuple(p.name for p in JAVA_PROGRAMS)
    rows = []
    dynamic_total = derived_total = 0.0
    total_points = total_derived = 0
    dynamic_execs = derived_execs = 0
    for name in names:
        dynamic_seconds, dynamic_outcome = _timed_sweep(name, False)
        derived_seconds, derived_outcome = _timed_sweep(name, True)

        # The soundness contract: identical output, bit for bit, with
        # only the provenance tags telling the sweeps apart.
        assert log_json_without_provenance(
            derived_outcome.detection.log
        ) == log_json_without_provenance(dynamic_outcome.detection.log), (
            f"derived sweep diverged from the dynamic one on {name}"
        )
        assert (
            derived_outcome.classification.to_json()
            == dynamic_outcome.classification.to_json()
        ), f"derived classification diverged on {name}"

        telemetry = derived_outcome.detection.telemetry
        points = derived_outcome.detection.total_points
        dynamic_total += dynamic_seconds
        derived_total += derived_seconds
        total_points += points
        total_derived += telemetry.runs_derived
        dynamic_execs += _executions(dynamic_outcome)
        derived_execs += _executions(derived_outcome)
        rows.append(
            {
                "program": name,
                "points": points,
                "points_derived": telemetry.runs_derived,
                "derived_fraction": telemetry.runs_derived / points,
                "dynamic_executions": _executions(dynamic_outcome),
                "derived_executions": _executions(derived_outcome),
                "execution_ratio": (
                    _executions(dynamic_outcome)
                    / _executions(derived_outcome)
                ),
                "dynamic_seconds": dynamic_seconds,
                "derived_seconds": derived_seconds,
                "trace_seconds": telemetry.trace_seconds,
                "trace_writes": telemetry.trace_writes,
                "trace_captures": telemetry.trace_captures,
                "speedup": dynamic_seconds / derived_seconds,
            }
        )

    ratio = dynamic_execs / derived_execs
    report = {
        "workload": "table1-java-collections-regexp",
        "smoke": SMOKE,
        "rows": rows,
        "points": total_points,
        "points_derived": total_derived,
        "derived_fraction": total_derived / total_points,
        "dynamic_executions": dynamic_execs,
        "derived_executions": derived_execs,
        "execution_ratio": ratio,
        "dynamic_seconds": dynamic_total,
        "derived_seconds": derived_total,
        "speedup": dynamic_total / derived_total,
    }
    with open(REPORT_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    lines = [
        f"{row['program']:14s} points={row['points']:5d}   "
        f"derived={row['points_derived']:4d} "
        f"({row['derived_fraction']:5.1%})   "
        f"execs {row['dynamic_executions']:5d} -> "
        f"{row['derived_executions']:3d} ({row['execution_ratio']:5.1f}x)   "
        f"dynamic {row['dynamic_seconds']:.3f}s   "
        f"derived {row['derived_seconds']:.3f}s"
        for row in rows
    ]
    lines.append(
        f"aggregate: {total_derived}/{total_points} points derived   "
        f"executions {dynamic_execs} -> {derived_execs} "
        f"({ratio:.1f}x fewer)   dynamic {dynamic_total:.3f}s   "
        f"derived {derived_total:.3f}s   "
        f"speedup {dynamic_total / derived_total:.2f}x"
    )
    lines.append(f"results bit-identical: yes   report: {REPORT_PATH}")
    emit("Trace derive: Table-1 Java sweep, dynamic vs one-trace",
         "\n".join(lines))

    benchmark.extra_info["execution_ratio"] = ratio
    benchmark.extra_info["points_derived"] = total_derived
    benchmark.extra_info["dynamic_seconds"] = dynamic_total
    benchmark.extra_info["derived_seconds"] = derived_total
    benchmark.extra_info["report_path"] = REPORT_PATH

    assert ratio >= MIN_EXECUTION_RATIO, (
        f"expected the trace pass to cut subject executions by >= "
        f"{MIN_EXECUTION_RATIO:.0f}x, measured {ratio:.1f}x"
    )

    # the benchmarked unit: one small trace-derived end-to-end sweep
    benchmark.pedantic(
        lambda: run_app_campaign(
            program_by_name("LLMap"), trace_derive=True
        ),
        rounds=3,
        iterations=1,
    )
