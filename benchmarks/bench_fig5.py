"""Figure 5 — masking overhead vs. checkpoint size and wrapped-call ratio.

Regenerates the paper's overhead grid on the synthetic service: the
overhead grows with the size of the checkpointed object and with the
percentage of calls to transformed methods, and stays small while both
stay small — the condition the paper observes in its real applications
(< 0.4% of calls to wrapped methods).
"""

from __future__ import annotations

from repro.experiments import (
    DEFAULT_RATIOS,
    DEFAULT_SIZES,
    format_overhead_table,
    measure_overhead,
)

from conftest import emit


def bench_fig5(benchmark):
    points = measure_overhead(
        sizes=DEFAULT_SIZES, ratios=DEFAULT_RATIOS, calls=1000, repeats=5
    )
    rendered = emit(
        "Figure 5: masking overhead (rows: object size, cols: % wrapped calls)",
        format_overhead_table(points),
    )
    benchmark.extra_info["fig5"] = rendered

    grid = {(p.size, p.ratio): p.overhead for p in points}
    sizes, ratios = sorted(DEFAULT_SIZES), sorted(DEFAULT_RATIOS)
    # paper shape 1: overhead grows with the wrapped-call ratio
    assert grid[(sizes[-1], ratios[-1])] > grid[(sizes[-1], ratios[1])]
    # paper shape 2: overhead grows with the checkpointed object size
    assert grid[(sizes[-1], 1.0)] > grid[(sizes[0], 1.0)]
    # paper shape 3: negligible when almost no call is wrapped
    assert grid[(sizes[0], ratios[1])] < grid[(sizes[0], 1.0)] / 2

    # the benchmarked unit: one masked call on a mid-size object
    from repro.experiments.fig5 import SyntheticService, _wrapped_step

    service = SyntheticService(64)
    wrapped = _wrapped_step("eager")
    benchmark(lambda: wrapped(service, 7))
