"""Benchmark — parallel campaign engine vs. the sequential sweep.

The detection phase executes the test program once per injection point
(Listing 1, Step 3), so campaign wall-clock grows linearly with the
point count.  The runs are independent, which the parallel engine
(`repro.experiments.parallel`) exploits by fanning them out over a
process pool.  This benchmark runs the *same* campaign on both engines,
verifies the results are bit-identical (the determinism guarantee), and
reports the speedup.

Modes:

* full (default): LinkedList at ``scale=2`` — a Figure-3 workload grown
  to 300+ injection points, the regime the engine is built for.
* smoke (``REPRO_BENCH_SMOKE=1``, used by ``make bench-smoke``): a tiny
  point budget that exercises the full engine path in seconds; the
  speedup bar is not enforced because pool startup dominates tiny runs.

The ≥2× speedup assertion only applies when the host actually has ≥4
usable CPUs — a single-core container can verify determinism and record
throughput, but physically cannot speed up a CPU-bound sweep.
"""

from __future__ import annotations

import os
import time

from repro.experiments import program_by_name, run_app_campaign

from conftest import emit

#: Smoke mode: tiny point budget for CI sanity runs (make bench-smoke).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Worker count for the parallel run (the acceptance configuration is 4).
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))


def _usable_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def bench_parallel_campaign(benchmark):
    if SMOKE:
        program, scale, stride = program_by_name("Dynarray"), 1, 8
    else:
        # ~330 injection points: LinkedList's Figure-3 workload doubled.
        program, scale, stride = program_by_name("LinkedList"), 2, 1

    started = time.perf_counter()
    sequential = run_app_campaign(program, scale=scale, stride=stride)
    sequential_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_app_campaign(
        program, scale=scale, stride=stride, workers=WORKERS
    )
    parallel_seconds = time.perf_counter() - started

    # The determinism guarantee: merged parallel results are bit-identical.
    assert (
        sequential.detection.log.to_json() == parallel.detection.log.to_json()
    ), "parallel engine diverged from the sequential sweep"
    assert (
        sequential.classification.to_json() == parallel.classification.to_json()
    )

    points = sequential.detection.total_points
    runs = sequential.detection.runs_executed
    speedup = sequential_seconds / parallel_seconds
    cpus = _usable_cpus()
    telemetry = parallel.detection.telemetry

    emit(
        "Parallel campaign engine",
        f"program={program.name} scale={scale} stride={stride}: "
        f"{points} injection points, {runs} runs\n"
        f"sequential: {sequential_seconds:.2f}s   "
        f"parallel({WORKERS} workers): {parallel_seconds:.2f}s   "
        f"speedup: {speedup:.2f}x on {cpus} usable CPU(s)\n"
        f"results bit-identical: yes\n"
        f"{telemetry.summary()}",
    )
    benchmark.extra_info["points"] = points
    benchmark.extra_info["runs"] = runs
    benchmark.extra_info["sequential_seconds"] = sequential_seconds
    benchmark.extra_info["parallel_seconds"] = parallel_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["usable_cpus"] = cpus
    benchmark.extra_info["runs_per_second"] = telemetry.runs_per_second
    benchmark.extra_info["worker_utilization"] = telemetry.worker_utilization

    if not SMOKE:
        assert points >= 200, "full mode must sweep >= 200 injection points"
        if cpus >= 4:
            assert speedup >= 2.0, (
                f"expected >= 2x speedup at {WORKERS} workers on {cpus} "
                f"CPUs, measured {speedup:.2f}x"
            )

    # the benchmarked unit: a small end-to-end parallel campaign, pool
    # startup included (rounds kept low — each round forks a pool)
    benchmark.pedantic(
        lambda: run_app_campaign(
            program_by_name("Dynarray"), stride=8, workers=2
        ),
        rounds=3,
        iterations=1,
    )
