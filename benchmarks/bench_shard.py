"""Benchmark — shard-able campaign service: merge bit-identity + cache.

The shard layer (:mod:`repro.experiments.shard`) splits a campaign's
injection plan into deterministic contiguous shards; independent workers
each write a journal fragment and a coordinator merges them.  The whole
scheme is only useful if it is *invisible* in the output, so this
benchmark enforces the acceptance contract:

* running every shard independently and merging the fragments yields a
  run log and classification **bit-identical** to the sequential
  engine's — checked for 2 shards and for a wider split;
* shard work is balanced: executed runs split across shards to within
  one point (the near-linear-scaling precondition — a coordinator-free
  partition cannot speed anything up if one shard holds the sweep);
* the service result cache answers a repeat submission of the same
  program + config with **zero** additional subject executions
  (``runs_executed_total`` telemetry-verified).

Measurements (per-shard wall/runs, merge time, cache counters) go to
``BENCH_shard.json``.

Modes:

* full (default): LinkedList's full sweep, 4 shards.
* smoke (``REPRO_BENCH_SMOKE=1``, used by ``make bench-shard``): a
  strided Dynarray sweep, 2 shards; same assertions, seconds not
  minutes.
"""

from __future__ import annotations

import json
import os
import time

from repro.experiments import (
    merge_fragments,
    program_by_name,
    run_app_campaign,
    run_shard,
)
from repro.service import CampaignService

from conftest import emit

#: Smoke mode: tiny budget for CI sanity runs (make bench-shard).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

REPORT_PATH = os.environ.get("REPRO_BENCH_SHARD_OUT", "BENCH_shard.json")

#: Subject the service-cache leg submits (the bit-identity leg uses a
#: registry application; this one exercises the exec'd-source path).
SERVICE_SOURCE = """
class Ledger:
    def __init__(self):
        self.balance = 0
        self.entries = []

    def credit(self, amount=1):
        self.balance = self.balance + amount
        self.entries = self.entries + [amount]

    def settle(self):
        self.entries = []
        self.balance = 0


def workload():
    ledger = Ledger()
    for _ in range(3):
        ledger.credit()
    ledger.settle()
"""


def _run_shards(program_name, count, directory, **config):
    paths, shard_rows = [], []
    for index in range(count):
        path = os.path.join(directory, f"shard-{index}.jsonl")
        result = run_shard(
            program_by_name(program_name), index, count, path, **config
        )
        paths.append(path)
        shard_rows.append(
            {
                "shard": index,
                "points": len(result.points),
                "executed": result.executed,
                "wall_seconds": result.wall_seconds,
            }
        )
    return paths, shard_rows


def bench_shard(benchmark, tmp_path_factory):
    if SMOKE:
        program_name, stride, wide = "Dynarray", 4, 3
    else:
        program_name, stride, wide = "LinkedList", 1, 4
    directory = str(tmp_path_factory.mktemp("fragments"))

    started = time.perf_counter()
    sequential = run_app_campaign(program_by_name(program_name), stride=stride)
    sequential_seconds = time.perf_counter() - started

    report = {
        "mode": "smoke" if SMOKE else "full",
        "program": program_name,
        "stride": stride,
        "sequential_seconds": sequential_seconds,
        "splits": [],
    }

    # -- merge bit-identity at 2 shards and at a wider split ------------
    for count in (2, wide):
        paths, shard_rows = _run_shards(
            program_name, count, directory, stride=stride
        )
        merge_started = time.perf_counter()
        merged = merge_fragments(paths)
        merge_seconds = time.perf_counter() - merge_started

        assert (
            merged.detection.log.to_json()
            == sequential.detection.log.to_json()
        ), f"{count}-shard merge diverged from the sequential sweep"
        assert (
            merged.classify().to_json()
            == sequential.classification.to_json()
        ), f"{count}-shard classification diverged"

        executed = [row["executed"] for row in shard_rows]
        assert sum(executed) == len(sequential.detection.log.runs)
        assert max(executed) - min(executed) <= 1, (
            f"shard work is unbalanced: {executed}"
        )
        report["splits"].append(
            {
                "shards": count,
                "merge_seconds": merge_seconds,
                "per_shard": shard_rows,
                "slowest_shard_seconds": max(
                    row["wall_seconds"] for row in shard_rows
                ),
            }
        )

    # -- result cache: repeat submission costs zero executions ----------
    service = CampaignService()
    service.submit(SERVICE_SOURCE, {"stride": 1}, name="ledger")
    record = service.process_one()
    assert record.status == "done"
    executed_total = service.runs_executed_total
    assert executed_total == record.result["runs_executed"] > 0

    hit, status = service.submit(SERVICE_SOURCE, {"stride": 1}, name="ledger")
    assert status == 200 and hit["cached"] is True
    assert hit["telemetry"]["result_cache_hits"] == 1
    assert service.runs_executed_total == executed_total, (
        "cache hit re-executed the subject"
    )
    assert hit["log"] == record.result["log"]
    report["result_cache"] = service.cache.stats()
    report["runs_executed_total"] = service.runs_executed_total

    with open(REPORT_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    splits = ", ".join(
        f"{s['shards']} shards (merge {s['merge_seconds'] * 1000:.1f}ms, "
        f"slowest shard {s['slowest_shard_seconds']:.2f}s)"
        for s in report["splits"]
    )
    emit(
        "Shard-able campaign service",
        f"program={program_name} stride={stride}: "
        f"{sequential.detection.total_points} injection points, "
        f"sequential {sequential_seconds:.2f}s\n"
        f"merges bit-identical at {splits}\n"
        f"result cache: repeat submission served with 0 extra "
        f"executions ({service.cache.stats()})",
    )
    benchmark.extra_info["report_path"] = REPORT_PATH
    benchmark.extra_info["sequential_seconds"] = sequential_seconds
    benchmark.extra_info["cache_hits"] = service.cache.hits

    # the benchmarked unit: one shard + coordinator merge, end to end
    def shard_and_merge():
        path = os.path.join(directory, "bench-unit.jsonl")
        run_shard(program_by_name("Dynarray"), 0, 1, path, stride=8)
        return merge_fragments([path])

    benchmark.pedantic(shard_and_merge, rounds=3, iterations=1)
