"""Ablation — wrapping pure-only vs. pure+conditional methods.

Section 4.3 (fourth case): conditional failure non-atomic methods become
atomic for free once their callees are masked, so wrapping them only adds
checkpointing cost.  This bench masks the RBMap application both ways and
measures the workload slowdown and checkpoint volume.
"""

from __future__ import annotations

import time

from repro.collections import KVPair, RBMap, RBTree, UpdatableCollection
from repro.collections.rb_tree import RBCell
from repro.core import Masker, MaskingStats, WrapPolicy
from repro.core.policy import select_methods_to_wrap
from repro.experiments import program_by_name, run_app_campaign

from conftest import emit

_CLASSES = (UpdatableCollection, RBMap, RBTree, RBCell, KVPair)


def _masked_workload_time(methods) -> tuple:
    stats = MaskingStats()
    masker = Masker(methods, stats=stats)
    program = program_by_name("RBMap")
    with masker:
        for cls in _CLASSES:
            masker.mask_class(cls)
        start = time.perf_counter()
        for _ in range(5):
            program.body()
        elapsed = time.perf_counter() - start
    return elapsed, stats


def bench_ablation_conditional(benchmark, java_outcomes):
    outcome = next(o for o in java_outcomes if o.name == "RBMap")
    pure_only = select_methods_to_wrap(outcome.classification, WrapPolicy())
    both = select_methods_to_wrap(
        outcome.classification, WrapPolicy(wrap_conditional=True)
    )
    assert set(pure_only) <= set(both)

    time_pure, stats_pure = _masked_workload_time(pure_only)
    time_both, stats_both = _masked_workload_time(both)
    emit(
        "Ablation: conditional-method wrapping (RBMap workload)",
        f"wrap pure only        : {len(pure_only):2d} methods, "
        f"{stats_pure.wrapped_calls:4d} wrapped calls, "
        f"{stats_pure.checkpointed_objects:6d} objects checkpointed, "
        f"{1000 * time_pure:.1f} ms\n"
        f"wrap pure+conditional : {len(both):2d} methods, "
        f"{stats_both.wrapped_calls:4d} wrapped calls, "
        f"{stats_both.checkpointed_objects:6d} objects checkpointed, "
        f"{1000 * time_both:.1f} ms",
    )
    benchmark.extra_info["pure_only_methods"] = len(pure_only)
    benchmark.extra_info["both_methods"] = len(both)
    benchmark.extra_info["pure_only_checkpointed"] = (
        stats_pure.checkpointed_objects
    )
    benchmark.extra_info["both_checkpointed"] = stats_both.checkpointed_objects

    # the paper's point: wrapping conditionals only adds checkpoint volume
    if len(both) > len(pure_only):
        assert stats_both.checkpointed_objects > stats_pure.checkpointed_objects

    benchmark.pedantic(
        lambda: _masked_workload_time(pure_only), rounds=3, iterations=1
    )
