"""Benchmark — static purity pre-analysis pruning the injection sweep.

The static pass (:mod:`repro.core.staticpass`) proves methods
transitively receiver-pure before the dynamic sweep and synthesizes the
run records of injection points whose whole context is certified: every
enclosing wrapper pure, every other frame exception-transparent, and no
caught genuine failure earlier in the run.  Each synthesized record is
one full program execution the campaign never pays for.

This benchmark runs the Table-1 Java campaign (the Doug Lea collections
plus Jakarta Regexp) twice — fully dynamic and with ``static_prune=True``
— and asserts the acceptance contract:

* the pruned sweep skips at least 10% of all injection points, and
* classification and run log are **bit-identical** (modulo the per-run
  ``provenance`` tag that records *how* each point was decided).

Measurements (points pruned, wall-clock both ways, per-program rows) go
to ``BENCH_static_prune.json``.

Modes:

* full (default): all ten Java applications.
* smoke (``REPRO_BENCH_SMOKE=1``, used by ``make bench-static``): three
  small applications; same assertions, seconds instead of minutes.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.staticpass import log_json_without_provenance
from repro.experiments import JAVA_PROGRAMS, program_by_name, run_app_campaign

from conftest import emit

#: Smoke mode: a small program subset for CI sanity runs (make bench-static).
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Where the machine-readable measurements land (consumed by CI logs and
#: docs/BENCHMARKS.md).
REPORT_PATH = os.environ.get(
    "REPRO_BENCH_STATIC_PRUNE_OUT", "BENCH_static_prune.json"
)

SMOKE_NAMES = ("LLMap", "Dynarray", "CircularList")

#: The acceptance floor: the pruned sweep must skip at least this
#: fraction of all injection points across the campaign.
MIN_PRUNED_FRACTION = 0.10


def _timed_sweep(name: str, static_prune: bool):
    started = time.perf_counter()
    outcome = run_app_campaign(
        program_by_name(name), static_prune=static_prune
    )
    return time.perf_counter() - started, outcome


def bench_static_prune(benchmark):
    names = SMOKE_NAMES if SMOKE else tuple(p.name for p in JAVA_PROGRAMS)
    rows = []
    dynamic_total = pruned_total = 0.0
    total_points = total_pruned = 0
    for name in names:
        dynamic_seconds, dynamic_outcome = _timed_sweep(name, False)
        pruned_seconds, pruned_outcome = _timed_sweep(name, True)

        # The soundness contract: identical output, bit for bit, with
        # only the provenance tags telling the sweeps apart.
        assert log_json_without_provenance(
            pruned_outcome.detection.log
        ) == log_json_without_provenance(dynamic_outcome.detection.log), (
            f"pruned sweep diverged from the dynamic one on {name}"
        )
        assert (
            pruned_outcome.classification.to_json()
            == dynamic_outcome.classification.to_json()
        ), f"pruned classification diverged on {name}"

        telemetry = pruned_outcome.detection.telemetry
        points = pruned_outcome.detection.total_points
        dynamic_total += dynamic_seconds
        pruned_total += pruned_seconds
        total_points += points
        total_pruned += telemetry.runs_pruned
        rows.append(
            {
                "program": name,
                "points": points,
                "points_pruned": telemetry.runs_pruned,
                "pruned_fraction": telemetry.runs_pruned / points,
                "pure_methods": telemetry.static_pure_methods,
                "dynamic_seconds": dynamic_seconds,
                "pruned_seconds": pruned_seconds,
                "static_seconds": telemetry.static_seconds,
                "speedup": dynamic_seconds / pruned_seconds,
            }
        )

    fraction = total_pruned / total_points
    report = {
        "workload": "table1-java-collections-regexp",
        "smoke": SMOKE,
        "rows": rows,
        "points": total_points,
        "points_pruned": total_pruned,
        "pruned_fraction": fraction,
        "dynamic_seconds": dynamic_total,
        "pruned_seconds": pruned_total,
        "speedup": dynamic_total / pruned_total,
    }
    with open(REPORT_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    lines = [
        f"{row['program']:14s} points={row['points']:5d}   "
        f"pruned={row['points_pruned']:4d} ({row['pruned_fraction']:5.1%})   "
        f"dynamic {row['dynamic_seconds']:.3f}s   "
        f"pruned {row['pruned_seconds']:.3f}s   "
        f"speedup {row['speedup']:.2f}x"
        for row in rows
    ]
    lines.append(
        f"aggregate: {total_pruned}/{total_points} points pruned "
        f"({fraction:.1%})   dynamic {dynamic_total:.3f}s   "
        f"pruned {pruned_total:.3f}s   "
        f"speedup {dynamic_total / pruned_total:.2f}x"
    )
    lines.append(f"results bit-identical: yes   report: {REPORT_PATH}")
    emit("Static prune: Table-1 Java sweep, dynamic vs pruned",
         "\n".join(lines))

    benchmark.extra_info["pruned_fraction"] = fraction
    benchmark.extra_info["points_pruned"] = total_pruned
    benchmark.extra_info["dynamic_seconds"] = dynamic_total
    benchmark.extra_info["pruned_seconds"] = pruned_total
    benchmark.extra_info["report_path"] = REPORT_PATH

    assert fraction >= MIN_PRUNED_FRACTION, (
        f"expected the static pass to prune >= {MIN_PRUNED_FRACTION:.0%} "
        f"of injection points, measured {fraction:.1%}"
    )

    # the benchmarked unit: one small pruned end-to-end sweep
    benchmark.pedantic(
        lambda: run_app_campaign(
            program_by_name("LLMap"), static_prune=True
        ),
        rounds=3,
        iterations=1,
    )
