"""Table 1 — application statistics (#classes, #methods, #injections).

Regenerates the paper's Table 1 for all sixteen applications and
benchmarks the cost of one full detection campaign on a representative
mid-size subject (``LLMap``).
"""

from __future__ import annotations

from repro.experiments import program_by_name, run_app_campaign, table1

from conftest import emit


def bench_table1(benchmark, cpp_outcomes, java_outcomes):
    outcomes = cpp_outcomes + java_outcomes
    rendered = emit("Table 1: C++ and Java application statistics",
                    table1(outcomes))
    benchmark.extra_info["table1"] = rendered
    for outcome in outcomes:
        benchmark.extra_info[f"injections[{outcome.name}]"] = (
            outcome.report.injection_count
        )

    program = program_by_name("LLMap")
    result = benchmark.pedantic(
        lambda: run_app_campaign(program), rounds=3, iterations=1
    )
    # sanity: the benchmarked campaign reproduces the table row
    row = next(o for o in outcomes if o.name == "LLMap")
    assert result.report.injection_count == row.report.injection_count
