"""Benchmark — instrumentation backends on the Table-1 smoke sweep.

Runs the same trace-derived campaign (``static_prune=True,
trace_derive=True`` — the configuration where event observation does
the most work) under every instrumentation backend available on this
interpreter and asserts the conformance contract end to end: run logs
(modulo provenance) and classifications **bit-identical** across
backends.  The weaving backend is the reference; ``sys.monitoring``
(PEP 669) joins on CPython 3.12+ and is reported with its wall-clock
ratio against weaving.

Measurements go to ``BENCH_instrumentors.json``.  On interpreters
without ``sys.monitoring`` the benchmark still runs the weaving
backend (so ``make bench-instrument`` is callable anywhere) and the
report records the backend as unavailable.

Modes:

* full (default): all ten Java applications.
* smoke (``REPRO_BENCH_SMOKE=1``, used by ``make bench-instrument``):
  three small applications; same assertions, seconds instead of
  minutes.
"""

from __future__ import annotations

import json
import os
import time

from repro.core import available_instrumentors
from repro.core.instrument.monitoring import MONITORING_AVAILABLE
from repro.core.staticpass import log_json_without_provenance
from repro.experiments import JAVA_PROGRAMS, program_by_name, run_app_campaign

from conftest import emit

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

REPORT_PATH = os.environ.get(
    "REPRO_BENCH_INSTRUMENTORS_OUT", "BENCH_instrumentors.json"
)

SMOKE_NAMES = ("LLMap", "Dynarray", "CircularList")


def _timed_sweep(name: str, instrumentor: str):
    started = time.perf_counter()
    outcome = run_app_campaign(
        program_by_name(name),
        static_prune=True,
        trace_derive=True,
        instrumentor=instrumentor,
    )
    return time.perf_counter() - started, outcome


def bench_instrumentors(benchmark):
    names = SMOKE_NAMES if SMOKE else tuple(p.name for p in JAVA_PROGRAMS)
    backends = available_instrumentors()
    rows = []
    totals = {backend: 0.0 for backend in backends}
    for name in names:
        row = {"program": name}
        outcomes = {}
        for backend in backends:
            seconds, outcome = _timed_sweep(name, backend)
            assert outcome.detection.telemetry.instrumentor == backend
            totals[backend] += seconds
            outcomes[backend] = outcome
            row[f"{backend}_seconds"] = seconds
        reference = outcomes["weave"]
        for backend, outcome in outcomes.items():
            # conformance contract: every backend observes the same
            # campaign, bytes for bytes
            assert log_json_without_provenance(outcome.detection.log) == (
                log_json_without_provenance(reference.detection.log)
            ), f"{backend} run log diverged from weave on {name}"
            assert outcome.classification.to_json() == (
                reference.classification.to_json()
            ), f"{backend} classification diverged from weave on {name}"
        row["points"] = reference.detection.total_points
        rows.append(row)

    report = {
        "workload": "table1-java-collections-regexp",
        "smoke": SMOKE,
        "backends": list(backends),
        "monitoring_available": MONITORING_AVAILABLE,
        "rows": rows,
        "totals_seconds": totals,
    }
    if "monitoring" in totals:
        report["monitoring_over_weave"] = (
            totals["monitoring"] / totals["weave"]
        )
    with open(REPORT_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)

    lines = []
    for row in rows:
        cells = "   ".join(
            f"{backend} {row[f'{backend}_seconds']:.3f}s"
            for backend in backends
        )
        lines.append(f"{row['program']:14s} points={row['points']:5d}   {cells}")
    if "monitoring" in totals:
        lines.append(
            f"aggregate: weave {totals['weave']:.3f}s   "
            f"monitoring {totals['monitoring']:.3f}s   "
            f"ratio {report['monitoring_over_weave']:.2f}x"
        )
    else:
        lines.append(
            f"aggregate: weave {totals['weave']:.3f}s   "
            "(sys.monitoring unavailable on this interpreter)"
        )
    lines.append(f"results bit-identical: yes   report: {REPORT_PATH}")
    emit(
        "Instrumentors: Table-1 smoke sweep per observation backend",
        "\n".join(lines),
    )

    benchmark.extra_info["backends"] = list(backends)
    benchmark.extra_info["totals_seconds"] = totals
    benchmark.extra_info["report_path"] = REPORT_PATH

    # the benchmarked unit: one small end-to-end sweep on the default
    # backend (monitoring, when available, is covered by the grid above)
    benchmark.pedantic(
        lambda: run_app_campaign(
            program_by_name("LLMap"),
            static_prune=True,
            trace_derive=True,
        ),
        rounds=3,
        iterations=1,
    )
